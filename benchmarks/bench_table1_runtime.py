"""Table 1 — average runtime of a Count what-if query per dataset and variant.

Paper: HypeR answers Count what-if queries interactively on all datasets;
HypeR-NB (no causal background, adjust for everything) is consistently slower
(roughly 2-10x), and the Indep baseline is fastest because it does no causal
estimation at all.  Dataset sizes are scaled down (see EXPERIMENTS.md), so the
absolute seconds differ from the paper — the ordering Indep < HypeR < HypeR-NB
per dataset is the reproduced shape.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_CONFIG, fmt, print_table
from repro import HypeR, Variant, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.relational import post, pre


def _count_query(dataset):
    """A Count what-if query in the spirit of Figure 7 for each dataset."""
    name = dataset.name
    if name == "german-syn":
        return WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Status", SetTo(4))],
            output_attribute="Credit",
            output_aggregate="count",
            for_clause=(post("Credit") == 1),
        )
    if name == "adult-syn":
        return WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Marital", SetTo(1))],
            output_attribute="Income",
            output_aggregate="count",
            for_clause=(post("Income") == 1),
        )
    if name == "amazon-syn":
        return WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Price", SetTo(400.0))],
            output_attribute="Rtng",
            output_aggregate="count",
            when=(pre("Category") == "Laptop"),
            for_clause=(post("Rtng") > 3.5),
        )
    # student-syn
    return WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Attendance", SetTo(90.0))],
        output_attribute="Grade",
        output_aggregate="count",
        for_clause=(post("Grade") > 70.0),
    )


def _time_variant(dataset, variant: str) -> tuple[float, float]:
    session = HypeR(dataset.database, dataset.causal_dag, BENCH_CONFIG.with_variant(variant))
    query = _count_query(dataset)
    started = time.perf_counter()
    result = session.what_if(query)
    return time.perf_counter() - started, result.value


@pytest.mark.parametrize("dataset_name", ["german", "adult", "amazon", "student"])
def test_table1_count_query_runtime(dataset_name, request, benchmark):
    dataset = request.getfixturevalue(dataset_name)
    rows = []
    timings = {}
    for variant in (Variant.HYPER, Variant.HYPER_NB, Variant.INDEP):
        seconds, value = _time_variant(dataset, variant)
        timings[variant] = seconds
        rows.append([dataset.name, variant, fmt(seconds), fmt(value, 1)])
    print_table(
        f"Table 1 (scaled) — Count what-if runtime on {dataset.name}",
        ["dataset", "variant", "seconds", "query output"],
        rows,
    )
    # The paper's ordering: Indep (no causal estimation) is the cheapest variant.
    # The HypeR vs HypeR-NB gap only emerges at scale, so at these scaled-down
    # sizes we only require the two causal variants to be within the same order
    # of magnitude of each other.
    assert timings[Variant.INDEP] <= max(timings[Variant.HYPER], timings[Variant.HYPER_NB])
    slower = max(timings[Variant.HYPER], timings[Variant.HYPER_NB])
    faster = min(timings[Variant.HYPER], timings[Variant.HYPER_NB])
    assert slower <= faster * 10

    session = HypeR(dataset.database, dataset.causal_dag, BENCH_CONFIG)
    query = _count_query(dataset)
    benchmark.pedantic(lambda: session.what_if(query), rounds=1, iterations=1)
