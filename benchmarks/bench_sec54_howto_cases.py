"""Section 5.4 — how-to case studies and comparison with the exhaustive optimum.

* German-Syn: maximise the share of good-credit individuals by updating any of
  {Status, Savings, Housing, CreditAmount}.  The paper finds that updating
  account status plus housing suffices; we check that Status is part of the
  recommended plan, and that the plan matches the Opt-HowTo exhaustive optimum.
* Student-Syn: with a budget of one attribute update, raising attendance is the
  best way to increase the average grade, and it matches Opt-HowTo.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FAST_CONFIG, fmt, print_table
from repro import HowToQuery, LimitConstraint
from repro.core import HowToEngine
from repro.relational import post


def test_sec54_german_howto_case(german, benchmark):
    engine = HowToEngine(german.database, german.causal_dag, FAST_CONFIG)
    query = HowToQuery(
        use=german.default_use,
        update_attributes=["Status", "Savings", "Housing", "CreditAmount"],
        objective_attribute="Credit",
        objective_aggregate="count",
        for_clause=(post("Credit") == 1),
        limits=[
            LimitConstraint("Status", lower=1.0, upper=4.0),
            LimitConstraint("Savings", lower=1.0, upper=5.0),
            LimitConstraint("Housing", lower=1.0, upper=3.0),
            LimitConstraint("CreditAmount", lower=500.0, upper=5_000.0),
        ],
        candidate_buckets=3,
        candidate_multipliers=(),
        max_updates=2,
    )
    result = engine.evaluate(query)
    exhaustive = engine.evaluate_exhaustive(query)
    print_table(
        "Section 5.4 — German-Syn how-to (maximise good-credit count, budget 2)",
        ["method", "objective", "plan"],
        [
            ["HypeR (IP)", fmt(result.objective_value, 1), str(result.plan())],
            ["Opt-HowTo", fmt(exhaustive.objective_value, 1), str(exhaustive.plan())],
        ],
    )
    assert "Status" in result.changed_attributes
    assert result.objective_value >= 0.95 * exhaustive.objective_value
    assert result.objective_value > result.baseline_value

    benchmark.pedantic(lambda: engine.evaluate(query), rounds=1, iterations=1)


def test_sec54_student_howto_case(student, benchmark):
    engine = HowToEngine(student.database, student.causal_dag, FAST_CONFIG)
    attributes = ["Attendance", "Discussion", "Announcement", "HandRaised"]
    query = HowToQuery(
        use=student.default_use,
        update_attributes=attributes,
        objective_attribute="Grade",
        objective_aggregate="avg",
        limits=[LimitConstraint(a, lower=0.0, upper=100.0) for a in attributes],
        max_updates=1,
        candidate_buckets=4,
        candidate_multipliers=(),
    )
    result = engine.evaluate(query)
    exhaustive = engine.evaluate_exhaustive(query)
    print_table(
        "Section 5.4 — Student-Syn how-to (maximise average grade, budget 1)",
        ["method", "objective", "plan"],
        [
            ["HypeR (IP)", fmt(result.objective_value, 2), str(result.plan())],
            ["Opt-HowTo", fmt(exhaustive.objective_value, 2), str(exhaustive.plan())],
        ],
    )
    # the paper: improving attendance provides the maximum benefit
    assert result.changed_attributes == ["Attendance"]
    assert exhaustive.changed_attributes == ["Attendance"]
    assert result.objective_value >= 0.95 * exhaustive.objective_value

    benchmark.pedantic(lambda: engine.evaluate(query), rounds=1, iterations=1)
