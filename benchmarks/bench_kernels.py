"""Fused single-pass kernels and zero-copy snapshots: the data-movement bench.

Two microbenchmarks for the per-node costs that cap shard scale-out:

* **per-query kernel time** — the predicate→group→aggregate stage of the
  100-variant what-if suite (German-Syn 4000, real block labels from
  :func:`repro.shard.partition_database`, real ``post("Credit") == 1``-style
  predicates), cold in the sense that nothing query-specific is reused.  The
  *unfused* reference is the materializing pipeline the engine used to run:
  factorize the block labels, build the predicate mask, gather the passing
  rows, then aggregate the filtered copies pass by pass.  The *fused* path is
  what ``EngineConfig(fused_kernels=True)`` routes through
  :func:`repro.relational.columnar.fused_mask_aggregate`: group codes come
  from the per-plan :class:`~repro.relational.columnar.KernelCache` and the
  predicate folds into a single bincount traversal — no filtered
  intermediates.  Both paths must produce identical arrays before either
  timing counts.

* **snapshot bytes on the wire** — one generation of the database as the
  shard workers receive it: the shared-memory descriptor (segment names +
  offsets + column headers) vs the same buffers shipped inline and vs
  ``pickle.dumps(database)``, the pre-zero-copy broadcast payload.

Asserts the issue's acceptance bars — fused >= 1.5x unfused per query, and
snapshot broadcast bytes reduced >= 5x vs the pickled baseline — and writes
``BENCH_kernels.json``.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import fmt, print_table
from repro.datasets import make_german_syn
from repro.relational.columnar import (
    KernelCache,
    fused_mask_aggregate,
    fused_masked_count,
)
from repro.shard import partition_database
from repro.shard.shm import (
    SegmentManager,
    encode_database,
    ship_buffers,
    shm_available,
)

N_ROWS = 4_000
N_QUERIES = 100

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _suite_inputs():
    """Real engine artifacts for the suite: columns, block labels, predicates."""
    dataset = make_german_syn(N_ROWS, seed=7)
    plan = partition_database(dataset.database, dataset.causal_dag, 1)
    shard = plan.shards[0]
    relation = dataset.database["Credit"]
    labels = shard.block_labels[relation.name]
    credit = np.asarray(relation.column("Credit"), dtype=float)
    status = np.asarray(relation.column("Status"), dtype=float)
    pivot = float(np.median(status))
    return dataset, labels, plan.n_blocks, credit, status, pivot


def _unfused_query(labels, credit, status, multiplier, pivot):
    """Materializing reference: factorize, mask, gather, aggregate per pass."""
    _uniq, codes = np.unique(labels, return_inverse=True)
    n_groups = int(codes.max()) + 1 if len(codes) else 1
    mask = (credit == 1.0) & (status * multiplier > pivot)
    grouped = codes[mask]
    gathered = status[mask]
    counts = np.bincount(grouped, minlength=n_groups).astype(float)
    sums = np.bincount(grouped, weights=gathered, minlength=n_groups)
    return counts, sums, float(mask.sum())


def _fused_query(kernels, labels, credit, status, multiplier, pivot):
    """Single-pass path: cached group codes, predicate folded into bincount."""
    codes = kernels.get(
        ("block_codes",), lambda: np.unique(labels, return_inverse=True)[1]
    )
    n_groups = int(
        kernels.get(("n_groups",), lambda: np.asarray(codes.max() + 1))
    ) if len(codes) else 1
    mask = (credit == 1.0) & (status * multiplier > pivot)
    counts = fused_mask_aggregate(codes, n_groups, mask=mask, how="count")
    sums = fused_mask_aggregate(
        codes, n_groups, mask=mask, values=status, how="sum"
    )
    return counts, sums, fused_masked_count(mask)


def _time_suite(run_one) -> float:
    run_one(0)  # warm allocators and caches outside the timer, like a pool does
    started = time.perf_counter()
    for i in range(N_QUERIES):
        run_one(i)
    return time.perf_counter() - started


def test_fused_kernels_and_snapshot_bytes(benchmark):
    _dataset, labels, _n_blocks, credit, status, pivot = _suite_inputs()

    def unfused(i):
        return _unfused_query(labels, credit, status, 1.0 + 0.005 * i, pivot)

    kernels = KernelCache()

    def fused(i):
        return _fused_query(kernels, labels, credit, status, 1.0 + 0.005 * i, pivot)

    # exactness first: neither timing means anything if the paths disagree
    for i in range(0, N_QUERIES, 9):
        for a, b in zip(unfused(i), fused(i)):
            assert np.asarray(a).tolist() == np.asarray(b).tolist()

    unfused_seconds = _time_suite(unfused)
    fused_seconds = _time_suite(fused)
    speedup = unfused_seconds / fused_seconds

    # -- snapshot wire bytes -----------------------------------------------------------
    database = _dataset.database
    manifest, buffers = encode_database(database)
    pickled_bytes = len(pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL))
    inline_bytes = len(
        pickle.dumps(
            (manifest, ship_buffers(buffers, None, generation=0)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    shm_bytes = None
    if shm_available():
        manager = SegmentManager()
        try:
            descriptor = manager.put(0, buffers)
            shm_bytes = len(
                pickle.dumps((manifest, descriptor), protocol=pickle.HIGHEST_PROTOCOL)
            )
        finally:
            manager.close_all()
    reduction = pickled_bytes / shm_bytes if shm_bytes else None

    print_table(
        f"Per-query kernel time — {N_QUERIES}-variant suite (German-Syn {N_ROWS})",
        ["path", "total s", "us/query", "speedup"],
        [
            ["unfused (materializing)", fmt(unfused_seconds),
             fmt(unfused_seconds / N_QUERIES * 1e6, 1), "1.0x"],
            ["fused (single-pass)", fmt(fused_seconds),
             fmt(fused_seconds / N_QUERIES * 1e6, 1), f"{speedup:.1f}x"],
        ],
    )
    print_table(
        "Snapshot broadcast payload — one database generation",
        ["transport", "bytes"],
        [
            ["pickled database (baseline)", f"{pickled_bytes:,}"],
            ["inline buffers (no shm)", f"{inline_bytes:,}"],
            ["shm descriptor (zero-copy)",
             f"{shm_bytes:,}" if shm_bytes else "unavailable"],
        ],
    )

    payload = {
        "dataset": f"german-syn-{N_ROWS}",
        "n_queries": N_QUERIES,
        "unfused_seconds": unfused_seconds,
        "fused_seconds": fused_seconds,
        "unfused_us_per_query": unfused_seconds / N_QUERIES * 1e6,
        "fused_us_per_query": fused_seconds / N_QUERIES * 1e6,
        "fused_speedup": speedup,
        "snapshot_pickled_bytes": pickled_bytes,
        "snapshot_inline_bytes": inline_bytes,
        "snapshot_shm_bytes": shm_bytes,
        "snapshot_reduction_vs_pickled": reduction,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_RESULTS_PATH.name}")

    # acceptance criteria of the zero-copy/fused-kernel issue
    assert speedup >= 1.5, payload
    if shm_bytes is not None:
        assert reduction >= 5.0, payload

    benchmark.pedantic(lambda: [fused(i) for i in range(N_QUERIES)], rounds=3, iterations=1)
