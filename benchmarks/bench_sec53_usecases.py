"""Section 5.3 — real-world what-if use cases (qualitative findings).

The paper runs what-if queries on the German, Adult and Amazon datasets and
checks that the conclusions agree with prior studies.  The findings reproduced
on the synthetic stand-ins:

* German: pushing account Status / CreditHistory to their maximum lifts the
  share of good-credit individuals far more than Housing or Investment, and
  updating Status and CreditHistory *together* lifts it the most.
* Adult: making every individual married raises the share of >50K earners
  dramatically compared to making everyone unmarried.
* Amazon: cutting laptop prices raises the share of products with average
  rating above 4; premium (high-quality) brands gain the most.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, fmt, print_table
from repro import HypeR, WhatIfQuery
from repro.core import AttributeUpdate, MultiplyBy, SetTo
from repro.relational import post, pre


def test_sec53_german_use_case(german, benchmark):
    session = HypeR(german.database, german.causal_dag, BENCH_CONFIG)
    n = len(german.database["Credit"])

    def good_credit_share(updates):
        query = WhatIfQuery(
            use=german.default_use,
            updates=updates,
            output_attribute="Credit",
            output_aggregate="count",
            for_clause=(post("Credit") == 1),
        )
        return session.what_if(query).value / n

    max_status = good_credit_share([AttributeUpdate("Status", SetTo(4))])
    min_status = good_credit_share([AttributeUpdate("Status", SetTo(1))])
    max_housing = good_credit_share([AttributeUpdate("Housing", SetTo(3))])
    min_housing = good_credit_share([AttributeUpdate("Housing", SetTo(1))])
    both = good_credit_share(
        [AttributeUpdate("Status", SetTo(4)), AttributeUpdate("CreditHistory", SetTo(4))]
    )
    print_table(
        "Section 5.3 — German what-if findings",
        ["scenario", "share with good credit"],
        [
            ["Status = max", fmt(max_status)],
            ["Status = min", fmt(min_status)],
            ["Housing = max", fmt(max_housing)],
            ["Housing = min", fmt(min_housing)],
            ["Status & CreditHistory = max", fmt(both)],
        ],
    )
    assert max_status > 0.6
    assert max_status - min_status > max_housing - min_housing
    assert both >= max_status - 0.02

    benchmark.pedantic(
        lambda: good_credit_share([AttributeUpdate("Status", SetTo(4))]), rounds=1, iterations=1
    )


def test_sec53_adult_use_case(adult, benchmark):
    session = HypeR(adult.database, adult.causal_dag, BENCH_CONFIG)
    n = len(adult.database["Adult"])

    def high_income_share(marital_value):
        query = WhatIfQuery(
            use=adult.default_use,
            updates=[AttributeUpdate("Marital", SetTo(marital_value))],
            output_attribute="Income",
            output_aggregate="count",
            for_clause=(post("Income") == 1),
        )
        return session.what_if(query).value / n

    married = high_income_share(1)
    unmarried = high_income_share(0)
    print_table(
        "Section 5.3 — Adult what-if findings",
        ["scenario", "share with income > 50K"],
        [["everyone married", fmt(married)], ["everyone unmarried", fmt(unmarried)]],
    )
    # The paper reports 38% vs <9%; the reproduced shape is a wide gap.
    assert married > unmarried + 0.15

    benchmark.pedantic(lambda: high_income_share(1), rounds=1, iterations=1)


def test_sec53_amazon_use_case(amazon, benchmark):
    session = HypeR(amazon.database, amazon.causal_dag, BENCH_CONFIG)
    view = amazon.default_use.build(amazon.database)
    laptops = [row for row in view.rows() if row["Category"] == "Laptop"]
    n_laptops = len(laptops)
    prices = np.array([row["Price"] for row in laptops])

    def highly_rated_share(price_percentile):
        target = float(np.percentile(prices, price_percentile))
        query = WhatIfQuery(
            use=amazon.default_use,
            updates=[AttributeUpdate("Price", SetTo(target))],
            output_attribute="Rtng",
            output_aggregate="count",
            when=(pre("Category") == "Laptop"),
            for_clause=(pre("Category") == "Laptop") & (post("Rtng") > 4.0),
        )
        return session.what_if(query).value / n_laptops

    at_80th = highly_rated_share(80)
    at_60th = highly_rated_share(60)
    at_40th = highly_rated_share(40)
    print_table(
        "Section 5.3 — Amazon what-if findings (laptops rated above 4)",
        ["laptop price set to percentile", "share rated > 4"],
        [["80th", fmt(at_80th)], ["60th", fmt(at_60th)], ["40th", fmt(at_40th)]],
    )
    # Reducing prices raises the share of highly rated laptops.
    assert at_40th >= at_80th

    benchmark.pedantic(lambda: highly_rated_share(60), rounds=1, iterations=1)
