"""Figure 10 — what-if output accuracy against the structural-equation ground truth.

For German-Syn (10a) the query is "fraction of individuals with good credit
after forcing attribute A to its maximum"; for Student-Syn (10b) it is "average
grade after forcing attribute A to a high value".  The ground truth re-runs the
data-generating structural equations under the intervention.

Reproduced shape: HypeR, HypeR-sampled and HypeR-NB track the ground truth
closely (the paper reports < 5% error), while the Indep baseline — which
ignores causal propagation entirely — misses the effect and reports the
unchanged observational value.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, fmt, print_table
from repro import GroundTruthOracle, HypeR, Variant, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.ml import relative_error
from repro.relational import post


GERMAN_UPDATES = {"Status": 4, "Savings": 5, "Housing": 3, "CreditAmount": 1_000.0}
STUDENT_UPDATES = {"Attendance": 95.0}


def _german_query(dataset, attribute, value):
    return WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate(attribute, SetTo(value))],
        output_attribute="Credit",
        output_aggregate="count",
        for_clause=(post("Credit") == 1),
    )


def _student_query(dataset, attribute, value):
    return WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate(attribute, SetTo(value))],
        output_attribute="Grade",
        output_aggregate="avg",
    )


def _variants(dataset):
    base = HypeR(dataset.database, dataset.causal_dag, BENCH_CONFIG)
    return {
        "HypeR": base,
        "HypeR-sampled": base.sampled(min(1_000, dataset.n_rows)),
        "HypeR-NB": base.no_background(),
        "Indep": base.independent_baseline(),
    }


def test_fig10a_german_accuracy(german, benchmark):
    oracle = GroundTruthOracle(german.view_scm, n_repeats=10, random_state=0)
    sessions = _variants(german)
    n_rows = len(german.database["Credit"])

    rows = []
    errors: dict[str, list[float]] = {name: [] for name in sessions}
    for attribute, value in GERMAN_UPDATES.items():
        query = _german_query(german, attribute, value)
        truth = oracle.evaluate(query, german.database) / n_rows
        row = [attribute, fmt(truth)]
        for name, session in sessions.items():
            estimate = session.what_if(query).value / n_rows
            errors[name].append(relative_error(estimate, truth))
            row.append(fmt(estimate))
        rows.append(row)
    print_table(
        "Figure 10a — German-Syn: fraction with good credit after update",
        ["updated attribute", "ground truth", *sessions.keys()],
        rows,
    )

    for name in ("HypeR", "HypeR-sampled", "HypeR-NB"):
        assert float(np.mean(errors[name])) < 0.15, f"{name} mean error too high"
    # Indep misses the strong Status effect entirely.
    assert max(errors["Indep"]) > float(np.mean(errors["HypeR"]))

    query = _german_query(german, "Status", 4)
    benchmark.pedantic(lambda: sessions["HypeR"].what_if(query), rounds=1, iterations=1)


def test_fig10b_student_accuracy(student, benchmark):
    oracle = GroundTruthOracle(student.view_scm, n_repeats=10, random_state=0)
    sessions = _variants(student)

    rows = []
    errors: dict[str, list[float]] = {name: [] for name in sessions}
    for attribute, value in STUDENT_UPDATES.items():
        query = _student_query(student, attribute, value)
        truth = oracle.evaluate(query, student.database)
        row = [attribute, fmt(truth, 2)]
        for name, session in sessions.items():
            estimate = session.what_if(query).value
            errors[name].append(relative_error(estimate, truth))
            row.append(fmt(estimate, 2))
        rows.append(row)
    print_table(
        "Figure 10b — Student-Syn: average grade after update",
        ["updated attribute", "ground truth", *sessions.keys()],
        rows,
    )

    assert float(np.mean(errors["HypeR"])) < 0.1
    # HypeR-NB over-adjusts here: without the causal graph it conditions on the
    # participation attributes, which are *mediators* of attendance, so part of
    # the effect is blocked.  It still beats the no-propagation baseline.
    assert float(np.mean(errors["HypeR-NB"])) < float(np.mean(errors["Indep"]))
    # the causal estimate is closer to the truth than the no-propagation baseline
    assert float(np.mean(errors["HypeR"])) < float(np.mean(errors["Indep"]))

    query = _student_query(student, "Attendance", 95.0)
    benchmark.pedantic(lambda: sessions["HypeR"].what_if(query), rounds=1, iterations=1)
