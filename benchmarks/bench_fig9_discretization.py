"""Figure 9 — how-to quality and runtime vs number of discretization buckets.

HypeR bucketizes continuous update attributes before building the integer
program.  The paper shows (a) solution quality (as a fraction of the best
attainable objective) improves with more buckets and is within ~10% of the
optimum from about 4 buckets on, with HypeR matching the Opt-discrete search
over the same buckets, and (b) Opt-discrete's runtime grows much faster with
the number of buckets than HypeR's IP-based search.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FAST_CONFIG, fmt, print_table
from repro import HowToQuery, LimitConstraint
from repro.core import HowToEngine
from repro.relational import post

BUCKETS = (1, 2, 4, 6, 8)


def _query(dataset, n_buckets):
    return HowToQuery(
        use=dataset.default_use,
        update_attributes=["Status", "Housing"],
        objective_attribute="Credit",
        objective_aggregate="count",
        for_clause=(post("Credit") == 1),
        limits=[
            LimitConstraint("Status", lower=1.0, upper=4.0),
            LimitConstraint("Housing", lower=1.0, upper=3.0),
        ],
        candidate_buckets=n_buckets,
        candidate_multipliers=(),
    )


def test_fig9_buckets_quality_and_runtime(german_continuous, benchmark):
    engine = HowToEngine(german_continuous.database, german_continuous.causal_dag, FAST_CONFIG)

    results = []
    best_objective = 0.0
    for n_buckets in BUCKETS:
        query = _query(german_continuous, n_buckets)
        started = time.perf_counter()
        hyper = engine.evaluate(query)
        hyper_seconds = time.perf_counter() - started
        started = time.perf_counter()
        exhaustive = engine.evaluate_exhaustive(query)
        exhaustive_seconds = time.perf_counter() - started
        best_objective = max(best_objective, hyper.objective_value, exhaustive.objective_value)
        results.append(
            (n_buckets, hyper.objective_value, exhaustive.objective_value, hyper_seconds, exhaustive_seconds)
        )

    rows = [
        [
            n,
            fmt(h / best_objective),
            fmt(e / best_objective),
            fmt(hs),
            fmt(es),
        ]
        for n, h, e, hs, es in results
    ]
    print_table(
        "Figure 9 (scaled) — how-to quality (fraction of best) and runtime vs buckets",
        ["buckets", "HypeR quality", "Opt-discrete quality", "HypeR s", "Opt-discrete s"],
        rows,
    )

    qualities = [h / best_objective for _, h, _, _, _ in results]
    # quality improves (weakly) with more buckets and is near-optimal from 4 on
    assert qualities[-1] >= qualities[0] - 1e-6
    assert qualities[2] >= 0.9
    # HypeR's answer tracks the exhaustive search over the same buckets
    for _, h, e, _, _ in results:
        assert h >= 0.95 * e

    query = _query(german_continuous, 4)
    benchmark.pedantic(lambda: engine.evaluate(query), rounds=1, iterations=1)
