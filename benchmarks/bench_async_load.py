"""Async front-end under concurrent load vs the threaded server, plus overload.

Drives real ``repro serve`` subprocesses (the threaded front-end and the
asyncio front-end of :mod:`repro.aserve`) with N concurrent keep-alive
clients — the production-shaped runs through the v1
:class:`repro.api.HypeRClient` SDK, plus one raw-``http.client`` run to
price the SDK — over the warm German-Syn 4000 repeated-template what-if
suite, and asserts the serving acceptance criteria:

* the async front-end sustains **at least the threaded server's throughput**
  under N concurrent clients (default 32; ``BENCH_ASYNC_CLIENTS`` overrides —
  CI smoke uses 16);
* the **p99 admission decision** (read from the async server's own
  ``/stats`` reservoir) is **< 50 ms**;
* when offered load exceeds ``max_inflight + queue_depth``, excess requests
  get **429** — never connection resets, never queueing beyond the
  configured depth (asserted via ``peak_queued``);
* every accepted answer is **bitwise identical** to direct
  ``HypeRService.execute`` (JSON float round-trips are exact for finite
  doubles);
* the **client SDK costs ≤ 10 % throughput** against raw sockets on the
  same warm async server (``client_over_raw >= 0.9`` in the results).

Results land in ``BENCH_async.json`` for the CI artifact.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from benchmarks.conftest import fmt, print_table
from repro import EngineConfig, HypeRService
from repro.api import HypeRClient
from repro.datasets import make_german_syn
from repro.obs.metrics import validate_exposition

N_ROWS = 4_000
SEED = 7
N_CLIENTS = int(os.environ.get("BENCH_ASYNC_CLIENTS", "32"))
REQUESTS_PER_CLIENT = 15
N_TEMPLATES = 16

_ROOT = Path(__file__).resolve().parent.parent
_RESULTS_PATH = _ROOT / "BENCH_async.json"
#: Prometheus text scraped from the loaded async server; CI's metrics-smoke
#: step re-validates these bytes and the artifact keeps them inspectable
_METRICS_PATH = _ROOT / "BENCH_metrics.prom"

QUERY_TEXTS = [
    f"USE Credit UPDATE(Status) = {value} "
    "OUTPUT COUNT(POST(Credit)) FOR POST(Credit) = 1"
    for value in range(1, N_TEMPLATES + 1)
]
#: distinct parameter variants of a *second* template, uncached at overload
#: time, so every overload request does real work instead of a cache hit
OVERLOAD_TEXTS = [
    f"USE Credit UPDATE(Status) = {value} "
    "OUTPUT AVG(POST(CreditAmount)) FOR POST(Credit) = 1"
    for value in range(1, 65)
]


def spawn_serve(*extra_args: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "german-syn", "--rows", str(N_ROWS), "--seed", str(SEED),
            "--regressor", "linear", "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 180
    assert process.stdout is not None
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("server exited before listening")
        if "listening on http://" in line:
            address = line.rsplit("http://", 1)[-1].strip()
            host, port = address.split(":")
            return process, host, int(port)
    process.kill()
    raise RuntimeError("server never printed its listening address")


def stop_serve(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - defensive
        process.kill()
        process.communicate()


def post_query(
    conn: http.client.HTTPConnection, text: str, retries: int = 4
) -> tuple[int, dict, http.client.HTTPConnection, int]:
    """POST /query, reopening the connection (with backoff) if it was dropped.

    Returns the retry count so the load run can report how hard the client
    had to work; the threaded server closes every connection (HTTP/1.0) and
    under bursts a client can still race its backlog.
    """
    body = json.dumps({"query": text}).encode()
    for attempt in range(retries + 1):
        try:
            conn.request(
                "POST", "/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read()), conn, attempt
        except (http.client.HTTPException, ConnectionError, OSError):
            if attempt == retries:
                raise
            conn.close()
            time.sleep(0.005 * (2**attempt))
            conn = http.client.HTTPConnection(conn.host, conn.port, timeout=60)
    raise AssertionError("unreachable")


def run_load(host: str, port: int, n_clients: int) -> dict:
    """N keep-alive clients, each issuing the repeated-template suite."""
    answers: list[tuple[str, float]] = []
    failures: list[str] = []
    latencies: list[float] = []
    retries = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def client(offset: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        barrier.wait()
        for i in range(REQUESTS_PER_CLIENT):
            text = QUERY_TEXTS[(offset + i) % len(QUERY_TEXTS)]
            started = time.perf_counter()
            try:
                status, payload, conn, attempts = post_query(conn, text)
            except Exception as error:  # noqa: BLE001 - recorded, fails the bench
                with lock:
                    failures.append(f"{type(error).__name__}: {error}")
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                retries[0] += attempts
                if status == 200:
                    answers.append((text, payload["value"]))
                else:
                    failures.append(f"HTTP {status}: {payload}")
        conn.close()

    threads = [threading.Thread(target=client, args=(k,)) for k in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "seconds": elapsed,
        "n_requests": len(answers),
        "qps": len(answers) / elapsed if elapsed else 0.0,
        "p99_request_seconds": latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0,
        "retries": retries[0],
        "answers": answers,
        "failures": failures,
    }


def run_load_sdk(host: str, port: int, n_clients: int) -> dict:
    """The same suite through :class:`HypeRClient` (one SDK client per thread).

    The SDK adds schema encode/decode, typed answers and retry plumbing on
    top of the raw socket; this run prices that overhead.
    """
    answers: list[tuple[str, float]] = []
    failures: list[str] = []
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def client_run(offset: int) -> None:
        with HypeRClient(host, port, timeout=60.0, max_retries=4) as client:
            barrier.wait()
            for i in range(REQUESTS_PER_CLIENT):
                text = QUERY_TEXTS[(offset + i) % len(QUERY_TEXTS)]
                started = time.perf_counter()
                try:
                    answer = client.query(text)
                except Exception as error:  # noqa: BLE001 - recorded, fails the bench
                    with lock:
                        failures.append(f"{type(error).__name__}: {error}")
                    return
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    answers.append((text, answer.value))

    threads = [threading.Thread(target=client_run, args=(k,)) for k in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "seconds": elapsed,
        "n_requests": len(answers),
        "qps": len(answers) / elapsed if elapsed else 0.0,
        "p99_request_seconds": latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0,
        "answers": answers,
        "failures": failures,
    }


def warm(host: str, port: int, texts: list[str]) -> None:
    conn = http.client.HTTPConnection(host, port, timeout=120)
    for text in texts:
        status, payload, conn, _ = post_query(conn, text)
        assert status == 200, payload
    conn.close()


def scrape_metrics(host: str, port: int) -> str:
    """GET /v1/metrics; the bytes must already be valid exposition format."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    conn.request("GET", "/v1/metrics")
    response = conn.getresponse()
    text = response.read().decode("utf-8")
    conn.close()
    assert response.status == 200, text[:200]
    assert response.getheader("Content-Type", "").startswith("text/plain")
    validate_exposition(text)
    return text


def parse_samples(text: str) -> dict[str, float]:
    """Flat ``{series: value}`` from exposition text (for scrape deltas)."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    return samples


def get_stats(host: str, port: int) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    conn.request("GET", "/stats")
    response = conn.getresponse()
    payload = json.loads(response.read())
    conn.close()
    return payload


def run_overload(host: str, port: int, n_clients: int) -> dict:
    """Fire n_clients simultaneous uncached requests at a tiny-capacity server."""
    statuses: list[int] = []
    resets: list[str] = []
    values: list[tuple[str, float]] = []
    retry_headers: list[str | None] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients)

    def client(index: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=120)
        text = OVERLOAD_TEXTS[index % len(OVERLOAD_TEXTS)]
        barrier.wait()
        try:
            conn.request(
                "POST", "/query",
                body=json.dumps({"query": text}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        except Exception as error:  # noqa: BLE001 - a reset fails the bench
            with lock:
                resets.append(f"{type(error).__name__}: {error}")
            return
        with lock:
            statuses.append(response.status)
            if response.status == 200:
                values.append((text, payload["value"]))
            elif response.status == 429:
                # collected here, asserted in the main thread (a failed
                # assert inside a worker would vanish into excepthook)
                retry_headers.append(response.getheader("Retry-After"))
        conn.close()

    threads = [threading.Thread(target=client, args=(k,)) for k in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {
        "statuses": statuses,
        "resets": resets,
        "values": values,
        "retry_headers": retry_headers,
    }


def test_async_load():
    # ground truth: direct HypeRService execution on the same dataset/config
    dataset = make_german_syn(N_ROWS, seed=SEED)
    direct = HypeRService(
        dataset.database, dataset.causal_dag, EngineConfig(regressor="linear")
    )
    expected = {text: direct.execute(text).value for text in QUERY_TEXTS}
    expected.update({text: direct.execute(text).value for text in OVERLOAD_TEXTS})

    # -- threaded front-end ---------------------------------------------------------
    process, host, port = spawn_serve()
    try:
        warm(host, port, QUERY_TEXTS)
        threaded = run_load(host, port, N_CLIENTS)
    finally:
        stop_serve(process)
    assert not threaded["failures"], threaded["failures"][:5]

    # -- async front-end (ample capacity: measure throughput, not rejection) --------
    # raw http.client sockets first, then the HypeRClient SDK on the same
    # warm server: the delta is the SDK's overhead
    process, host, port = spawn_serve(
        "--async", "--max-inflight", "8", "--queue-depth", str(max(64, 4 * N_CLIENTS)),
        "--warm-query", QUERY_TEXTS[0],
    )
    try:
        warm(host, port, QUERY_TEXTS)
        metrics_before = parse_samples(scrape_metrics(host, port))
        asynchronous = run_load(host, port, N_CLIENTS)
        sdk = run_load_sdk(host, port, N_CLIENTS)
        stats = get_stats(host, port)
        metrics_text = scrape_metrics(host, port)
    finally:
        stop_serve(process)
    metrics_after = parse_samples(metrics_text)
    metrics_delta = {
        series: metrics_after[series] - metrics_before.get(series, 0.0)
        for series in sorted(metrics_after)
        if metrics_after[series] != metrics_before.get(series, 0.0)
    }
    _METRICS_PATH.write_text(metrics_text)
    assert not asynchronous["failures"], asynchronous["failures"][:5]
    assert not sdk["failures"], sdk["failures"][:5]
    client_over_raw = sdk["qps"] / asynchronous["qps"] if asynchronous["qps"] else 0.0
    admission = stats["aserve"]["admission"]
    decision_p99 = admission["decisions"]["p99_seconds"]

    # -- overload: offered load exceeds max_inflight + queue_depth -------------------
    process, host, port = spawn_serve(
        "--async", "--max-inflight", "2", "--queue-depth", "2",
        "--warm-query", OVERLOAD_TEXTS[0],
    )
    try:
        overload = run_overload(host, port, N_CLIENTS)
        overload_stats = get_stats(host, port)
    finally:
        stop_serve(process)

    # -- report ----------------------------------------------------------------------
    rows = [
        [
            "threaded ThreadingHTTPServer",
            fmt(threaded["seconds"]),
            fmt(threaded["qps"], 1),
            fmt(threaded["p99_request_seconds"] * 1e3, 1),
            threaded["retries"],
        ],
        [
            "async aserve (raw sockets)",
            fmt(asynchronous["seconds"]),
            fmt(asynchronous["qps"], 1),
            fmt(asynchronous["p99_request_seconds"] * 1e3, 1),
            asynchronous["retries"],
        ],
        [
            "async aserve (HypeRClient SDK)",
            fmt(sdk["seconds"]),
            fmt(sdk["qps"], 1),
            fmt(sdk["p99_request_seconds"] * 1e3, 1),
            0,
        ],
    ]
    print_table(
        f"Serving front-ends — {N_CLIENTS} concurrent clients x "
        f"{REQUESTS_PER_CLIENT} queries (German-Syn {N_ROWS}, warm)",
        ["front-end", "total s", "q/s", "p99 ms", "client retries"],
        rows,
    )
    n_accepted = overload["statuses"].count(200)
    n_rejected = overload["statuses"].count(429)
    print(
        f"admission decisions: p50 {admission['decisions']['p50_seconds'] * 1e6:.0f} us, "
        f"p99 {decision_p99 * 1e6:.0f} us over {admission['decisions']['count']} decisions"
    )
    print(
        f"overload (capacity 4, {N_CLIENTS} simultaneous): "
        f"{n_accepted} accepted, {n_rejected} rejected with 429, "
        f"{len(overload['resets'])} resets, "
        f"peak queue {overload_stats['aserve']['admission']['peak_queued']}"
    )
    print(
        f"HypeRClient SDK overhead: {sdk['qps']:.1f} q/s vs "
        f"{asynchronous['qps']:.1f} q/s raw ({client_over_raw:.2f}x)"
    )

    mismatches = [
        (text, value, expected[text])
        for text, value in (
            threaded["answers"]
            + asynchronous["answers"]
            + sdk["answers"]
            + overload["values"]
        )
        if value != expected[text]
    ]

    payload = {
        "dataset": f"german-syn-{N_ROWS}",
        "n_clients": N_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "threaded_qps": threaded["qps"],
        "async_qps": asynchronous["qps"],
        "async_over_threaded": asynchronous["qps"] / threaded["qps"],
        "client_qps": sdk["qps"],
        "client_over_raw": client_over_raw,
        "client_p99_request_seconds": sdk["p99_request_seconds"],
        "threaded_p99_request_seconds": threaded["p99_request_seconds"],
        "async_p99_request_seconds": asynchronous["p99_request_seconds"],
        "admission_decision_p99_seconds": decision_p99,
        "admission_decisions": admission["decisions"]["count"],
        "overload_accepted": n_accepted,
        "overload_rejected_429": n_rejected,
        "overload_resets": len(overload["resets"]),
        "overload_peak_queued": overload_stats["aserve"]["admission"]["peak_queued"],
        "overload_rejected_total_stat": overload_stats["serving"]["rejected_total"],
        "n_bitwise_mismatches": len(mismatches),
        #: /v1/metrics scrape delta across the raw + SDK load runs
        "metrics_delta": metrics_delta,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_RESULTS_PATH.name} and {_METRICS_PATH.name}")

    # -- acceptance criteria ---------------------------------------------------------
    assert not mismatches, mismatches[:3]
    # every accepted query crossed the counter exactly once while loaded
    assert metrics_delta.get("hyper_queries_total") == (
        asynchronous["n_requests"] + sdk["n_requests"]
    ), metrics_delta
    assert asynchronous["qps"] >= threaded["qps"], payload
    assert client_over_raw >= 0.9, payload  # SDK costs <= 10% throughput
    assert decision_p99 < 0.05, payload
    assert n_accepted + n_rejected == N_CLIENTS
    assert not overload["resets"], overload["resets"][:5]
    assert n_rejected >= 1, payload  # offered 32 vs capacity 4: excess rejected
    assert len(overload["retry_headers"]) == n_rejected
    assert all(
        header is not None and int(header) >= 1
        for header in overload["retry_headers"]
    ), overload["retry_headers"]
    assert overload_stats["aserve"]["admission"]["peak_queued"] <= 2  # bounded queue
    assert overload_stats["serving"]["rejected_total"] == n_rejected
