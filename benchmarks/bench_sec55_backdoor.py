"""Section 5.5 ("What-if: backdoor set size") — runtime vs adjustment-set size.

The paper grows the backdoor set from 2 attributes to all attributes and
reports the runtime increasing several-fold.  Here the same effect is shown by
comparing HypeR (minimal backdoor set derived from the causal graph) with
HypeR-NB (adjusts for every attribute): the NB variant trains the regression on
a strictly larger feature set and is correspondingly slower, while both return
similar answers on German-Syn (no mediators among the extra attributes).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_CONFIG, fmt, print_table
from repro import HypeR, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.relational import post


def test_sec55_backdoor_set_size(german, benchmark):
    query = WhatIfQuery(
        use=german.default_use,
        updates=[AttributeUpdate("Status", SetTo(4))],
        output_attribute="Credit",
        output_aggregate="count",
        for_clause=(post("Credit") == 1),
    )
    base = HypeR(german.database, german.causal_dag, BENCH_CONFIG)
    nb = base.no_background()

    started = time.perf_counter()
    small_result = base.what_if(query)
    small_seconds = time.perf_counter() - started

    started = time.perf_counter()
    large_result = nb.what_if(query)
    large_seconds = time.perf_counter() - started

    print_table(
        "Section 5.5 — runtime vs backdoor-set size (German-Syn)",
        ["variant", "#adjustment attributes", "seconds", "query output"],
        [
            ["HypeR (graph backdoor)", len(small_result.backdoor_set), fmt(small_seconds), fmt(small_result.value, 1)],
            ["HypeR-NB (all attributes)", len(large_result.backdoor_set), fmt(large_seconds), fmt(large_result.value, 1)],
        ],
    )
    assert len(large_result.backdoor_set) > len(small_result.backdoor_set)
    assert large_seconds >= small_seconds * 0.8
    # both variants agree on the direction/magnitude of the effect here
    assert abs(large_result.value - small_result.value) / small_result.value < 0.25

    benchmark.pedantic(lambda: base.what_if(query), rounds=1, iterations=1)
