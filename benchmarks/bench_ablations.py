"""Ablations of HypeR's design choices (called out in DESIGN.md).

1. Block-independent decomposition on/off — the answer must not change; the
   decomposition is bookkeeping plus an optimisation opportunity.
2. Regressor choice (random forest vs linear vs ridge) — all recover the
   direction of the causal effect; the forest is the paper's default.
3. Zero-support index — iterating only over observed value combinations
   (FrequencyTable) versus the full cross product of the attribute domains.
"""

from __future__ import annotations

import time
from dataclasses import replace
from itertools import product

import pytest

from benchmarks.conftest import BENCH_CONFIG, FAST_CONFIG, fmt, print_table
from repro import EngineConfig, HypeR, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.ml import FrequencyTable
from repro.relational import post


def _status_query(dataset):
    return WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Status", SetTo(4))],
        output_attribute="Credit",
        output_aggregate="count",
        for_clause=(post("Credit") == 1),
    )


def test_ablation_block_decomposition(amazon, benchmark):
    query = WhatIfQuery(
        use=amazon.default_use,
        updates=[AttributeUpdate("Price", SetTo(400.0))],
        output_attribute="Rtng",
        output_aggregate="avg",
    )
    with_blocks = HypeR(amazon.database, amazon.causal_dag, FAST_CONFIG).what_if(query)
    without = HypeR(
        amazon.database, amazon.causal_dag, replace(FAST_CONFIG, use_blocks=False)
    ).what_if(query)
    print_table(
        "Ablation — block decomposition (Amazon-Syn)",
        ["setting", "blocks", "answer"],
        [
            ["blocks on", with_blocks.n_blocks, fmt(with_blocks.value)],
            ["blocks off", without.n_blocks, fmt(without.value)],
        ],
    )
    assert with_blocks.value == pytest.approx(without.value, rel=1e-9)
    assert with_blocks.n_blocks > without.n_blocks

    session = HypeR(amazon.database, amazon.causal_dag, FAST_CONFIG)
    benchmark.pedantic(lambda: session.what_if(query), rounds=1, iterations=1)


def test_ablation_regressor_choice(german, benchmark):
    query = _status_query(german)
    rows = []
    values = {}
    for kind in ("forest", "linear", "ridge"):
        config = (
            BENCH_CONFIG
            if kind == "forest"
            else EngineConfig(regressor=kind, random_state=0)
        )
        session = HypeR(german.database, german.causal_dag, config)
        started = time.perf_counter()
        high = session.what_if(query).value
        low = session.what_if(
            query.with_updates([AttributeUpdate("Status", SetTo(1))])
        ).value
        elapsed = time.perf_counter() - started
        values[kind] = (high, low)
        rows.append([kind, fmt(high, 1), fmt(low, 1), fmt(elapsed)])
    print_table(
        "Ablation — estimator backend (German-Syn, Status max vs min)",
        ["regressor", "count good credit (Status=max)", "(Status=min)", "seconds (both queries)"],
        rows,
    )
    for kind, (high, low) in values.items():
        assert high > low, f"{kind} regressor lost the direction of the effect"

    session = HypeR(german.database, german.causal_dag, BENCH_CONFIG)
    benchmark.pedantic(lambda: session.what_if(query), rounds=1, iterations=1)


def test_ablation_zero_support_index(german, benchmark):
    """Iterating over observed combinations only, vs the full domain cross product."""
    relation = german.database["Credit"]
    columns = {
        "Status": list(relation.column_view("Status")),
        "Savings": list(relation.column_view("Savings")),
        "Housing": list(relation.column_view("Housing")),
        "Credit": list(relation.column_view("Credit")),
    }
    table = FrequencyTable.fit(columns)

    def with_index():
        total = 0.0
        for status in table.observed_values("Status"):
            for savings in table.observed_values("Savings", {"Status": status}):
                total += table.probability(
                    {"Credit": 1}, {"Status": status, "Savings": savings}
                )
        return total

    def without_index():
        total = 0.0
        status_domain = relation.schema.domain("Status").values()
        savings_domain = relation.schema.domain("Savings").values()
        for status, savings in product(status_domain, savings_domain):
            total += table.probability({"Credit": 1}, {"Status": status, "Savings": savings})
        return total

    started = time.perf_counter()
    indexed_value = with_index()
    indexed_seconds = time.perf_counter() - started
    started = time.perf_counter()
    full_value = without_index()
    full_seconds = time.perf_counter() - started

    n_indexed = len(table.observed_values("Status")) * len(table.observed_values("Savings"))
    n_full = len(relation.schema.domain("Status").values()) * len(
        relation.schema.domain("Savings").values()
    )
    print_table(
        "Ablation — zero-support index (German-Syn conditional probabilities)",
        ["strategy", "combinations visited", "seconds", "accumulated probability"],
        [
            ["observed-support index", n_indexed, fmt(indexed_seconds, 4), fmt(indexed_value, 3)],
            ["full domain product", n_full, fmt(full_seconds, 4), fmt(full_value, 3)],
        ],
    )
    # zero-support combinations contribute nothing, so the answers agree ...
    assert indexed_value == pytest.approx(full_value, rel=1e-9)
    # ... while the index visits no more combinations than the full product
    assert n_indexed <= n_full

    benchmark.pedantic(with_index, rounds=1, iterations=1)
