"""Figure 8 — attribute importance via min/max what-if updates.

For every mutable attribute the query output (share of individuals with the
positive outcome after forcing the attribute to its domain minimum / maximum)
is computed; the gap between the two is the attribute's causal importance.

Paper findings reproduced here:
* German (8a): Status and CreditHistory show the largest gaps; Housing and
  Investment barely matter.
* Adult (8b): Marital status dominates, followed by education/occupation, with
  work class clearly weaker.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_CONFIG, fmt, print_table
from repro import HypeR, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.relational import post

GERMAN_ATTRIBUTES = {
    "Status": (1, 4),
    "CreditHistory": (0, 4),
    "Housing": (1, 3),
    "Investment": (1, 5),
}

ADULT_ATTRIBUTES = {
    "Marital": (0, 1),
    "Education": (2, 14),
    "Occupation": (0, 9),
    "WorkClass": (0, 6),
}


def _gap(session, dataset, attribute, low, high, outcome, positive=1):
    def run(value):
        query = WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate(attribute, SetTo(value))],
            output_attribute=outcome,
            output_aggregate="count",
            for_clause=(post(outcome) == positive),
        )
        return session.what_if(query).value

    n = dataset.database[dataset.default_use.base_relation]
    low_value = run(low) / len(n)
    high_value = run(high) / len(n)
    return low_value, high_value, high_value - low_value


def test_fig8a_german_attribute_importance(german, benchmark):
    session = HypeR(german.database, german.causal_dag, BENCH_CONFIG)
    gaps = {}
    rows = []
    for attribute, (low, high) in GERMAN_ATTRIBUTES.items():
        low_v, high_v, gap = _gap(session, german, attribute, low, high, "Credit")
        gaps[attribute] = gap
        rows.append([attribute, fmt(low_v), fmt(high_v), fmt(gap)])
    print_table(
        "Figure 8a — German: share with good credit at attribute min/max",
        ["attribute", "at minimum", "at maximum", "gap"],
        rows,
    )
    # Status and CreditHistory dominate Housing and Investment.
    assert gaps["Status"] > gaps["Housing"]
    assert gaps["Status"] > gaps["Investment"]
    assert gaps["CreditHistory"] > gaps["Investment"]

    benchmark.pedantic(
        lambda: _gap(session, german, "Status", 1, 4, "Credit"), rounds=1, iterations=1
    )


def test_fig8b_adult_attribute_importance(adult, benchmark):
    session = HypeR(adult.database, adult.causal_dag, BENCH_CONFIG)
    gaps = {}
    rows = []
    for attribute, (low, high) in ADULT_ATTRIBUTES.items():
        low_v, high_v, gap = _gap(session, adult, attribute, low, high, "Income")
        gaps[attribute] = gap
        rows.append([attribute, fmt(low_v), fmt(high_v), fmt(gap)])
    print_table(
        "Figure 8b — Adult: share with income > 50K at attribute min/max",
        ["attribute", "at minimum", "at maximum", "gap"],
        rows,
    )
    # Marital status has the largest effect; work class the smallest.
    assert gaps["Marital"] >= max(gaps["Education"], gaps["Occupation"]) - 0.02
    assert gaps["Marital"] > gaps["WorkClass"]

    benchmark.pedantic(
        lambda: _gap(session, adult, "Marital", 0, 1, "Income"), rounds=1, iterations=1
    )
