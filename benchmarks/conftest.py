"""Shared fixtures and helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper's
evaluation (Section 5).  Dataset sizes are scaled down from the paper's (which
go up to one million rows) so the whole harness completes on a laptop/CI budget
in minutes; EXPERIMENTS.md records the scaling factors and compares the
measured shapes against the paper's reported trends.

Each benchmark prints the rows/series it reproduces (so the numbers appear in
the pytest-benchmark output log) and wraps one representative computation in
the ``benchmark`` fixture so ``pytest benchmarks/ --benchmark-only`` measures
it.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig
from repro.datasets import make_adult_syn, make_amazon_syn, make_german_syn, make_student_syn
from repro.relational import set_default_backend


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--backend",
            action="store",
            default=None,
            choices=("rows", "columnar"),
            help="relational backend the benchmarks run on (default: columnar)",
        )
    except ValueError:  # pragma: no cover - option already registered elsewhere
        pass


def pytest_configure(config):
    backend = config.getoption("--backend", default=None)
    if backend:
        # Set before any session fixture builds a dataset, so every relation
        # (and therefore every benchmark) runs on the requested backend.
        set_default_backend(backend)

#: configuration used by the benchmarks: a small random forest, as in the paper.
BENCH_CONFIG = EngineConfig(regressor="forest", n_forest_trees=8, max_tree_depth=5, random_state=0)
#: configuration for sweeps where many engine calls are made.
FAST_CONFIG = EngineConfig(regressor="linear", random_state=0)


@pytest.fixture(scope="session")
def german():
    return make_german_syn(3_000, seed=42)


@pytest.fixture(scope="session")
def german_continuous():
    return make_german_syn(2_000, seed=42, continuous=True)


@pytest.fixture(scope="session")
def adult():
    return make_adult_syn(3_000, seed=42)


@pytest.fixture(scope="session")
def amazon():
    return make_amazon_syn(400, seed=42)


@pytest.fixture(scope="session")
def student():
    return make_student_syn(800, seed=42)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a small fixed-width table into the captured output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"
