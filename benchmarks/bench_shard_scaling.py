"""Shard-parallel execution: process workers vs the single-process cold path.

The 100-query repeated-template what-if suite of the service benchmark
(Figure 12 Status/Credit template, varying update constants) on German-Syn
4000, three ways:

* **cold single-process** — 100 ``HypeR.what_if()`` calls, each rebuilding
  the view, the DAG projection, the block decomposition and the regressors;
* **1 shard worker** — the same suite through
  ``HypeRService(execution="processes", n_shards=1)``: the full shard
  pipeline (broadcast, per-shard evaluation, merge) without parallelism;
* **4 shard workers** — ``n_shards=4``: the database is partitioned along
  block-decomposition boundaries, each worker owns a quarter of the rows for
  prediction/accumulation and keeps its own plan caches, and the parent
  merges partials into exact answers.

Pool start-up (fork + zero-copy shared-memory snapshot hand-off) is measured
separately from the suite — the pool is persistent and its start cost is paid
once per service lifetime, not per query or per generation — and the shipped
broadcast bytes are recorded alongside the timings.

Asserts the acceptance criteria of the zero-copy/fused-kernel issue: the
4-worker pool is >= 2x faster than cold single-process **and no slower than
the 1-worker pool** (scale-out must not anti-scale), and the shard-merged
answers are **bitwise identical** (max |diff| == 0.0) to the unsharded path
on both relational backends.  Results go to ``BENCH_shard.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import fmt, print_table
from repro import EngineConfig, HypeR, HypeRService, WhatIfQuery
from repro.core import AttributeUpdate, MultiplyBy
from repro.datasets import make_german_syn
from repro.relational import post

N_ROWS = 4_000
N_QUERIES = 100
N_WORKERS = 4

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _suite(dataset) -> list[WhatIfQuery]:
    """100 parameter variants of one what-if template (shared logical plan)."""
    return [
        WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Status", MultiplyBy(1.0 + 0.005 * i))],
            output_attribute="Credit",
            output_aggregate="count",
            for_clause=(post("Credit") == 1),
        )
        for i in range(N_QUERIES)
    ]


def _run_backend(backend: str) -> dict:
    config = EngineConfig(regressor="linear", random_state=0, backend=backend)
    dataset = make_german_syn(N_ROWS, seed=7)
    queries = _suite(dataset)

    cold_session = HypeR(dataset.database, dataset.causal_dag, config)
    started = time.perf_counter()
    cold_results = [cold_session.what_if(q) for q in queries]
    cold_seconds = time.perf_counter() - started

    shard_timings = {}
    start_timings = {}
    broadcast_bytes = {}
    shard_results = None
    pool_mode = None
    for n_shards in (1, N_WORKERS):
        service = HypeRService(
            dataset.database,
            dataset.causal_dag,
            config,
            execution="processes",
            n_shards=n_shards,
        )
        try:
            started = time.perf_counter()
            service.start_pool()
            start_timings[n_shards] = time.perf_counter() - started
            # One broadcast query warms every worker's plan caches (view,
            # estimator fit, fused kernels) so both pool sizes enter the
            # timed suite in the same steady state a serving process lives in.
            service.execute(queries[0])
            started = time.perf_counter()
            results = service.execute_many(queries)
            shard_timings[n_shards] = time.perf_counter() - started
            pool_stats = service.stats()["pool"]
            broadcast_bytes[n_shards] = (
                pool_stats["bytes_to_workers"] + pool_stats["bytes_from_workers"]
            )
            if n_shards == N_WORKERS:
                shard_results = results
                pool_mode = pool_stats["mode"]
        finally:
            service.close()

    max_diff = max(
        abs(a.value - b.value) for a, b in zip(cold_results, shard_results)
    )
    return {
        "backend": backend,
        "cold_seconds": cold_seconds,
        "shard1_seconds": shard_timings[1],
        "shard4_seconds": shard_timings[N_WORKERS],
        "pool_start1_seconds": start_timings[1],
        "pool_start4_seconds": start_timings[N_WORKERS],
        "broadcast_bytes_shard1": broadcast_bytes[1],
        "broadcast_bytes_shard4": broadcast_bytes[N_WORKERS],
        "cold_qps": N_QUERIES / cold_seconds,
        "shard4_qps": N_QUERIES / shard_timings[N_WORKERS],
        "speedup_4_workers": cold_seconds / shard_timings[N_WORKERS],
        "max_abs_diff": max_diff,
        "pool_mode": pool_mode,
    }


def test_shard_scaling(benchmark):
    runs = {backend: _run_backend(backend) for backend in ("columnar", "rows")}

    rows = []
    for backend, run in runs.items():
        rows.append(
            [
                f"{backend} cold single-process",
                fmt(run["cold_seconds"]),
                fmt(N_QUERIES / run["cold_seconds"], 1),
                "1.0x",
            ]
        )
        rows.append(
            [
                f"{backend} 1 shard worker",
                fmt(run["shard1_seconds"]),
                fmt(N_QUERIES / run["shard1_seconds"], 1),
                f"{run['cold_seconds'] / run['shard1_seconds']:.1f}x",
            ]
        )
        rows.append(
            [
                f"{backend} {N_WORKERS} shard workers",
                fmt(run["shard4_seconds"]),
                fmt(run["shard4_qps"], 1),
                f"{run['speedup_4_workers']:.1f}x",
            ]
        )
    print_table(
        f"Shard-parallel throughput — {N_QUERIES}-query what-if suite "
        f"(German-Syn {N_ROWS})",
        ["mode", "total s", "queries/s", "speedup"],
        rows,
    )
    for backend, run in runs.items():
        print(
            f"{backend}: max |sharded - unsharded| = {run['max_abs_diff']!r} "
            f"(pool mode: {run['pool_mode']}; pool start "
            f"{run['pool_start4_seconds']:.2f}s; broadcast bytes "
            f"{run['broadcast_bytes_shard4']:,} @4 / "
            f"{run['broadcast_bytes_shard1']:,} @1)"
        )

    payload = {
        "dataset": f"german-syn-{N_ROWS}",
        "n_queries": N_QUERIES,
        "n_workers": N_WORKERS,
        **{f"{backend}_{k}": v for backend, run in runs.items() for k, v in run.items()},
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_RESULTS_PATH.name}")

    # acceptance criteria of the zero-copy/fused-kernel issue
    primary = runs["columnar"]
    assert primary["speedup_4_workers"] >= 2.0, payload
    assert primary["shard4_seconds"] <= primary["shard1_seconds"], payload
    for run in runs.values():
        assert run["max_abs_diff"] == 0.0, payload

    dataset = make_german_syn(N_ROWS, seed=7)
    config = EngineConfig(regressor="linear", random_state=0)
    service = HypeRService(
        dataset.database,
        dataset.causal_dag,
        config,
        execution="processes",
        n_shards=N_WORKERS,
        result_cache_size=0,
    )
    query = _suite(dataset)[0]
    service.execute(query)  # warm the pool and the per-worker caches
    try:
        benchmark.pedantic(lambda: service.execute(query), rounds=3, iterations=1)
    finally:
        service.close()
