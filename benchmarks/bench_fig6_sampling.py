"""Figure 6 — effect of the training-sample size on HypeR-sampled.

(a) Solution quality: the spread of the query output across repeated random
    samples shrinks as the sample grows and converges on the full-data answer.
(b) Running time: grows roughly linearly with the sample size and plateaus once
    the sample covers the data.

The paper sweeps up to one million rows with a 100k sample; here the dataset is
3k rows and the samples are proportionally smaller.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, FAST_CONFIG, fmt, print_table
from repro import HypeR, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.relational import post

SAMPLE_SIZES = (250, 500, 1_000, 2_000)
N_REPEATS = 5


def _query(dataset):
    return WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Status", SetTo(4))],
        output_attribute="Credit",
        output_aggregate="count",
        for_clause=(post("Credit") == 1),
    )


def test_fig6_sample_size_quality_and_runtime(german, benchmark):
    # The sweep uses the deterministic linear estimator so the spread across
    # repeats isolates the variance induced by the row sample itself.
    query = _query(german)
    n_rows = len(german.database["Credit"])
    full_session = HypeR(german.database, german.causal_dag, FAST_CONFIG)
    full_value = full_session.what_if(query).value

    rows = []
    spreads = []
    runtimes = []
    for sample_size in SAMPLE_SIZES:
        values = []
        started = time.perf_counter()
        for repeat in range(N_REPEATS):
            config = replace(FAST_CONFIG.with_sample_size(sample_size), random_state=repeat)
            session = HypeR(german.database, german.causal_dag, config)
            values.append(session.what_if(query).value / n_rows)
        elapsed = (time.perf_counter() - started) / N_REPEATS
        spread = float(np.std(values))
        spreads.append(spread)
        runtimes.append(elapsed)
        rows.append(
            [sample_size, fmt(float(np.mean(values))), fmt(spread, 4), fmt(elapsed)]
        )
    rows.append([n_rows, fmt(full_value / n_rows), "0.0000 (full data)", "-"])
    print_table(
        "Figure 6 (scaled) — HypeR-sampled vs sample size (German-Syn)",
        ["sample size", "mean output (fraction good credit)", "std across samples", "seconds/query"],
        rows,
    )

    # (a) the spread with the largest sample is no worse than with the smallest
    assert spreads[-1] <= spreads[0] + 0.02
    # (b) larger samples do not get cheaper
    assert runtimes[-1] >= runtimes[0] * 0.5

    session = HypeR(
        german.database, german.causal_dag, BENCH_CONFIG.with_sample_size(SAMPLE_SIZES[1])
    )
    benchmark.pedantic(lambda: session.what_if(query), rounds=1, iterations=1)
