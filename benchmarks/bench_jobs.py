"""Interactive latency under a background job, plus async/sync result parity.

Drives one real ``repro serve --jobs-dir`` subprocess.  The interactive
suite (warm repeated-template what-ifs through :class:`HypeRClient`) is
measured twice: once on an idle server, once while a large background batch
job is executing.  The job path must stay out of the interactive path's
way, and its results must be exactly the synchronous answers:

* **interactive p99 with a background job running < 2x the idle p99**
  (with a small absolute floor so sub-millisecond idle baselines don't turn
  scheduler jitter into a failure);
* **max_abs_diff == 0.0** between every batch item's answer value and
  direct ``HypeRService.execute`` on the same dataset/config.

Results land in ``BENCH_jobs.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import fmt, print_table
from repro import EngineConfig, HypeRService
from repro.api import HypeRClient
from repro.datasets import make_german_syn

N_ROWS = 2_000
SEED = 7
N_INTERACTIVE = 150
#: floor on the loaded-p99 bound: a 0.5 ms idle p99 must not make 1.2 ms fail
P99_FLOOR_SECONDS = 0.05

_ROOT = Path(__file__).resolve().parent.parent
_RESULTS_PATH = _ROOT / "BENCH_jobs.json"

INTERACTIVE_TEXTS = [
    f"USE Credit UPDATE(Status) = {value} "
    "OUTPUT COUNT(POST(Credit)) FOR POST(Credit) = 1"
    for value in range(1, 9)
]
#: distinct update constants: every background item does real engine work
JOB_TEXTS = [
    f"USE Credit UPDATE(CreditAmount) = {1000 + k} OUTPUT AVG(POST(Credit))"
    for k in range(200)
]


def spawn_serve(jobs_dir: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "german-syn", "--rows", str(N_ROWS), "--seed", str(SEED),
            "--regressor", "linear", "--port", "0", "--jobs-dir", jobs_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 180
    assert process.stdout is not None
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("server exited before listening")
        if "listening on http://" in line:
            address = line.rsplit("http://", 1)[-1].strip()
            host, port = address.split(":")
            return process, host, int(port)
    process.kill()
    raise RuntimeError("server never printed its listening address")


def stop_serve(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - defensive
        process.kill()
        process.communicate()


def run_interactive(client: HypeRClient) -> dict:
    latencies: list[float] = []
    for index in range(N_INTERACTIVE):
        text = INTERACTIVE_TEXTS[index % len(INTERACTIVE_TEXTS)]
        started = time.perf_counter()
        client.query(text)
        latencies.append(time.perf_counter() - started)
    latencies.sort()
    return {
        "n": len(latencies),
        "p50_seconds": latencies[len(latencies) // 2],
        "p99_seconds": latencies[int(0.99 * (len(latencies) - 1))],
        "mean_seconds": sum(latencies) / len(latencies),
    }


def test_background_job_interference():
    # ground truth: direct execution on the same dataset/config
    dataset = make_german_syn(N_ROWS, seed=SEED)
    direct = HypeRService(
        dataset.database, dataset.causal_dag, EngineConfig(regressor="linear")
    )
    expected = {text: float(direct.execute(text).value) for text in JOB_TEXTS}
    direct.close()

    with tempfile.TemporaryDirectory(prefix="bench-jobs-") as jobs_dir:
        process, host, port = spawn_serve(jobs_dir)
        try:
            client = HypeRClient(
                host, port, client_id="bench-jobs", timeout=120.0
            )
            # warm the interactive templates, then the idle baseline
            for text in INTERACTIVE_TEXTS:
                client.query(text)
            idle = run_interactive(client)

            # the background batch: low priority, real per-item work
            job = client.submit_job(queries=JOB_TEXTS, priority="low")
            status = client.job(job.job_id)
            assert not status.terminal, "background job finished before the run"
            loaded = run_interactive(client)
            running_after = client.job(job.job_id)

            done = client.wait(job.job_id, timeout=600)
            assert done.state == "succeeded", (done.state, done.error)
            payload = client.job_result(job.job_id)
            client.close()
        finally:
            stop_serve(process)

    diffs = [
        abs(float(item["result"]["value"]) - expected[JOB_TEXTS[item["index"]]])
        for item in payload["results"]
    ]
    max_abs_diff = max(diffs)
    ratio = loaded["p99_seconds"] / idle["p99_seconds"]
    bound = max(2.0 * idle["p99_seconds"], P99_FLOOR_SECONDS)

    print_table(
        f"Interactive latency vs background batch job "
        f"(German-Syn {N_ROWS}, {len(JOB_TEXTS)}-query job)",
        ["phase", "n", "p50 ms", "p99 ms"],
        [
            ["idle", idle["n"], fmt(idle["p50_seconds"] * 1e3, 2),
             fmt(idle["p99_seconds"] * 1e3, 2)],
            ["job running", loaded["n"], fmt(loaded["p50_seconds"] * 1e3, 2),
             fmt(loaded["p99_seconds"] * 1e3, 2)],
        ],
    )
    print(
        f"background job: {running_after.completed}/{running_after.total} items "
        f"done when the loaded run finished; p99 ratio {ratio:.2f}x, "
        f"max |async - sync| = {max_abs_diff}"
    )

    results = {
        "dataset": f"german-syn-{N_ROWS}",
        "n_interactive": N_INTERACTIVE,
        "job_items": len(JOB_TEXTS),
        "idle_p50_seconds": idle["p50_seconds"],
        "idle_p99_seconds": idle["p99_seconds"],
        "loaded_p50_seconds": loaded["p50_seconds"],
        "loaded_p99_seconds": loaded["p99_seconds"],
        "p99_ratio": ratio,
        "job_items_done_during_run": running_after.completed,
        "job_attempts": done.attempts,
        "max_abs_diff": max_abs_diff,
    }
    _RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {_RESULTS_PATH.name}")

    # -- acceptance criteria ---------------------------------------------------------
    assert max_abs_diff == 0.0, max_abs_diff
    assert loaded["p99_seconds"] < bound, results
