"""Cluster serving: the coordinator front door vs direct single-node calls.

A 40-query what-if suite (the repeated-template shape of the service
benchmark) on German-Syn 2000, two ways:

* **direct** — ``HypeRService.execute_many`` in process, no network;
* **cluster** — a 3-shard-node cluster on loopback sockets behind a
  :class:`~repro.cluster.coordinator.ClusterCoordinator`: every query is
  scattered as ``/v1/partial`` calls, the wire partials are decoded and
  folded through the shard merge protocol, and the answers come back
  through the coordinator's public surface.

The point being measured is the cost of the distribution layer (HTTP hops,
wire codec, scatter-gather) relative to the work it distributes — and the
acceptance gate of the cluster issue: the merged cluster answers are
**bitwise identical** (max |diff| == 0.0) to the single-node path.
Results go to ``BENCH_cluster.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import fmt, print_table
from repro import EngineConfig, HypeRService, WhatIfQuery
from repro.aserve import BackgroundAsyncServer
from repro.cluster import ClusterCoordinator, ClusterTopology, NodeAddress
from repro.cluster.shardserver import ShardServer
from repro.core import AttributeUpdate, MultiplyBy
from repro.datasets import make_german_syn
from repro.relational import post

N_ROWS = 2_000
N_QUERIES = 40
N_SHARDS = 3

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _suite(dataset) -> list[WhatIfQuery]:
    return [
        WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Status", MultiplyBy(1.0 + 0.005 * i))],
            output_attribute="Credit",
            output_aggregate="count",
            for_clause=(post("Credit") == 1),
        )
        for i in range(N_QUERIES)
    ]


def test_cluster_throughput(benchmark):
    config = EngineConfig(regressor="linear", random_state=0)
    dataset = make_german_syn(N_ROWS, seed=7)
    queries = _suite(dataset)

    single = HypeRService(dataset.database, dataset.causal_dag, config)
    single.execute(queries[0])  # warm shared plan caches
    started = time.perf_counter()
    direct_results = single.execute_many(queries)
    direct_seconds = time.perf_counter() - started

    shards = [
        ShardServer(
            dataset.database,
            dataset.causal_dag,
            config,
            shard_index=index,
            n_shards=N_SHARDS,
        )
        for index in range(N_SHARDS)
    ]
    servers = [
        BackgroundAsyncServer(
            shard.service, app_factory=shard.app_factory, max_inflight=8
        ).start()
        for shard in shards
    ]
    try:
        topology = ClusterTopology(
            n_shards=N_SHARDS,
            nodes=tuple(NodeAddress(*server.address) for server in servers),
        )
        with ClusterCoordinator(topology, config, max_workers=8) as coordinator:
            coordinator.execute(queries[0])  # warm every shard node
            started = time.perf_counter()
            cluster_results = coordinator.execute_many(queries)
            cluster_seconds = time.perf_counter() - started
            scatters = int(coordinator.stats()["cluster"]["scatters"])

            max_diff = max(
                abs(a.value - b.value)
                for a, b in zip(direct_results, cluster_results)
            )

            print_table(
                f"Cluster serving — {N_QUERIES}-query what-if suite "
                f"(German-Syn {N_ROWS}, {N_SHARDS} shard nodes)",
                ["mode", "total s", "queries/s"],
                [
                    ["direct single-node", fmt(direct_seconds), fmt(N_QUERIES / direct_seconds, 1)],
                    ["cluster coordinator", fmt(cluster_seconds), fmt(N_QUERIES / cluster_seconds, 1)],
                ],
            )
            print(
                f"max |cluster - direct| = {max_diff!r} "
                f"({scatters} scatter legs, "
                f"{cluster_seconds / direct_seconds:.2f}x direct time)"
            )

            payload = {
                "dataset": f"german-syn-{N_ROWS}",
                "n_queries": N_QUERIES,
                "n_shards": N_SHARDS,
                "direct_seconds": direct_seconds,
                "cluster_seconds": cluster_seconds,
                "direct_qps": N_QUERIES / direct_seconds,
                "cluster_qps": N_QUERIES / cluster_seconds,
                "overhead_ratio": cluster_seconds / direct_seconds,
                "scatter_legs": scatters,
                "max_abs_diff": max_diff,
            }
            _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {_RESULTS_PATH.name}")

            # the acceptance gate of the cluster issue
            assert max_diff == 0.0, payload

            query = queries[0]
            benchmark.pedantic(
                lambda: coordinator.execute(query), rounds=3, iterations=1
            )
    finally:
        for server in servers:
            server.stop()
        single.close()
