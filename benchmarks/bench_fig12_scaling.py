"""Figure 12 — runtime vs dataset size on German-Syn.

(a) What-if: HypeR and the Indep baseline grow roughly linearly with the data;
    HypeR-sampled flattens out once the sample cap is reached.
(b) How-to: HypeR's IP-based search also grows roughly linearly, while the
    Opt-HowTo baseline (full enumeration of update combinations, each evaluated
    on the full data) is substantially more expensive at every size.

Sizes are scaled down from the paper's 10k–1M sweep (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FAST_CONFIG, fmt, print_table
from repro import HowToQuery, HypeR, LimitConstraint, Variant, WhatIfQuery, WorkloadGenerator
from repro.core import AttributeUpdate, HowToEngine, SetTo
from repro.datasets import make_german_syn
from repro.relational import post

SIZES = (500, 1_000, 2_000, 4_000)
SAMPLE_CAP = 1_000
N_WORKLOAD_QUERIES = 3  # the paper averages over five queries; scaled down with the data


def _whatif_query(dataset):
    return WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Status", SetTo(4))],
        output_attribute="Credit",
        output_aggregate="count",
        for_clause=(post("Credit") == 1),
    )


def _howto_query(dataset):
    return HowToQuery(
        use=dataset.default_use,
        update_attributes=["Status", "Housing"],
        objective_attribute="Credit",
        objective_aggregate="count",
        for_clause=(post("Credit") == 1),
        limits=[
            LimitConstraint("Status", lower=1.0, upper=4.0),
            LimitConstraint("Housing", lower=1.0, upper=3.0),
        ],
        candidate_buckets=4,
        candidate_multipliers=(),
    )


def test_fig12a_whatif_runtime_vs_dataset_size(benchmark):
    rows = []
    hyper_times, sampled_times, indep_times = [], [], []
    for size in SIZES:
        dataset = make_german_syn(size, seed=7)
        # Average over a small random workload, as the paper does ("averaged over
        # five different queries"); the fixed Status query is always included.
        workload = [_whatif_query(dataset)] + WorkloadGenerator.for_dataset(
            dataset, output_attribute="Credit", seed=size
        ).what_if_batch(N_WORKLOAD_QUERIES - 1, aggregate="count", with_post_condition=True)
        base = HypeR(dataset.database, dataset.causal_dag, FAST_CONFIG)

        started = time.perf_counter()
        for query in workload:
            base.what_if(query)
        hyper_times.append((time.perf_counter() - started) / len(workload))

        sampled = base.sampled(SAMPLE_CAP)
        started = time.perf_counter()
        for query in workload:
            sampled.what_if(query)
        sampled_times.append((time.perf_counter() - started) / len(workload))

        indep = base.independent_baseline()
        started = time.perf_counter()
        for query in workload:
            indep.what_if(query)
        indep_times.append((time.perf_counter() - started) / len(workload))

        rows.append([size, fmt(hyper_times[-1]), fmt(sampled_times[-1]), fmt(indep_times[-1])])

    print_table(
        "Figure 12a (scaled) — what-if runtime vs dataset size (German-Syn)",
        ["rows", "HypeR s", "HypeR-sampled s", "Indep s"],
        rows,
    )
    # runtime grows with size for the full engine ...
    assert hyper_times[-1] > hyper_times[0]
    # ... and the sampled variant grows more slowly once the cap binds
    assert (sampled_times[-1] - sampled_times[1]) <= (hyper_times[-1] - hyper_times[1]) + 0.05

    dataset = make_german_syn(SIZES[1], seed=7)
    session = HypeR(dataset.database, dataset.causal_dag, FAST_CONFIG)
    query = _whatif_query(dataset)
    benchmark.pedantic(lambda: session.what_if(query), rounds=1, iterations=1)


def test_fig12b_howto_runtime_vs_dataset_size(benchmark):
    rows = []
    hyper_times, exhaustive_times = [], []
    for size in SIZES:
        dataset = make_german_syn(size, seed=7)
        engine = HowToEngine(dataset.database, dataset.causal_dag, FAST_CONFIG)
        query = _howto_query(dataset)

        started = time.perf_counter()
        engine.evaluate(query)
        hyper_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        engine.evaluate_exhaustive(query)
        exhaustive_times.append(time.perf_counter() - started)

        rows.append([size, fmt(hyper_times[-1]), fmt(exhaustive_times[-1])])

    print_table(
        "Figure 12b (scaled) — how-to runtime vs dataset size (German-Syn)",
        ["rows", "HypeR s", "Opt-HowTo s"],
        rows,
    )
    # Opt-HowTo never beats the IP-based search by a meaningful margin, and at the
    # largest size (where candidate evaluation dominates the fixed IP overhead) it
    # is the more expensive method — the gap keeps widening with more update
    # attributes (Figure 11b).
    assert sum(exhaustive_times) >= sum(hyper_times) * 0.8
    assert exhaustive_times[-1] >= hyper_times[-1] * 0.9
    assert hyper_times[-1] > hyper_times[0] * 0.8

    dataset = make_german_syn(SIZES[0], seed=7)
    engine = HowToEngine(dataset.database, dataset.causal_dag, FAST_CONFIG)
    query = _howto_query(dataset)
    benchmark.pedantic(lambda: engine.evaluate(query), rounds=1, iterations=1)
