"""Figure 11 — runtime vs query complexity on Student-Syn.

(a) What-if: adding Pre conditions to the ``For`` operator grows the feature
    set of the conditional-probability regressor, so runtime increases with the
    number of For attributes.
(b) How-to: the number of IP variables grows linearly with the number of
    attributes in ``HowToUpdate`` and so does HypeR's runtime, while the
    Opt-HowTo baseline enumerates every combination and blows up combinatorially.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FAST_CONFIG, fmt, print_table
from repro import HowToQuery, LimitConstraint, WhatIfQuery
from repro.core import AttributeUpdate, HowToEngine, SetTo, WhatIfEngine
from repro.relational import TRUE, pre, post
from repro.relational.expressions import BooleanExpr

FOR_ATTRIBUTES = ["Age", "Gender", "Country", "Discussion", "Announcement", "HandRaised"]
HOWTO_ATTRIBUTES = ["Discussion", "Announcement", "HandRaised", "Assignment"]


def _for_clause(n_attributes: int):
    atoms = [post("Grade") > 40.0]
    for attribute in FOR_ATTRIBUTES[:n_attributes]:
        atoms.append(pre(attribute) >= 0)
    return BooleanExpr("and", atoms) if len(atoms) > 1 else atoms[0]


def test_fig11a_whatif_runtime_vs_for_attributes(student, benchmark):
    engine = WhatIfEngine(student.database, student.causal_dag, FAST_CONFIG)
    rows = []
    timings = []
    for n_attributes in (0, 2, 4, 6):
        query = WhatIfQuery(
            use=student.default_use,
            updates=[AttributeUpdate("Attendance", SetTo(90.0))],
            output_attribute="Grade",
            output_aggregate="count",
            for_clause=_for_clause(n_attributes),
        )
        started = time.perf_counter()
        engine.evaluate(query)
        elapsed = time.perf_counter() - started
        timings.append(elapsed)
        rows.append([n_attributes, fmt(elapsed)])
    print_table(
        "Figure 11a (scaled) — what-if runtime vs #attributes in For (Student-Syn)",
        ["#For attributes", "seconds"],
        rows,
    )
    # runtime does not shrink as conditions (and thus features) are added
    assert timings[-1] >= timings[0] * 0.5

    query = WhatIfQuery(
        use=student.default_use,
        updates=[AttributeUpdate("Attendance", SetTo(90.0))],
        output_attribute="Grade",
        output_aggregate="count",
        for_clause=_for_clause(4),
    )
    benchmark.pedantic(lambda: engine.evaluate(query), rounds=1, iterations=1)


def test_fig11b_howto_runtime_vs_update_attributes(student, benchmark):
    engine = HowToEngine(student.database, student.causal_dag, FAST_CONFIG)
    rows = []
    hyper_times = []
    exhaustive_times = []
    for n_attributes in (1, 2, 3, 4):
        attributes = HOWTO_ATTRIBUTES[:n_attributes]
        query = HowToQuery(
            use=student.default_use,
            update_attributes=attributes,
            objective_attribute="Grade",
            objective_aggregate="avg",
            limits=[LimitConstraint(a, lower=0.0, upper=100.0) for a in attributes],
            candidate_buckets=3,
            candidate_multipliers=(),
        )
        started = time.perf_counter()
        ip_result = engine.evaluate(query)
        hyper_seconds = time.perf_counter() - started
        started = time.perf_counter()
        engine.evaluate_exhaustive(query)
        exhaustive_seconds = time.perf_counter() - started
        hyper_times.append(hyper_seconds)
        exhaustive_times.append(exhaustive_seconds)
        rows.append(
            [n_attributes, ip_result.n_ip_variables, fmt(hyper_seconds), fmt(exhaustive_seconds)]
        )
    print_table(
        "Figure 11b (scaled) — how-to runtime vs #attributes in HowToUpdate (Student-Syn)",
        ["#HowToUpdate attributes", "IP variables", "HypeR s", "Opt-HowTo s"],
        rows,
    )
    # The exhaustive baseline degrades much faster than the IP formulation.
    assert exhaustive_times[-1] / max(exhaustive_times[0], 1e-9) >= (
        hyper_times[-1] / max(hyper_times[0], 1e-9)
    )
    assert exhaustive_times[-1] > hyper_times[-1]

    query = HowToQuery(
        use=student.default_use,
        update_attributes=HOWTO_ATTRIBUTES[:2],
        objective_attribute="Grade",
        objective_aggregate="avg",
        limits=[LimitConstraint(a, lower=0.0, upper=100.0) for a in HOWTO_ATTRIBUTES[:2]],
        candidate_buckets=3,
        candidate_multipliers=(),
    )
    benchmark.pedantic(lambda: engine.evaluate(query), rounds=1, iterations=1)
