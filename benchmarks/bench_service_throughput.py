"""Service-layer throughput: cold library calls vs the cached, concurrent service.

A 100-query repeated-template what-if suite (the Figure 12 Status/Credit
template with varying update constants) on German-Syn 4000:

* **cold** — 100 ``HypeR.what_if()`` calls, each rebuilding the view, the DAG
  projection, the block decomposition and the regressors;
* **warm** — the same suite through one ``HypeRService`` sequentially, after
  the first query has populated the plan caches;
* **parallel** — the same suite through ``HypeRService.execute_many()`` on a
  thread pool.

Asserts the acceptance criteria of the service-layer issue: identical answers
to within 1e-9, >= 3x speedup for ``execute_many`` over cold, and a > 90%
estimator cache hit rate on the warm run.  Results are also written to
``BENCH_service.json`` in the repository root for CI artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import fmt, print_table
from repro import EngineConfig, HypeR, HypeRService, WhatIfQuery
from repro.core import AttributeUpdate, MultiplyBy
from repro.datasets import make_german_syn
from repro.relational import post

N_ROWS = 4_000
N_QUERIES = 100
FAST_CONFIG = EngineConfig(regressor="linear", random_state=0)

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _suite(dataset) -> list[WhatIfQuery]:
    """100 parameter variants of one what-if template (shared logical plan)."""
    return [
        WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Status", MultiplyBy(1.0 + 0.005 * i))],
            output_attribute="Credit",
            output_aggregate="count",
            for_clause=(post("Credit") == 1),
        )
        for i in range(N_QUERIES)
    ]


def test_service_throughput(benchmark):
    dataset = make_german_syn(N_ROWS, seed=7)
    queries = _suite(dataset)

    cold_session = HypeR(dataset.database, dataset.causal_dag, FAST_CONFIG)
    started = time.perf_counter()
    cold_results = [cold_session.what_if(q) for q in queries]
    cold_seconds = time.perf_counter() - started

    warm_service = HypeRService(dataset.database, dataset.causal_dag, FAST_CONFIG)
    warm_service.prepare(queries[0])  # populate the plan caches
    metrics_before = warm_service.metrics.snapshot()
    started = time.perf_counter()
    warm_results = [warm_service.execute(q) for q in queries]
    warm_seconds = time.perf_counter() - started
    warm_stats = warm_service.stats()
    metrics_after = warm_service.metrics.snapshot()
    metrics_delta = {
        series: metrics_after[series] - metrics_before.get(series, 0.0)
        for series in sorted(metrics_after)
        if metrics_after[series] != metrics_before.get(series, 0.0)
    }

    parallel_service = HypeRService(dataset.database, dataset.causal_dag, FAST_CONFIG)
    started = time.perf_counter()
    parallel_results = parallel_service.execute_many(queries)
    parallel_seconds = time.perf_counter() - started

    max_diff = max(
        max(abs(a.value - b.value) for a, b in zip(cold_results, warm_results)),
        max(abs(a.value - b.value) for a, b in zip(cold_results, parallel_results)),
    )

    rows = [
        ["cold HypeR.what_if", fmt(cold_seconds), fmt(N_QUERIES / cold_seconds, 1), "1.0x"],
        [
            "warm service (sequential)",
            fmt(warm_seconds),
            fmt(N_QUERIES / warm_seconds, 1),
            f"{cold_seconds / warm_seconds:.1f}x",
        ],
        [
            "service execute_many",
            fmt(parallel_seconds),
            fmt(N_QUERIES / parallel_seconds, 1),
            f"{cold_seconds / parallel_seconds:.1f}x",
        ],
    ]
    print_table(
        f"Service throughput — {N_QUERIES}-query what-if suite (German-Syn {N_ROWS})",
        ["mode", "total s", "queries/s", "speedup"],
        rows,
    )
    estimator_stats = warm_stats["caches"]["estimators"]
    print(
        f"warm estimator cache: {estimator_stats['hits']} hits / "
        f"{estimator_stats['misses']} misses (hit rate {estimator_stats['hit_rate']:.1%}), "
        f"{warm_stats['regressors']['fits']} regressor fits"
    )

    payload = {
        "dataset": f"german-syn-{N_ROWS}",
        "n_queries": N_QUERIES,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "parallel_seconds": parallel_seconds,
        "cold_qps": N_QUERIES / cold_seconds,
        "warm_qps": N_QUERIES / warm_seconds,
        "parallel_qps": N_QUERIES / parallel_seconds,
        "speedup_warm": cold_seconds / warm_seconds,
        "speedup_parallel": cold_seconds / parallel_seconds,
        "max_abs_diff": max_diff,
        "estimator_hit_rate": estimator_stats["hit_rate"],
        "regressor_fits": warm_stats["regressors"]["fits"],
        #: registry snapshot delta across the warm run (observability issue)
        "metrics_delta": metrics_delta,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_RESULTS_PATH.name}")

    # acceptance criteria of the service-layer issue
    assert max_diff <= 1e-9
    assert cold_seconds / parallel_seconds >= 3.0, payload
    assert estimator_stats["hit_rate"] > 0.90, estimator_stats
    assert metrics_delta["hyper_queries_total"] == N_QUERIES, metrics_delta

    query = queries[0]
    service = HypeRService(dataset.database, dataset.causal_dag, FAST_CONFIG)
    service.prepare(query)
    benchmark.pedantic(lambda: service.execute(query), rounds=3, iterations=1)
