"""Multi-node cluster serving, the way it runs in production.

Boots a real cluster as **separate OS processes** talking HTTP on
loopback — two shard-server nodes plus the scatter-gather coordinator,
each via ``python -m repro serve --role ...`` with a shared topology file
(see ``docs/cluster.md``) — then talks to the coordinator through the
ordinary :class:`repro.api.HypeRClient`:

* a what-if query scattered to both shards and merged exactly, checked
  bitwise against the in-process single-node answer;
* a streamed batch with a per-query error envelope;
* a two-phase cluster-wide update (stage + flip), bumping the generation
  on every node;
* the cluster stats section and the ``hyper_cluster_*`` metrics.

Run with::

    python examples/cluster_serving.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import EngineConfig, HypeR
from repro.api import HypeRClient
from repro.api.client import TransportError
from repro.datasets import make_german_syn

DATASET_ARGS = ["--dataset", "german-syn", "--rows", "400", "--seed", "7"]
QUERY = (
    "USE Credit UPDATE(Status) = 4 OUTPUT COUNT(POST(Credit)) FOR POST(Credit) = 1"
)
N_SHARDS = 2
BASE_PORT = int(os.environ.get("CLUSTER_EXAMPLE_PORT", "9750"))


def wait_healthy(host: str, port: int, deadline: float = 30.0) -> None:
    start = time.monotonic()
    while True:
        try:
            with HypeRClient(host, port, timeout=2.0, max_retries=1) as client:
                if client.health()["status"] == "ok":
                    return
        except TransportError:
            if time.monotonic() - start > deadline:
                raise
            time.sleep(0.2)


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="hyper-cluster-"))
    topology = {
        "n_shards": N_SHARDS,
        "coordinator": {"host": "127.0.0.1", "port": BASE_PORT},
        "nodes": [
            {"host": "127.0.0.1", "port": BASE_PORT + 1 + i} for i in range(N_SHARDS)
        ],
    }
    topology_path = tmp / "topology.json"
    topology_path.write_text(json.dumps(topology, indent=2))
    print(f"topology: {topology_path}\n{json.dumps(topology, indent=2)}\n")

    common = [
        sys.executable, "-m", "repro", "serve",
        *DATASET_ARGS, "--regressor", "linear",
        "--cluster-config", str(topology_path),
        "--max-inflight", "8", "--queue-depth", "32",
    ]
    procs: list[subprocess.Popen] = []
    try:
        for index in range(N_SHARDS):
            procs.append(subprocess.Popen(
                [*common, "--role", "shard", "--node-index", str(index)]
            ))
        for node in topology["nodes"]:
            wait_healthy(node["host"], node["port"])
        print(f"{N_SHARDS} shard nodes up")
        procs.append(subprocess.Popen([*common, "--role", "coordinator"]))
        wait_healthy("127.0.0.1", BASE_PORT)
        print("coordinator up\n")

        # the bitwise reference: the plain library path over the same dataset
        dataset = make_german_syn(n_rows=400, seed=7)
        expected = HypeR(
            dataset.database, dataset.causal_dag, EngineConfig(regressor="linear")
        ).execute(QUERY).value

        with HypeRClient("127.0.0.1", BASE_PORT, timeout=60.0) as client:
            answer = client.query(QUERY)
            print(f"what-if through the cluster: {answer.value}")
            assert answer.value == expected, (answer.value, expected)
            print("  == single-node answer, bitwise\n")

            print("streamed batch (completion order):")
            for item in client.batch([QUERY, "THIS IS NOT A QUERY"]):
                if item.ok:
                    print(f"  #{item.index}: value = {item.result.value}")
                else:
                    print(f"  #{item.index}: {item.error.code}")

            column = [
                min(4.0, float(v) + 1.0)
                for v in dataset.database["Credit"].column("Status")
            ]
            update = client.update({"Credit": {"Status": column}})
            print(f"\ntwo-phase update committed generation {update.generation}")
            assert update.generation == 1

            snapshot = client.stats()
            cluster = snapshot.sections["cluster"]
            print(
                f"cluster stats: {cluster['healthy_nodes']}/{cluster['n_nodes']} "
                f"nodes healthy, {cluster['scatters']} scatter legs, "
                f"{cluster['updates']} updates"
            )
            assert cluster["healthy_nodes"] == N_SHARDS

            metrics = client.metrics()
            assert "hyper_cluster_scatters_total" in metrics
            assert "hyper_cluster_healthy_nodes" in metrics
            print("hyper_cluster_* metrics exposed")

        print("\ncluster smoke OK")
        return 0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
