"""Amazon pricing analysis: what-if queries over a product/review database.

Mirrors the Section 5.3 Amazon use case on the synthetic Amazon-Syn dataset:
how does changing laptop prices affect ratings, which brands benefit most from
price cuts, and what does the provenance-style Indep baseline miss?

Run with::

    python examples/amazon_pricing_whatif.py
"""

from __future__ import annotations

import numpy as np

from repro import EngineConfig, HypeR, WhatIfQuery
from repro.core import AttributeUpdate, MultiplyBy
from repro.datasets import make_amazon_syn
from repro.relational import post, pre


def share_highly_rated(session: HypeR, dataset, factor: float, brand: str | None = None) -> float:
    """Share of laptops with post-update average rating above 4."""
    when = pre("Category") == "Laptop"
    if brand is not None:
        when = when & (pre("Brand") == brand)
    for_clause = (pre("Category") == "Laptop") & (post("Rtng") > 4.0)
    if brand is not None:
        for_clause = for_clause & (pre("Brand") == brand)
    query = WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Price", MultiplyBy(factor))],
        output_attribute="Rtng",
        output_aggregate="count",
        when=when,
        for_clause=for_clause,
    )
    result = session.what_if(query)
    return result.value / max(result.expected_qualifying_count, result.n_view_tuples or 1)


def main() -> None:
    dataset = make_amazon_syn(n_products=500, seed=1)
    session = HypeR(dataset.database, dataset.causal_dag, EngineConfig(regressor="forest"))
    view = dataset.default_use.build(dataset.database)
    laptops = [row for row in view.rows() if row["Category"] == "Laptop"]
    n_laptops = len(laptops)
    print(f"{len(view)} products, {n_laptops} laptops, "
          f"{len(dataset.database['Review'])} reviews\n")

    print("Effect of laptop price changes on the number of laptops rated above 4:")
    for factor in (0.6, 0.8, 1.0, 1.2, 1.4):
        query = WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Price", MultiplyBy(factor))],
            output_attribute="Rtng",
            output_aggregate="count",
            when=(pre("Category") == "Laptop"),
            for_clause=(pre("Category") == "Laptop") & (post("Rtng") > 4.0),
        )
        value = session.what_if(query).value
        print(f"  price x{factor:>3}: {value:6.1f} of {n_laptops} laptops rated > 4")

    print("\nAverage laptop rating after a 30% price cut, per brand:")
    brands = sorted({row["Brand"] for row in laptops})
    gains = {}
    for brand in brands:
        base_query = WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Price", MultiplyBy(1.0))],
            output_attribute="Rtng",
            output_aggregate="avg",
            when=(pre("Brand") == brand) & (pre("Category") == "Laptop"),
            for_clause=(pre("Brand") == brand) & (pre("Category") == "Laptop"),
        )
        cut_query = WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate("Price", MultiplyBy(0.7))],
            output_attribute="Rtng",
            output_aggregate="avg",
            when=(pre("Brand") == brand) & (pre("Category") == "Laptop"),
            for_clause=(pre("Brand") == brand) & (pre("Category") == "Laptop"),
        )
        before = session.what_if(base_query).value
        after = session.what_if(cut_query).value
        gains[brand] = after - before
        print(f"  {brand:<14} {before:5.2f} -> {after:5.2f}  (gain {after - before:+.2f})")
    best = max(gains, key=gains.get)
    print(f"\nBrand gaining the most from a price cut: {best}")

    print("\nComparison with the Indep baseline (ignores causal propagation):")
    indep = session.independent_baseline()
    query = WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Price", MultiplyBy(0.6))],
        output_attribute="Rtng",
        output_aggregate="avg",
        when=(pre("Category") == "Laptop"),
        for_clause=(pre("Category") == "Laptop"),
    )
    print(f"  HypeR : average laptop rating after a 40% cut = {session.what_if(query).value:.3f}")
    print(f"  Indep : average laptop rating after a 40% cut = {indep.what_if(query).value:.3f}")
    observed = float(np.mean([row["Rtng"] for row in laptops if row["Rtng"] is not None]))
    print(f"  (observed average laptop rating today: {observed:.3f} — "
          "Indep never moves away from it)")


if __name__ == "__main__":
    main()
