"""German credit analysis: attribute importance and how-to planning.

Mirrors the Section 5.3 / 5.4 German use cases: which attributes causally move
the credit outcome, what would happen if they were set to their best values,
and how a bank could lift the share of good-credit customers subject to
constraints — including a preferential (lexicographic) two-objective variant.

Run with::

    python examples/german_credit_howto.py
"""

from __future__ import annotations

import numpy as np

from repro import EngineConfig, HowToQuery, HypeR, LimitConstraint, WhatIfQuery
from repro.core import AttributeUpdate, SetTo
from repro.core.howto import HowToEngine
from repro.datasets import make_german_syn
from repro.relational import post


ATTRIBUTE_RANGES = {
    "Status": (1, 4),
    "CreditHistory": (0, 4),
    "Savings": (1, 5),
    "Housing": (1, 3),
    "Investment": (1, 5),
}


def main() -> None:
    dataset = make_german_syn(n_rows=3_000, seed=5)
    session = HypeR(dataset.database, dataset.causal_dag, EngineConfig(regressor="forest"))
    relation = dataset.database["Credit"]
    n = len(relation)
    baseline_share = float(np.mean(np.asarray(relation.column_view("Credit"), dtype=float)))
    print(f"{n} account holders, {baseline_share:.1%} currently have good credit\n")

    # ---- Figure 8a style: importance of each attribute -------------------------------
    print("What-if: share with good credit when each attribute is forced to min / max")
    gaps = {}
    for attribute, (low, high) in ATTRIBUTE_RANGES.items():
        values = {}
        for label, value in (("min", low), ("max", high)):
            query = WhatIfQuery(
                use=dataset.default_use,
                updates=[AttributeUpdate(attribute, SetTo(value))],
                output_attribute="Credit",
                output_aggregate="count",
                for_clause=(post("Credit") == 1),
            )
            values[label] = session.what_if(query).value / n
        gaps[attribute] = values["max"] - values["min"]
        print(
            f"  {attribute:<14} min -> {values['min']:.1%}   max -> {values['max']:.1%}"
            f"   gap {gaps[attribute]:+.1%}"
        )
    ranking = sorted(gaps, key=gaps.get, reverse=True)
    print(f"\nAttribute importance ranking: {ranking}\n")

    # ---- Section 5.4 style how-to query ----------------------------------------------
    print("How-to: maximise the number of good-credit customers (budget: 2 updates)")
    engine = HowToEngine(dataset.database, dataset.causal_dag, EngineConfig(regressor="forest"))
    howto = HowToQuery(
        use=dataset.default_use,
        update_attributes=["Status", "Savings", "Housing"],
        objective_attribute="Credit",
        objective_aggregate="count",
        for_clause=(post("Credit") == 1),
        limits=[
            LimitConstraint("Status", lower=1, upper=4),
            LimitConstraint("Savings", lower=1, upper=5),
            LimitConstraint("Housing", lower=1, upper=3),
        ],
        max_updates=2,
        candidate_buckets=4,
        candidate_multipliers=(),
    )
    result = engine.evaluate(howto)
    print(f"  recommended plan     : {result.plan()}")
    print(f"  predicted good credit: {result.objective_value:.0f} of {n} "
          f"(baseline {result.baseline_value:.0f})")
    print(f"  IP size              : {result.n_ip_variables} variables, "
          f"{result.n_ip_constraints} constraints\n")

    # ---- Preferential multi-objective (Section 4.3 extension) -------------------------
    # First lock in the best attainable good-credit count, then — among plans
    # achieving it — prefer the one that keeps the average credit amount low.
    print("Preferential how-to: first maximise good credit, then minimise credit amounts")
    secondary = HowToQuery(
        use=dataset.default_use,
        update_attributes=howto.update_attributes,
        objective_attribute="CreditAmount",
        objective_aggregate="avg",
        maximize=False,
        for_clause=howto.for_clause,
        limits=howto.limits,
        max_updates=2,
        candidate_buckets=4,
        candidate_multipliers=(),
    )
    stages = engine.evaluate_preferential([howto, secondary])
    for i, stage in enumerate(stages):
        direction = "maximise" if stage.maximize else "minimise"
        print(f"  stage {i}: {direction} -> objective {stage.objective_value:.2f}, "
              f"plan {stage.plan()}")


if __name__ == "__main__":
    main()
