"""The v1 public API end to end: server, fluent builder, and client SDK.

Starts the asyncio serving front-end in-process over the German credit
dataset, then talks to it exactly the way an external application would —
through :class:`repro.api.HypeRClient` and the fluent query builder:

* one what-if query built fluently (no query text anywhere);
* the same query as SQL-extension text, proving both spellings share the
  server's plan caches (the second call is a result-cache hit);
* a streamed ``/v1/batch`` with a deliberately broken query, showing
  per-query error envelopes;
* typed stats through :meth:`HypeRClient.stats`.

Run with::

    python examples/api_client.py
"""

from __future__ import annotations

from repro import EngineConfig, HypeRService
from repro.api import HypeRClient, avg, set_, what_if
from repro.aserve import BackgroundAsyncServer
from repro.datasets import make_german_syn
from repro.relational import col


def main() -> None:
    dataset = make_german_syn(n_rows=1_000, seed=0)
    service = HypeRService(
        dataset.database, dataset.causal_dag, EngineConfig(regressor="linear")
    )

    with BackgroundAsyncServer(service, max_inflight=4, queue_depth=16) as server:
        host, port = server.address
        print(f"async front door listening on http://{host}:{port}\n")

        with HypeRClient(host, port, timeout=120.0) as client:
            # -- fluent builder: no query strings -----------------------------------
            builder = (
                what_if()
                .use("Credit")
                .when(col("Age") >= 30)
                .update(set_("CreditAmount", 1000))
                .output(avg("Credit"))
            )
            answer = client.query(builder)
            print(f"builder query    : {builder.text()}")
            print(f"  avg(Post(Credit)) = {answer.value:.4f} "
                  f"[{answer.variant}, {answer.n_blocks} blocks]\n")

            # -- the text spelling shares every cache -------------------------------
            text = (
                "USE Credit WHEN Age >= 30 UPDATE(CreditAmount) = 1000 "
                "OUTPUT AVG(POST(Credit))"
            )
            from_text = client.query(text)
            assert from_text == answer, "builder and text answers must be bitwise equal"
            hits = client.stats().caches["results"]["hits"]
            print(f"text query answered from the result cache (hits={hits})\n")

            # -- streamed batch with a per-query error ------------------------------
            batch = [
                builder,
                "USE Credit UPDATE(Status) = 4 OUTPUT COUNT(POST(Credit)) "
                "FOR POST(Credit) = 1",
                "THIS IS NOT A QUERY",
            ]
            print("batch (streamed, completion order):")
            for item in client.batch(batch):
                if item.ok:
                    print(f"  #{item.index}: value = {item.result.value:.4f}")
                else:
                    print(f"  #{item.index}: {item.error.code}: {item.error.message}")

            snapshot = client.stats()
            print(f"\nserved {snapshot.n_queries} queries "
                  f"(generation {snapshot.generation}, {snapshot.execution} mode)")


if __name__ == "__main__":
    main()
