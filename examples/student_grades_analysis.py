"""Student performance analysis over a two-relation database.

Mirrors the Student-Syn experiments: the relevant view joins each student with
the per-course averages of their participation attributes, what-if queries
estimate how attendance and assignment scores move grades (checked against the
structural-equation ground truth), and a budgeted how-to query finds the single
most effective intervention.

Run with::

    python examples/student_grades_analysis.py
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    GroundTruthOracle,
    HowToQuery,
    HypeR,
    LimitConstraint,
    WhatIfQuery,
)
from repro.core import AttributeUpdate, SetTo
from repro.datasets import make_student_syn
from repro.relational import post, pre


def main() -> None:
    dataset = make_student_syn(n_students=1_000, seed=3)
    session = HypeR(dataset.database, dataset.causal_dag, EngineConfig(regressor="forest"))
    oracle = GroundTruthOracle(dataset.view_scm, n_repeats=10, random_state=0)

    view = dataset.default_use.build(dataset.database)
    print("Relevant view (one row per student, participation averaged over 5 courses):")
    print(view.project(["SID", "Attendance", "Assignment", "Grade"]).pretty(limit=5))
    print()

    # ---- What-if: attendance and assignment interventions -----------------------------
    print("What-if: average grade under interventions (HypeR vs structural ground truth)")
    for attribute, value in (("Attendance", 95.0), ("Attendance", 40.0), ("Assignment", 90.0)):
        query = WhatIfQuery(
            use=dataset.default_use,
            updates=[AttributeUpdate(attribute, SetTo(value))],
            output_attribute="Grade",
            output_aggregate="avg",
        )
        estimate = session.what_if(query).value
        truth = oracle.evaluate(query, dataset.database)
        print(f"  set {attribute:<11} = {value:>5}:  HypeR {estimate:6.2f}   ground truth {truth:6.2f}")
    print()

    # ---- What-if restricted to engaged students (complex For clause) ------------------
    print("What-if for engaged students (attendance > 70 and announcements read > 30):")
    query = WhatIfQuery(
        use=dataset.default_use,
        updates=[AttributeUpdate("Assignment", SetTo(95.0))],
        output_attribute="Grade",
        output_aggregate="avg",
        when=(pre("Attendance") > 70.0),
        for_clause=(pre("Attendance") > 70.0)
        & (pre("Announcement") > 30.0)
        & (post("Grade") > 0.0),
    )
    result = session.what_if(query)
    print(f"  average grade after pushing assignment scores to 95: {result.value:.2f}")
    print(f"  ({result.n_scope_tuples} students in scope, "
          f"{result.expected_qualifying_count:.0f} qualify for the output)\n")

    # ---- How-to with a single-update budget -------------------------------------------
    print("How-to: best single intervention to raise the average grade")
    attributes = ["Attendance", "Discussion", "Announcement", "HandRaised"]
    howto = HowToQuery(
        use=dataset.default_use,
        update_attributes=attributes,
        objective_attribute="Grade",
        objective_aggregate="avg",
        limits=[LimitConstraint(a, lower=0.0, upper=100.0) for a in attributes],
        max_updates=1,
        candidate_buckets=4,
        candidate_multipliers=(),
    )
    result = session.how_to(howto)
    print(f"  recommended plan : {result.plan()}")
    print(f"  predicted average grade: {result.objective_value:.2f} "
          f"(baseline {result.baseline_value:.2f})")
    exhaustive = session.how_to(howto, exhaustive=True)
    print(f"  Opt-HowTo (exhaustive) agrees: {exhaustive.plan()}")


if __name__ == "__main__":
    main()
