"""Quickstart: the paper's running example end to end.

Builds the tiny Amazon product/review database of Figure 1, declares the causal
graph of Figure 2, and runs the what-if query of Figure 4 ("raise Asus prices
by 10%, what happens to average ratings of Asus laptops?") plus a small how-to
query, all through the public :class:`repro.HypeR` API.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CausalDAG, CausalEdge, Database, EngineConfig, ForeignKey, HypeR, Relation
from repro.relational import (
    AttributeSpec,
    CategoricalDomain,
    IntegerDomain,
    NumericDomain,
    RelationSchema,
)


def build_figure1_database() -> Database:
    """The five products and six reviews of Figure 1."""
    product_schema = RelationSchema(
        "Product",
        [
            AttributeSpec("PID", IntegerDomain(1, 10), mutable=False),
            AttributeSpec(
                "Category",
                CategoricalDomain(["Laptop", "DSLR Camera", "Sci Fi eBooks"]),
                mutable=False,
            ),
            AttributeSpec("Price", NumericDomain(0.0, 500_000.0)),
            AttributeSpec(
                "Brand",
                CategoricalDomain(["Vaio", "Asus", "HP", "Canon", "Fantasy Press"]),
                mutable=False,
            ),
            AttributeSpec("Color", CategoricalDomain(["Silver", "Black", "Blue"])),
            AttributeSpec("Quality", NumericDomain(0.0, 1.0)),
        ],
        key=("PID",),
    )
    product = Relation.from_rows(
        product_schema,
        [
            {"PID": 1, "Category": "Laptop", "Price": 999.0, "Brand": "Vaio", "Color": "Silver", "Quality": 0.7},
            {"PID": 2, "Category": "Laptop", "Price": 529.0, "Brand": "Asus", "Color": "Black", "Quality": 0.65},
            {"PID": 3, "Category": "Laptop", "Price": 599.0, "Brand": "HP", "Color": "Silver", "Quality": 0.5},
            {"PID": 4, "Category": "DSLR Camera", "Price": 549.0, "Brand": "Canon", "Color": "Black", "Quality": 0.75},
            {"PID": 5, "Category": "Sci Fi eBooks", "Price": 15.99, "Brand": "Fantasy Press", "Color": "Blue", "Quality": 0.4},
        ],
    )
    review_schema = RelationSchema(
        "Review",
        [
            AttributeSpec("PID", IntegerDomain(1, 10), mutable=False),
            AttributeSpec("ReviewID", IntegerDomain(1, 10), mutable=False),
            AttributeSpec("Sentiment", NumericDomain(-1.0, 1.0)),
            AttributeSpec("Rating", IntegerDomain(1, 5)),
        ],
        key=("PID", "ReviewID"),
    )
    review = Relation.from_rows(
        review_schema,
        [
            {"PID": 1, "ReviewID": 1, "Sentiment": -0.95, "Rating": 2},
            {"PID": 2, "ReviewID": 2, "Sentiment": 0.7, "Rating": 4},
            {"PID": 2, "ReviewID": 3, "Sentiment": -0.2, "Rating": 1},
            {"PID": 3, "ReviewID": 3, "Sentiment": 0.23, "Rating": 3},
            {"PID": 3, "ReviewID": 5, "Sentiment": 0.95, "Rating": 5},
            {"PID": 4, "ReviewID": 5, "Sentiment": 0.7, "Rating": 4},
        ],
    )
    return Database(
        [product, review],
        foreign_keys=[ForeignKey("Review", ("PID",), "Product", ("PID",))],
    )


def build_figure2_dag() -> CausalDAG:
    """Category/Brand drive Quality and Price; Quality and Price drive ratings/sentiment."""
    dag = CausalDAG(
        nodes=[
            "Category",
            "Brand",
            "Color",
            "Quality",
            "Price",
            "Review.Sentiment",
            "Review.Rating",
        ]
    )
    for edge in [
        CausalEdge("Category", "Quality"),
        CausalEdge("Brand", "Quality"),
        CausalEdge("Category", "Price"),
        CausalEdge("Brand", "Price"),
        CausalEdge("Quality", "Price"),
        CausalEdge("Quality", "Review.Rating"),
        CausalEdge("Quality", "Review.Sentiment"),
        CausalEdge("Color", "Review.Sentiment"),
        CausalEdge("Price", "Review.Rating", cross_tuple=True, within="Category"),
        CausalEdge("Price", "Review.Sentiment"),
    ]:
        dag.add_edge(edge)
    return dag


def main() -> None:
    database = build_figure1_database()
    dag = build_figure2_dag()
    print("Database:")
    print(database.describe())
    print()

    # A tiny instance cannot support a forest; the linear estimator is exact enough here.
    session = HypeR(database, dag, EngineConfig(regressor="linear"))

    whatif = session.execute(
        """
        USE Product (PID, Category, Price, Brand)
            WITH AVG(Review.Sentiment) AS Senti, AVG(Review.Rating) AS Rtng
        WHEN Brand = 'Asus'
        UPDATE(Price) = 1.1 * PRE(Price)
        OUTPUT AVG(POST(Rtng))
        FOR PRE(Category) = 'Laptop'
        """
    )
    print("Figure 4 what-if query (raise Asus prices by 10%):")
    print(" ", whatif.summary())
    print()

    howto = session.execute(
        """
        USE Product (PID, Category, Price, Brand)
            WITH AVG(Review.Rating) AS Rtng
        WHEN Brand = 'Asus' AND Category = 'Laptop'
        HOWTOUPDATE Price
        LIMIT 500 <= POST(Price) <= 800 AND L1(PRE(Price), POST(Price)) <= 400
        TOMAXIMIZE AVG(POST(Rtng))
        FOR PRE(Category) = 'Laptop'
        """
    )
    print("Figure 5 how-to query (how should Asus laptop prices change?):")
    print(" ", howto.summary())
    print("  recommended plan:", howto.plan())


if __name__ == "__main__":
    main()
