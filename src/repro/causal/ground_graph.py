"""Grounding an attribute-level causal DAG over a database instance.

The PRCM of the paper has one endogenous variable per attribute *per tuple*
(``A[t]``).  The ground causal graph materialises those variables and the
edges induced by the attribute-level DAG:

* within-tuple edges — an attribute edge ``A -> B`` where both attributes live
  in the same relation grounds to ``A[t] -> B[t]`` for every tuple ``t``;
* cross-relation edges — an edge ``R.A -> R'.B`` grounds along the foreign-key
  links between ``R`` and ``R'``;
* cross-tuple edges — edges flagged ``cross_tuple`` ground between *different*
  tuples, optionally restricted to tuples sharing the value of a grouping
  attribute (``within``), e.g. laptops of the same Category.

Explicit grounding is quadratic in the worst case, so it is intended for
moderate instance sizes (tests, visualisation, exact possible-world baselines).
The scalable block decomposition in :mod:`repro.probdb.blocks` derives the same
connectivity information with a union–find, without materialising the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

import networkx as nx

from ..exceptions import CausalModelError
from ..relational.database import Database
from .dag import CausalDAG, CausalEdge

__all__ = ["GroundVariable", "GroundCausalGraph"]


@dataclass(frozen=True, order=True)
class GroundVariable:
    """A ground endogenous variable ``A[t]``: (relation, tuple key, attribute)."""

    relation: str
    key: tuple[Hashable, ...]
    attribute: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        key = self.key[0] if len(self.key) == 1 else self.key
        return f"{self.attribute}[{self.relation}:{key}]"


class GroundCausalGraph:
    """Explicitly grounded causal graph over the tuples of a database."""

    def __init__(self, database: Database, dag: CausalDAG, *, max_nodes: int = 200_000) -> None:
        self.database = database
        self.dag = dag
        self.graph = nx.DiGraph()
        self._attribute_owner: dict[str, str] = {}
        self._resolve_attribute_owners()
        n_nodes = sum(
            len(self.database[rel]) * len(self._relation_attributes(rel))
            for rel in self._relations_in_dag()
        )
        if n_nodes > max_nodes:
            raise CausalModelError(
                f"explicit grounding would create {n_nodes} nodes (> {max_nodes}); "
                "use the block decomposition instead"
            )
        self._add_nodes()
        self._add_edges()

    # -- attribute resolution -------------------------------------------------------

    def _resolve_attribute_owners(self) -> None:
        for node in self.dag.nodes:
            relation, attribute = self.database.resolve_attribute(node)
            self._attribute_owner[node] = relation

    def _relations_in_dag(self) -> set[str]:
        return set(self._attribute_owner.values())

    def _relation_attributes(self, relation: str) -> list[str]:
        return [
            node
            for node, owner in self._attribute_owner.items()
            if owner == relation
        ]

    def owner_of(self, dag_node: str) -> tuple[str, str]:
        """Return ``(relation, attribute)`` for a DAG node name."""
        relation = self._attribute_owner[dag_node]
        _, attribute = self.database.resolve_attribute(dag_node)
        return relation, attribute

    # -- node / edge construction -----------------------------------------------------

    def _add_nodes(self) -> None:
        for dag_node in self.dag.nodes:
            relation, attribute = self.owner_of(dag_node)
            rel = self.database[relation]
            for i in range(len(rel)):
                self.graph.add_node(GroundVariable(relation, rel.key_of(i), attribute))

    def _add_edges(self) -> None:
        for edge in self.dag.edges:
            if edge.cross_tuple:
                self._add_cross_tuple_edges(edge)
            else:
                self._add_within_edges(edge)

    def _add_within_edges(self, edge: CausalEdge) -> None:
        src_rel, src_attr = self.owner_of(edge.source)
        dst_rel, dst_attr = self.owner_of(edge.target)
        if src_rel == dst_rel:
            rel = self.database[src_rel]
            for i in range(len(rel)):
                key = rel.key_of(i)
                self.graph.add_edge(
                    GroundVariable(src_rel, key, src_attr),
                    GroundVariable(dst_rel, key, dst_attr),
                )
            return
        # Cross-relation edge: ground along the foreign-key link.
        pairs = self._linked_tuple_pairs(src_rel, dst_rel)
        for src_key, dst_key in pairs:
            self.graph.add_edge(
                GroundVariable(src_rel, src_key, src_attr),
                GroundVariable(dst_rel, dst_key, dst_attr),
            )

    def _linked_tuple_pairs(
        self, relation_a: str, relation_b: str
    ) -> Iterable[tuple[tuple[Any, ...], tuple[Any, ...]]]:
        links = self.database.schema.links_between(relation_a, relation_b)
        if not links:
            raise CausalModelError(
                f"cross-relation causal edge between {relation_a!r} and {relation_b!r} "
                "requires a foreign key linking them"
            )
        fk = links[0]
        parent = self.database[fk.parent]
        child = self.database[fk.child]
        parent_index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for i in range(len(parent)):
            link_value = tuple(parent.column_view(a)[i] for a in fk.parent_attributes)
            parent_index.setdefault(link_value, []).append(parent.key_of(i))
        for j in range(len(child)):
            link_value = tuple(child.column_view(a)[j] for a in fk.child_attributes)
            for parent_key in parent_index.get(link_value, []):
                if relation_a == fk.parent:
                    yield parent_key, child.key_of(j)
                else:
                    yield child.key_of(j), parent_key

    def _add_cross_tuple_edges(self, edge: CausalEdge) -> None:
        src_rel, src_attr = self.owner_of(edge.source)
        dst_rel, dst_attr = self.owner_of(edge.target)
        src = self.database[src_rel]
        dst = self.database[dst_rel]
        group_of_src = self._group_values(src_rel, edge.within)
        group_of_dst = self._group_values(dst_rel, edge.within)
        for i in range(len(src)):
            for j in range(len(dst)):
                if src_rel == dst_rel and src.key_of(i) == dst.key_of(j):
                    continue  # cross-tuple edges never point back into the same tuple
                if group_of_src[i] != group_of_dst[j]:
                    continue
                self.graph.add_edge(
                    GroundVariable(src_rel, src.key_of(i), src_attr),
                    GroundVariable(dst_rel, dst.key_of(j), dst_attr),
                )

    def _group_values(self, relation: str, within: str | None) -> list[Any]:
        rel = self.database[relation]
        if within is None:
            return [0] * len(rel)  # a single global group
        if within in rel.schema:
            return list(rel.column_view(within))
        # The grouping attribute may live in a linked relation (e.g. reviews grouped
        # by their product's Category); resolve it through the foreign key.
        owner, attribute = self.database.resolve_attribute(within)
        links = self.database.schema.links_between(relation, owner)
        if not links:
            raise CausalModelError(
                f"grouping attribute {within!r} is not in {relation!r} and no foreign key "
                f"links {relation!r} to {owner!r}"
            )
        fk = links[0]
        other = self.database[owner]
        other_index: dict[tuple[Any, ...], Any] = {}
        if fk.parent == owner:
            for i in range(len(other)):
                link_value = tuple(other.column_view(a)[i] for a in fk.parent_attributes)
                other_index[link_value] = other.column_view(attribute)[i]
            return [
                other_index.get(
                    tuple(rel.column_view(a)[j] for a in fk.child_attributes)
                )
                for j in range(len(rel))
            ]
        for i in range(len(other)):
            link_value = tuple(other.column_view(a)[i] for a in fk.child_attributes)
            other_index[link_value] = other.column_view(attribute)[i]
        return [
            other_index.get(
                tuple(rel.column_view(a)[j] for a in fk.parent_attributes)
            )
            for j in range(len(rel))
        ]

    # -- queries -------------------------------------------------------------------

    @property
    def nodes(self) -> list[GroundVariable]:
        return list(self.graph.nodes)

    @property
    def edges(self) -> list[tuple[GroundVariable, GroundVariable]]:
        return list(self.graph.edges)

    def tuples_are_independent(
        self,
        relation_a: str,
        key_a: tuple[Any, ...],
        relation_b: str,
        key_b: tuple[Any, ...],
    ) -> bool:
        """Whether no ground path (in either direction) connects the two tuples."""
        undirected = self.graph.to_undirected(as_view=True)
        nodes_a = [n for n in self.graph.nodes if n.relation == relation_a and n.key == key_a]
        nodes_b = {n for n in self.graph.nodes if n.relation == relation_b and n.key == key_b}
        for start in nodes_a:
            reachable = nx.node_connected_component(undirected, start)
            if reachable & nodes_b:
                return False
        return True

    def tuple_components(self) -> list[set[tuple[str, tuple[Any, ...]]]]:
        """Connected components projected down to (relation, key) tuple identities."""
        undirected = self.graph.to_undirected(as_view=True)
        merged: dict[tuple[str, tuple[Any, ...]], int] = {}
        components: list[set[tuple[str, tuple[Any, ...]]]] = []
        for component in nx.connected_components(undirected):
            tuple_ids = {(n.relation, n.key) for n in component}
            overlapping = {merged[t] for t in tuple_ids if t in merged}
            if overlapping:
                target = min(overlapping)
                for idx in sorted(overlapping - {target}, reverse=True):
                    tuple_ids |= components[idx]
                    components[idx] = set()
                components[target] |= tuple_ids
                for t in components[target]:
                    merged[t] = target
            else:
                components.append(set(tuple_ids))
                for t in tuple_ids:
                    merged[t] = len(components) - 1
        return [c for c in components if c]
