"""Summary functions ψ for variable-cardinality relational parents.

Section 2.2 of the paper assumes a *distribution-preserving summary function*
ψ that projects the (variable-size) set of relational parents of a ground
variable onto a fixed-length vector, so a single conditional distribution can
be estimated for all tuples.  In practice (and in the paper's Example 5) ψ is
an aggregate such as the average: a product's many review ratings are
summarised into one ``Avg(Rating)`` value.

This module provides the small vocabulary of summary functions used when
building the augmented causal graph and the relevant view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..exceptions import CausalModelError
from ..relational.aggregates import get_aggregate

__all__ = ["SummaryFunction", "AggregateSummary", "IdentitySummary", "make_summary"]


class SummaryFunction:
    """Maps a multiset of parent values to a single summary value."""

    name: str = "summary"

    def __call__(self, values: Sequence[Any]) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class AggregateSummary(SummaryFunction):
    """Summarise parent values with a SQL aggregate (avg / sum / count)."""

    how: str = "avg"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.how

    def __call__(self, values: Sequence[Any]) -> float:
        cleaned = [v for v in values if v is not None]
        if not cleaned:
            return float("nan")
        return get_aggregate(self.how).evaluate(cleaned)


@dataclass(frozen=True)
class IdentitySummary(SummaryFunction):
    """Pass-through summary for single-valued parent sets."""

    name: str = "identity"

    def __call__(self, values: Sequence[Any]) -> Any:
        cleaned = [v for v in values if v is not None]
        if len(cleaned) > 1:
            raise CausalModelError(
                "IdentitySummary received multiple parent values; use an aggregate summary"
            )
        return cleaned[0] if cleaned else None


def make_summary(how: str | SummaryFunction) -> SummaryFunction:
    """Build a summary function from a name (aggregate) or pass one through."""
    if isinstance(how, SummaryFunction):
        return how
    if str(how).lower() in ("identity", "id"):
        return IdentitySummary()
    return AggregateSummary(str(how).lower())


def summarize_groups(
    group_values: dict[Any, list[Any]], keys: Sequence[Any], summary: SummaryFunction
) -> np.ndarray:
    """Apply ``summary`` per key, aligned with ``keys`` (missing keys give NaN/None)."""
    out = []
    for key in keys:
        out.append(summary(group_values.get(key, [])))
    return np.asarray(out, dtype=object)
