"""Backdoor criterion: validity checks and (minimal) adjustment-set search.

Section 3.3 of the paper reduces post-update probabilities to observational
conditional probabilities via the backdoor criterion (Equation 1): a set ``C``
is a valid backdoor adjustment set w.r.t. treatment ``B`` and outcome ``Y``
when no member of ``C`` is a descendant of ``B`` or ``Y`` and ``C`` blocks every
backdoor path from ``B`` to ``Y``.

The search mirrors the paper's greedy procedure: start from all eligible
non-descendants and drop attributes one at a time while the set remains valid,
yielding a minimal (not necessarily minimum) adjustment set.  When no causal
graph is available, the engine falls back to using *all* other attributes
(the HypeR-NB variant), which the paper argues is always a superset of the true
backdoor set under its canonical model.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..exceptions import IdentificationError
from .dag import CausalDAG
from .dseparation import all_backdoor_paths, path_is_blocked

__all__ = [
    "eligible_adjustment_attributes",
    "satisfies_backdoor",
    "find_backdoor_set",
    "minimal_backdoor_set",
]


def eligible_adjustment_attributes(
    dag: CausalDAG, treatment: str, outcome: str
) -> set[str]:
    """Attributes allowed in a backdoor set: non-descendants of treatment/outcome."""
    forbidden = (
        dag.descendants(treatment)
        | dag.descendants(outcome)
        | {treatment, outcome}
    )
    return {node for node in dag.nodes if node not in forbidden}


def satisfies_backdoor(
    dag: CausalDAG,
    treatment: str,
    outcome: str,
    adjustment: Iterable[str],
) -> bool:
    """Whether ``adjustment`` satisfies the backdoor criterion for (treatment, outcome)."""
    adjustment = set(adjustment)
    eligible = eligible_adjustment_attributes(dag, treatment, outcome)
    if not adjustment <= eligible:
        return False
    for path in all_backdoor_paths(dag, treatment, outcome):
        if not path_is_blocked(dag, path, adjustment):
            return False
    return True


def find_backdoor_set(
    dag: CausalDAG,
    treatment: str,
    outcome: str,
) -> set[str]:
    """Return a valid backdoor adjustment set, or raise :class:`IdentificationError`.

    The full set of eligible non-descendants is tried first (this is the
    paper's starting point); if even that does not block all backdoor paths the
    effect is not identifiable by backdoor adjustment in this graph.
    """
    if treatment not in dag or outcome not in dag:
        missing = [a for a in (treatment, outcome) if a not in dag]
        raise IdentificationError(f"attributes {missing} are not in the causal DAG")
    candidate = eligible_adjustment_attributes(dag, treatment, outcome)
    if satisfies_backdoor(dag, treatment, outcome, candidate):
        return candidate
    raise IdentificationError(
        f"no backdoor adjustment set exists for {treatment!r} -> {outcome!r}"
    )


def minimal_backdoor_set(
    dag: CausalDAG,
    treatment: str,
    outcome: str,
    *,
    prefer: Sequence[str] = (),
) -> set[str]:
    """Greedy minimal backdoor set (Section A.2, "Computation of blocking set C").

    Starts from all eligible non-descendants and removes one attribute at a
    time while the backdoor criterion continues to hold.  ``prefer`` lists
    attributes to try to *keep* (they are considered for removal last), which
    the engine uses to retain attributes that already appear in the query's
    ``For`` clause — conditioning on those is free.
    """
    current = find_backdoor_set(dag, treatment, outcome)
    prefer_set = set(prefer)
    # Remove non-preferred attributes first, preferred ones last.
    removal_order = sorted(current - prefer_set) + sorted(current & prefer_set)
    for attribute in removal_order:
        reduced = current - {attribute}
        if satisfies_backdoor(dag, treatment, outcome, reduced):
            current = reduced
    return current
