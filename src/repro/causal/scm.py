"""Structural causal models: sampling and interventional ground truth.

A :class:`StructuralCausalModel` bundles an attribute-level :class:`CausalDAG`
with a structural equation (or exogenous distribution for roots) per attribute.
It serves two roles in the reproduction:

1. *Data generation* — the synthetic datasets (German-Syn, Student-Syn,
   Amazon-Syn, Adult-Syn) are draws from such a model, exactly as in the paper.
2. *Ground truth* — the accuracy experiments (Figure 10, Section 5.4) compare
   HypeR's estimates against the true post-intervention expectation computed by
   re-evaluating the structural equations under the ``do()`` operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..exceptions import CausalModelError
from .dag import CausalDAG
from .structural import ExogenousDistribution, StructuralEquation

__all__ = ["StructuralCausalModel"]


@dataclass
class StructuralCausalModel:
    """A PRCM over the attributes of a single (possibly summarised) relation.

    Parameters
    ----------
    dag:
        The attribute-level causal graph.
    equations:
        Structural equation per non-root attribute.  Every equation's declared
        parents must match the DAG's parent set for that attribute.
    exogenous:
        Marginal distribution per root attribute.
    """

    dag: CausalDAG
    equations: Mapping[str, StructuralEquation] = field(default_factory=dict)
    exogenous: Mapping[str, ExogenousDistribution] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for attr in self.dag.nodes:
            parents = self.dag.parents(attr)
            if parents:
                if attr not in self.equations:
                    raise CausalModelError(
                        f"attribute {attr!r} has parents {parents} but no structural equation"
                    )
                declared = set(self.equations[attr].parents)
                if declared != set(parents):
                    raise CausalModelError(
                        f"structural equation for {attr!r} declares parents {sorted(declared)} "
                        f"but the DAG says {parents}"
                    )
            else:
                if attr not in self.exogenous and attr not in self.equations:
                    raise CausalModelError(
                        f"root attribute {attr!r} needs an exogenous distribution"
                    )

    # -- observational sampling ---------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Draw ``n`` i.i.d. units from the observational distribution."""
        columns: dict[str, np.ndarray] = {}
        for attr in self.dag.topological_order():
            columns[attr] = self._sample_attribute(attr, columns, rng, n)
        return columns

    def _sample_attribute(
        self,
        attr: str,
        columns: Mapping[str, np.ndarray],
        rng: np.random.Generator,
        n: int,
    ) -> np.ndarray:
        parents = self.dag.parents(attr)
        if not parents and attr in self.exogenous:
            return self.exogenous[attr].sample(rng, n)
        equation = self.equations[attr]
        parent_values = {p: columns[p] for p in equation.parents}
        return equation.sample(parent_values, rng, n)

    # -- interventions -----------------------------------------------------------

    def intervene(
        self,
        columns: Mapping[str, Sequence[Any]],
        interventions: Mapping[str, Any],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Apply ``do(attr := value)`` to observed units and re-simulate descendants.

        ``columns`` holds the observed (pre-update) values; ``interventions``
        maps attribute names to either a scalar (applied to every unit), an
        array aligned with the units, or a callable mapping the pre-update
        column to the post-update column (this models the paper's
        ``Update(B) = f(Pre(B))`` forms).  Attributes that are neither
        intervened on nor descendants of an intervened attribute keep their
        observed values; descendants are re-drawn from their structural
        equations with fresh exogenous noise.
        """
        columns = {k: np.asarray(v, dtype=object) for k, v in columns.items()}
        sizes = {len(v) for v in columns.values()}
        if len(sizes) != 1:
            raise CausalModelError("all observed columns must have the same length")
        n = sizes.pop()

        unknown = [a for a in interventions if a not in self.dag]
        if unknown:
            raise CausalModelError(f"cannot intervene on unknown attributes {unknown}")

        affected: set[str] = set()
        for attr in interventions:
            affected |= self.dag.descendants(attr)
        affected -= set(interventions)

        post: dict[str, np.ndarray] = {}
        for attr in self.dag.topological_order():
            if attr in interventions:
                post[attr] = self._materialise_intervention(
                    interventions[attr], columns.get(attr), n
                )
            elif attr in affected:
                equation = self.equations[attr]
                parent_values = {p: self._as_float_if_possible(post[p]) for p in equation.parents}
                post[attr] = np.asarray(equation.sample(parent_values, rng, n), dtype=object)
            else:
                if attr not in columns:
                    raise CausalModelError(
                        f"observed data is missing attribute {attr!r} required by the model"
                    )
                post[attr] = columns[attr]
        return post

    @staticmethod
    def _as_float_if_possible(values: np.ndarray) -> np.ndarray:
        try:
            return np.asarray(values, dtype=float)
        except (TypeError, ValueError):
            return values

    @staticmethod
    def _materialise_intervention(
        intervention: Any, observed: np.ndarray | None, n: int
    ) -> np.ndarray:
        if callable(intervention):
            if observed is None:
                raise CausalModelError(
                    "a functional intervention needs the observed column to transform"
                )
            return np.asarray([intervention(v) for v in observed], dtype=object)
        if isinstance(intervention, (list, tuple, np.ndarray)):
            values = np.asarray(intervention, dtype=object)
            if len(values) != n:
                raise CausalModelError(
                    f"intervention array has length {len(values)}, expected {n}"
                )
            return values
        return np.asarray([intervention] * n, dtype=object)

    def expected_outcome_under_intervention(
        self,
        columns: Mapping[str, Sequence[Any]],
        interventions: Mapping[str, Any],
        outcome: Callable[[Mapping[str, np.ndarray]], float],
        rng: np.random.Generator,
        n_repeats: int = 20,
    ) -> float:
        """Monte-Carlo estimate of ``E[outcome(post-update world)]``.

        This is the ground-truth oracle used in the accuracy experiments: the
        structural equations are re-evaluated ``n_repeats`` times with fresh
        noise and the outcome functional is averaged.
        """
        if n_repeats <= 0:
            raise CausalModelError("n_repeats must be positive")
        total = 0.0
        for _ in range(n_repeats):
            post = self.intervene(columns, interventions, rng)
            total += float(outcome(post))
        return total / n_repeats
