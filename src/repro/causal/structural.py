"""Structural equations and noise models for PRCMs.

A structural equation defines the value of an endogenous attribute as a
function of its endogenous parents and an exogenous noise variable
(Section 2.2).  The synthetic-data generators and the ground-truth simulator
both evaluate these equations; the inference engine never needs them (it only
sees observational data), which mirrors the separation in the paper between the
data-generating process and HypeR's estimation from data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..exceptions import CausalModelError

__all__ = [
    "NoiseModel",
    "GaussianNoise",
    "UniformNoise",
    "NoNoise",
    "StructuralEquation",
    "LinearEquation",
    "LogisticEquation",
    "DiscreteCPD",
    "FunctionalEquation",
    "ExogenousDistribution",
]


# ---------------------------------------------------------------------------
# Noise models (the exogenous variables epsilon)
# ---------------------------------------------------------------------------


class NoiseModel:
    """Distribution of an exogenous noise variable."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class GaussianNoise(NoiseModel):
    """Zero-mean Gaussian noise with standard deviation ``scale``."""

    scale: float = 1.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.normal(0.0, self.scale, size=size)


@dataclass(frozen=True)
class UniformNoise(NoiseModel):
    """Uniform noise on ``[low, high]``."""

    low: float = -1.0
    high: float = 1.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """Degenerate noise (deterministic structural equation)."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.zeros(size)


# ---------------------------------------------------------------------------
# Exogenous (root) distributions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExogenousDistribution:
    """Marginal distribution of a root attribute (no endogenous parents).

    ``kind`` is one of ``"normal"``, ``"uniform"``, ``"categorical"``; the
    ``params`` dict supplies the obvious parameters (``loc``/``scale``,
    ``low``/``high``, or ``values``/``probabilities``).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self.kind == "normal":
            return rng.normal(
                self.params.get("loc", 0.0), self.params.get("scale", 1.0), size=size
            )
        if self.kind == "uniform":
            return rng.uniform(
                self.params.get("low", 0.0), self.params.get("high", 1.0), size=size
            )
        if self.kind == "categorical":
            values = list(self.params["values"])
            probabilities = self.params.get("probabilities")
            idx = rng.choice(len(values), size=size, p=probabilities)
            return np.array([values[i] for i in idx], dtype=object)
        raise CausalModelError(f"unknown exogenous distribution kind {self.kind!r}")


# ---------------------------------------------------------------------------
# Structural equations
# ---------------------------------------------------------------------------


class StructuralEquation:
    """Base class: computes an attribute from parent values and noise."""

    #: names of the endogenous parents, in the order expected by ``compute``
    parents: tuple[str, ...] = ()
    noise: NoiseModel = NoNoise()

    def compute(
        self,
        parent_values: Mapping[str, np.ndarray],
        noise: np.ndarray,
    ) -> np.ndarray:
        """Vectorised evaluation over ``n`` units; returns an array of length ``n``."""
        raise NotImplementedError

    def sample(
        self,
        parent_values: Mapping[str, np.ndarray],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        return self.compute(parent_values, self.noise.sample(rng, size))

    def _parent_matrix(
        self, parent_values: Mapping[str, np.ndarray], size: int
    ) -> np.ndarray:
        columns = []
        for parent in self.parents:
            if parent not in parent_values:
                raise CausalModelError(
                    f"structural equation expected parent {parent!r}; "
                    f"got {sorted(parent_values)}"
                )
            columns.append(np.asarray(parent_values[parent], dtype=float))
        if not columns:
            return np.zeros((size, 0))
        return np.column_stack(columns)


@dataclass
class LinearEquation(StructuralEquation):
    """``value = intercept + sum_i weight_i * parent_i + noise`` (optionally clipped)."""

    weights: Mapping[str, float] = field(default_factory=dict)
    intercept: float = 0.0
    noise: NoiseModel = field(default_factory=lambda: GaussianNoise(1.0))
    clip: tuple[float, float] | None = None
    round_to_int: bool = False

    def __post_init__(self) -> None:
        self.parents = tuple(self.weights)

    def compute(self, parent_values, noise):
        size = len(noise)
        matrix = self._parent_matrix(parent_values, size)
        weight_vector = np.array([self.weights[p] for p in self.parents], dtype=float)
        values = self.intercept + noise
        if matrix.shape[1]:
            values = values + matrix @ weight_vector
        if self.clip is not None:
            values = np.clip(values, self.clip[0], self.clip[1])
        if self.round_to_int:
            values = np.rint(values)
        return values


@dataclass
class LogisticEquation(StructuralEquation):
    """Bernoulli/binary outcome with ``P(1) = sigmoid(intercept + w . parents)``.

    ``labels`` maps the two outcomes; by default 0/1.
    """

    weights: Mapping[str, float] = field(default_factory=dict)
    intercept: float = 0.0
    labels: tuple[Any, Any] = (0, 1)
    noise: NoiseModel = field(default_factory=NoNoise)

    def __post_init__(self) -> None:
        self.parents = tuple(self.weights)

    def probability(self, parent_values: Mapping[str, np.ndarray], size: int) -> np.ndarray:
        matrix = self._parent_matrix(parent_values, size)
        weight_vector = np.array([self.weights[p] for p in self.parents], dtype=float)
        logits = np.full(size, self.intercept, dtype=float)
        if matrix.shape[1]:
            logits = logits + matrix @ weight_vector
        return 1.0 / (1.0 + np.exp(-logits))

    def compute(self, parent_values, noise):
        # ``noise`` is interpreted as the uniform draw deciding the Bernoulli outcome.
        size = len(noise)
        probs = self.probability(parent_values, size)
        uniform = (np.asarray(noise) % 1.0 + 1.0) % 1.0 if np.any(noise) else None
        if uniform is None:
            uniform = probs * 0.0 + 0.5  # deterministic threshold when no noise provided
        draws = uniform < probs
        return np.where(draws, self.labels[1], self.labels[0])

    def sample(self, parent_values, rng, size):
        probs = self.probability(parent_values, size)
        draws = rng.uniform(size=size) < probs
        return np.where(draws, self.labels[1], self.labels[0])


@dataclass
class DiscreteCPD(StructuralEquation):
    """Conditional probability table over discrete parents.

    ``table`` maps a tuple of parent values to a mapping of outcome -> probability.
    A ``default`` distribution covers parent combinations absent from the table.
    """

    parent_names: Sequence[str] = ()
    table: Mapping[tuple, Mapping[Any, float]] = field(default_factory=dict)
    default: Mapping[Any, float] | None = None
    noise: NoiseModel = field(default_factory=NoNoise)

    def __post_init__(self) -> None:
        self.parents = tuple(self.parent_names)
        for combo, dist in self.table.items():
            total = sum(dist.values())
            if not np.isclose(total, 1.0, atol=1e-6):
                raise CausalModelError(
                    f"CPD row for parents {combo} sums to {total}, expected 1.0"
                )

    def _distribution_for(self, combo: tuple) -> Mapping[Any, float]:
        if combo in self.table:
            return self.table[combo]
        if self.default is not None:
            return self.default
        raise CausalModelError(f"no CPD row for parent combination {combo!r}")

    def compute(self, parent_values, noise):
        # Deterministic evaluation picks the modal outcome.
        size = len(noise)
        out = np.empty(size, dtype=object)
        for i in range(size):
            combo = tuple(parent_values[p][i] for p in self.parents)
            dist = self._distribution_for(combo)
            out[i] = max(dist.items(), key=lambda kv: kv[1])[0]
        return out

    def sample(self, parent_values, rng, size):
        out = np.empty(size, dtype=object)
        for i in range(size):
            combo = tuple(parent_values[p][i] for p in self.parents)
            dist = self._distribution_for(combo)
            outcomes = list(dist)
            probs = np.array([dist[o] for o in outcomes], dtype=float)
            out[i] = outcomes[rng.choice(len(outcomes), p=probs / probs.sum())]
        return out


@dataclass
class FunctionalEquation(StructuralEquation):
    """Arbitrary vectorised function of the parents plus additive noise.

    ``function`` receives a dict of parent arrays and must return an array.
    """

    parent_names: Sequence[str] = ()
    function: Callable[[Mapping[str, np.ndarray]], np.ndarray] = lambda parents: np.zeros(0)
    noise: NoiseModel = field(default_factory=NoNoise)
    clip: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        self.parents = tuple(self.parent_names)

    def compute(self, parent_values, noise):
        values = np.asarray(self.function(parent_values), dtype=float) + np.asarray(noise)
        if self.clip is not None:
            values = np.clip(values, self.clip[0], self.clip[1])
        return values
