"""Attribute-level causal DAGs.

A :class:`CausalDAG` captures the background knowledge HypeR needs: which
attributes causally influence which (Figure 2 of the paper).  Nodes are
attribute names (optionally qualified ``Relation.Attribute``); edges are
directed and may be flagged as *cross-tuple*: the attribute of one tuple
influences the attribute of *other* tuples (e.g. the price of one laptop
influences the rating of competing laptops of the same category).  Cross-tuple
edges may declare a grouping attribute (``within``) limiting the influence to
tuples sharing that attribute's value.

The class wraps a :mod:`networkx` DiGraph and adds the causal-inference
vocabulary used throughout the engine: parents/children, ancestors/descendants,
topological order, and acyclicity validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from ..exceptions import CausalModelError

__all__ = ["CausalEdge", "CausalDAG"]


@dataclass(frozen=True)
class CausalEdge:
    """A directed causal edge ``source -> target``.

    ``cross_tuple`` marks edges whose influence crosses tuple boundaries; for
    those, ``within`` optionally names a grouping attribute so the influence is
    restricted to tuples that share the same value of that attribute (the
    paper's Example 7 groups laptops by Category).
    """

    source: str
    target: str
    cross_tuple: bool = False
    within: str | None = None

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise CausalModelError(f"self-loop edge on {self.source!r} is not allowed")
        if self.within is not None and not self.cross_tuple:
            raise CausalModelError("'within' grouping only applies to cross-tuple edges")


class CausalDAG:
    """Directed acyclic graph over attribute names."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        edges: Iterable[CausalEdge | tuple[str, str]] = (),
    ) -> None:
        self._graph = nx.DiGraph()
        self._edge_meta: dict[tuple[str, str], CausalEdge] = {}
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            if isinstance(edge, CausalEdge):
                self.add_edge(edge)
            else:
                self.add_edge(CausalEdge(edge[0], edge[1]))

    # -- construction -------------------------------------------------------------

    def add_node(self, name: str) -> None:
        if not name:
            raise CausalModelError("attribute node names must be non-empty")
        self._graph.add_node(name)

    def add_edge(self, edge: CausalEdge | tuple[str, str], **kwargs) -> None:
        """Add an edge, validating that the graph remains acyclic."""
        if not isinstance(edge, CausalEdge):
            edge = CausalEdge(edge[0], edge[1], **kwargs)
        self._graph.add_edge(edge.source, edge.target)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(edge.source, edge.target)
            raise CausalModelError(
                f"adding edge {edge.source!r} -> {edge.target!r} would create a cycle"
            )
        self._edge_meta[(edge.source, edge.target)] = edge

    def copy(self) -> "CausalDAG":
        clone = CausalDAG(self.nodes)
        for edge in self.edges:
            clone.add_edge(edge)
        return clone

    # -- basic structure ------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return list(self._graph.nodes)

    @property
    def edges(self) -> list[CausalEdge]:
        return [self._edge_meta[e] for e in self._graph.edges]

    def __contains__(self, node: str) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def has_edge(self, source: str, target: str) -> bool:
        return self._graph.has_edge(source, target)

    def edge(self, source: str, target: str) -> CausalEdge:
        try:
            return self._edge_meta[(source, target)]
        except KeyError as exc:
            raise CausalModelError(f"no edge {source!r} -> {target!r}") from exc

    def _require(self, node: str) -> None:
        if node not in self._graph:
            raise CausalModelError(
                f"attribute {node!r} is not a node of the causal DAG; nodes: {self.nodes}"
            )

    def parents(self, node: str) -> list[str]:
        self._require(node)
        return sorted(self._graph.predecessors(node))

    def children(self, node: str) -> list[str]:
        self._require(node)
        return sorted(self._graph.successors(node))

    def ancestors(self, node: str) -> set[str]:
        self._require(node)
        return set(nx.ancestors(self._graph, node))

    def descendants(self, node: str) -> set[str]:
        self._require(node)
        return set(nx.descendants(self._graph, node))

    def roots(self) -> list[str]:
        return sorted(n for n in self._graph.nodes if self._graph.in_degree(n) == 0)

    def topological_order(self) -> list[str]:
        """Nodes ordered so every parent precedes its children (deterministic)."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def cross_tuple_edges(self) -> list[CausalEdge]:
        return [e for e in self.edges if e.cross_tuple]

    # -- graph surgery used by interventions -------------------------------------------

    def without_incoming(self, nodes: Iterable[str]) -> "CausalDAG":
        """Return the mutilated graph where edges *into* ``nodes`` are removed.

        This is the standard ``do()`` operation on graphs: an intervention cuts
        the dependence of the intervened attribute on its causes.
        """
        cut = set(nodes)
        for node in cut:
            self._require(node)
        clone = CausalDAG(self.nodes)
        for edge in self.edges:
            if edge.target in cut:
                continue
            clone.add_edge(edge)
        return clone

    def subgraph(self, nodes: Iterable[str]) -> "CausalDAG":
        keep = set(nodes)
        for node in keep:
            self._require(node)
        clone = CausalDAG(sorted(keep))
        for edge in self.edges:
            if edge.source in keep and edge.target in keep:
                clone.add_edge(edge)
        return clone

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying :mod:`networkx` DiGraph."""
        return self._graph.copy()

    # -- paths (used by the backdoor machinery) ------------------------------------------

    def undirected_paths(self, source: str, target: str, cutoff: int | None = None) -> Iterator[list[str]]:
        """All simple paths between ``source`` and ``target`` ignoring direction."""
        self._require(source)
        self._require(target)
        undirected = self._graph.to_undirected(as_view=True)
        return nx.all_simple_paths(undirected, source, target, cutoff=cutoff)

    def is_collider(self, path: list[str], index: int) -> bool:
        """Whether ``path[index]`` is a collider (``a -> b <- c``) along ``path``."""
        if index <= 0 or index >= len(path) - 1:
            return False
        prev_node, node, next_node = path[index - 1], path[index], path[index + 1]
        return self.has_edge(prev_node, node) and self.has_edge(next_node, node)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CausalDAG({len(self)} nodes, {len(self.edges)} edges)"
