"""d-separation on attribute-level causal DAGs.

The backdoor machinery needs to decide whether a set of attributes blocks every
backdoor path between the update attribute and the outcome.  This module
implements the classic path-blocking definition: a path is blocked by a
conditioning set ``Z`` when it contains a non-collider in ``Z`` or a collider
whose descendants (including itself) are all outside ``Z``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .dag import CausalDAG

__all__ = ["path_is_blocked", "d_separated", "all_backdoor_paths"]


def path_is_blocked(dag: CausalDAG, path: Sequence[str], conditioning: Iterable[str]) -> bool:
    """Whether ``path`` (a node sequence) is blocked given ``conditioning``."""
    z = set(conditioning)
    if len(path) < 3:
        # A direct edge cannot be blocked by conditioning.
        return False
    for i in range(1, len(path) - 1):
        node = path[i]
        if dag.is_collider(list(path), i):
            descendants = dag.descendants(node) | {node}
            if not (descendants & z):
                return True
        else:
            if node in z:
                return True
    return False


def all_backdoor_paths(dag: CausalDAG, treatment: str, outcome: str) -> list[list[str]]:
    """All undirected simple paths from ``treatment`` to ``outcome`` that start
    with an edge *into* the treatment (the backdoor paths of Pearl)."""
    paths = []
    for path in dag.undirected_paths(treatment, outcome):
        if len(path) < 2:
            continue
        first_hop = path[1]
        if dag.has_edge(first_hop, treatment):
            paths.append(list(path))
    return paths


def d_separated(
    dag: CausalDAG,
    x: str,
    y: str,
    conditioning: Iterable[str] = (),
) -> bool:
    """Whether every undirected path between ``x`` and ``y`` is blocked."""
    z = set(conditioning)
    for path in dag.undirected_paths(x, y):
        if len(path) == 2:
            # direct edge: never blocked
            return False
        if not path_is_blocked(dag, path, z):
            return False
    return True
