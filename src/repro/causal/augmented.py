"""Augmented causal graph for multi-relation queries (Section A.3.2).

When the output (or filter) attribute of a query lives in a different relation
than the update attribute, the relevant view aggregates it per base tuple.  The
paper constructs an *augmented causal graph* ``G'`` that contains, for every
such aggregated attribute, a new node placed between the original attribute and
its children: the aggregated node becomes a child of the attributes it
summarises and the parent of their former children, and the original edges to
those children are removed.

The backdoor criterion is then applied to ``G'`` — the engine treats the
aggregated view column exactly like an ordinary attribute afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..exceptions import CausalModelError
from .dag import CausalDAG, CausalEdge

__all__ = ["AggregatedNode", "augment_causal_dag"]


@dataclass(frozen=True)
class AggregatedNode:
    """Declaration of an aggregated attribute added to the augmented graph.

    ``name`` is the view column name (e.g. ``Rtng``), ``source`` the original
    attribute node it aggregates (e.g. ``Rating``), and ``how`` the aggregate.
    """

    name: str
    source: str
    how: str = "avg"


def augment_causal_dag(
    dag: CausalDAG,
    aggregated: Iterable[AggregatedNode],
    rename: Mapping[str, str] | None = None,
) -> CausalDAG:
    """Return the augmented DAG ``G'`` with one node per aggregated attribute.

    Following the construction of Section A.3.2:

    * the aggregated node ``A'`` is added as a child of the source attribute;
    * ``A'`` becomes the parent of every former child of the source attribute;
    * the original edges from the source attribute to those children are removed.

    ``rename`` optionally renames surviving nodes (used to map relation-qualified
    attribute names onto view column names).
    """
    aggregated = list(aggregated)
    rename = dict(rename or {})
    by_source: dict[str, AggregatedNode] = {}
    for node in aggregated:
        if node.source not in dag:
            raise CausalModelError(
                f"aggregated node {node.name!r} references unknown attribute {node.source!r}"
            )
        if node.source in by_source:
            raise CausalModelError(
                f"attribute {node.source!r} is aggregated twice "
                f"({by_source[node.source].name!r} and {node.name!r})"
            )
        if node.name in dag or node.name in rename.values():
            raise CausalModelError(f"aggregated node name {node.name!r} collides with an existing node")
        by_source[node.source] = node

    def final_name(original: str) -> str:
        return rename.get(original, original)

    augmented = CausalDAG()
    for node in dag.nodes:
        augmented.add_node(final_name(node))
    for agg in aggregated:
        augmented.add_node(agg.name)

    for edge in dag.edges:
        source, target = edge.source, edge.target
        if source in by_source:
            # The child now depends on the aggregated version of the source.
            augmented.add_edge(
                CausalEdge(by_source[source].name, final_name(target), cross_tuple=False)
            )
        else:
            augmented.add_edge(
                CausalEdge(
                    final_name(source),
                    final_name(target),
                    cross_tuple=False,
                )
            )
    # Aggregated node hangs off its source attribute.
    for agg in aggregated:
        augmented.add_edge(CausalEdge(final_name(agg.source), agg.name))
    return augmented
