"""Causal substrate: DAGs, structural models, grounding, backdoor adjustment.

Implements the probabilistic relational causal model (PRCM) machinery the paper
builds on: attribute-level causal DAGs with cross-tuple edges, structural
equations for data generation and ground truth, grounding over database
instances, d-separation, the backdoor criterion, summary functions and the
augmented graph used for multi-relation queries.
"""

from .augmented import AggregatedNode, augment_causal_dag
from .backdoor import (
    eligible_adjustment_attributes,
    find_backdoor_set,
    minimal_backdoor_set,
    satisfies_backdoor,
)
from .dag import CausalDAG, CausalEdge
from .dseparation import all_backdoor_paths, d_separated, path_is_blocked
from .ground_graph import GroundCausalGraph, GroundVariable
from .scm import StructuralCausalModel
from .structural import (
    DiscreteCPD,
    ExogenousDistribution,
    FunctionalEquation,
    GaussianNoise,
    LinearEquation,
    LogisticEquation,
    NoNoise,
    NoiseModel,
    StructuralEquation,
    UniformNoise,
)
from .summary import AggregateSummary, IdentitySummary, SummaryFunction, make_summary

__all__ = [
    "AggregateSummary",
    "AggregatedNode",
    "CausalDAG",
    "CausalEdge",
    "DiscreteCPD",
    "ExogenousDistribution",
    "FunctionalEquation",
    "GaussianNoise",
    "GroundCausalGraph",
    "GroundVariable",
    "IdentitySummary",
    "LinearEquation",
    "LogisticEquation",
    "NoNoise",
    "NoiseModel",
    "StructuralCausalModel",
    "StructuralEquation",
    "SummaryFunction",
    "UniformNoise",
    "all_backdoor_paths",
    "augment_causal_dag",
    "d_separated",
    "eligible_adjustment_attributes",
    "find_backdoor_set",
    "make_summary",
    "minimal_backdoor_set",
    "path_is_blocked",
    "satisfies_backdoor",
]
