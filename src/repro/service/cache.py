"""Size-bounded, stats-instrumented caches for cross-query state.

The service layer keeps four LRU caches, all keyed by fingerprint components
that embed the service's database/DAG *generation counter* (see
:class:`~repro.service.session.HypeRService`), so a generation bump
invalidates every prior entry by construction; ``clear()`` additionally
releases the memory:

* **views** — materialised relevant views per ``Use`` specification;
* **estimators** — fitted :class:`~repro.core.estimator.PostUpdateEstimator`
  objects per estimator key (each internally caches its per-target
  regressors under structured keys);
* **blocks** — the block-independent decomposition labels per generation;
* **candidates** — how-to candidate enumerations (including their
  discretized value grids) per exact query identity.

Every cache is thread-safe.  ``get_or_create`` is *per-key* single-flight:
concurrent callers asking for the same missing key build it exactly once,
while misses on other keys — and hits — proceed without waiting on the
build (the factory runs outside the cache lock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

__all__ = ["CacheStats", "LRUCache", "QueryCaches"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    name: str
    max_size: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "max_size": self.max_size,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A thread-safe least-recently-used cache with instrumentation.

    ``max_size`` bounds the number of entries; inserting beyond the bound
    evicts the least recently *used* (read or written) entry.  ``get`` and
    ``get_or_create`` count hits/misses; evictions are counted separately so
    tests can assert the bound is enforced.
    """

    def __init__(
        self,
        max_size: int,
        name: str = "cache",
        on_evict: Callable[[Hashable, Any], None] | None = None,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.name = name
        self.max_size = max_size
        #: called with (key, value) when an entry leaves the cache (LRU
        #: eviction or ``clear``); must not call back into this cache.
        self.on_evict = on_evict
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._pending: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- access ----------------------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, building it with ``factory`` on a miss.

        Per-key single-flight: the first caller to miss a key becomes its
        builder and runs ``factory`` *outside* the cache lock; concurrent
        callers for the same key wait for that build, while hits and misses
        on other keys proceed unblocked.  If the builder raises, one waiter
        takes over as builder.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return self._entries[key]
                waiter = self._pending.get(key)
                if waiter is None:
                    self._pending[key] = threading.Event()
                    self._misses += 1
                    break  # we are the builder
            waiter.wait()
            # Loop: either the value is cached now, or the builder failed (or
            # the entry was already evicted) and we take over as builder.
        try:
            value = factory()
        except BaseException:
            with self._lock:
                event = self._pending.pop(key, None)
            if event is not None:
                event.set()
            raise
        with self._lock:
            self._store(key, value)
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or replace an entry (counts neither hit nor miss)."""
        with self._lock:
            self._store(key, value)

    def _store(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_size:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self._evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        with self._lock:
            entries = list(self._entries.items()) if self.on_evict is not None else []
            self._entries.clear()
            for key, value in entries:
                self.on_evict(key, value)

    # -- introspection ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def values(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._entries.values()))

    @property
    def evictions(self) -> int:
        return self._evictions

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                max_size=self.max_size,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


class QueryCaches:
    """The bundle of caches one :class:`HypeRService` owns."""

    def __init__(
        self,
        *,
        estimator_size: int = 64,
        view_size: int = 16,
        block_size: int = 8,
        candidate_size: int = 64,
    ) -> None:
        self.estimators = LRUCache(estimator_size, "estimators")
        self.views = LRUCache(view_size, "views")
        self.blocks = LRUCache(block_size, "blocks")
        self.candidates = LRUCache(candidate_size, "candidates")

    def all(self) -> tuple[LRUCache, ...]:
        return (self.estimators, self.views, self.blocks, self.candidates)

    def clear(self) -> None:
        for cache in self.all():
            cache.clear()

    def stats(self) -> dict[str, dict[str, Any]]:
        return {cache.name: cache.stats().as_dict() for cache in self.all()}
