"""Size-bounded, stats-instrumented caches for cross-query state.

The service layer keeps five caches, all keyed by fingerprint components that
embed the service's **per-relation generation counters** (see
:class:`~repro.service.session.HypeRService`), so bumping a relation's
generation invalidates every dependent entry by construction; entries are
additionally *tagged* with the relation names they were built from, letting
``update_database`` evict exactly the entries a changed relation touches
(``evict_tagged``) while unrelated plans stay warm:

* **views** — materialised relevant views per ``Use`` specification;
* **estimators** — fitted :class:`~repro.core.estimator.PostUpdateEstimator`
  objects per estimator key, bounded both by entry count and by a *cost
  weight* (training rows × features): one giant estimator can evict many
  small ones, which entry-count LRU alone cannot express;
* **blocks** — the block-independent decomposition labels;
* **candidates** — how-to candidate enumerations per exact query identity;
* **results** — final query answers per exact query identity
  (:class:`TTLCache`), with an optional time-to-live for dashboard-style
  staleness bounds.

Every cache is thread-safe.  ``get_or_create`` is *per-key* single-flight:
concurrent callers asking for the same missing key build it exactly once,
while misses on other keys — and hits — proceed without waiting on the
build (the factory runs outside the cache lock).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator

__all__ = ["CacheStats", "LRUCache", "QueryCaches", "TTLCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    name: str
    max_size: int
    size: int
    hits: int
    misses: int
    evictions: int
    weight: int = 0
    max_weight: int | None = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "max_size": self.max_size,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.max_weight is not None:
            out["weight"] = self.weight
            out["max_weight"] = self.max_weight
        return out


class LRUCache:
    """A thread-safe least-recently-used cache with instrumentation.

    ``max_size`` bounds the number of entries; inserting beyond the bound
    evicts the least recently *used* (read or written) entry.  ``get`` and
    ``get_or_create`` count hits/misses; evictions are counted separately so
    tests can assert the bound is enforced.

    Cost-aware bound
    ----------------
    ``weigher``/``max_weight`` add a second, size-weighted LRU bound: each
    entry's weight is computed once at insert time and eviction pops LRU
    entries while the total weight exceeds ``max_weight`` (at least one entry
    is always kept, so a single over-budget entry still caches).  The
    estimator cache uses training-rows × features as the weight.

    Tags
    ----
    ``get_or_create``/``put`` accept ``tags`` — hashable labels recording what
    an entry was built from (the service uses relation names).
    :meth:`evict_tagged` drops exactly the entries whose tag sets intersect a
    given collection, which is what makes invalidation fine-grained.
    """

    def __init__(
        self,
        max_size: int,
        name: str = "cache",
        on_evict: Callable[[Hashable, Any], None] | None = None,
        *,
        weigher: Callable[[Any], int] | None = None,
        max_weight: int | None = None,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        if max_weight is not None and max_weight < 1:
            raise ValueError("max_weight must be at least 1 when given")
        self.name = name
        self.max_size = max_size
        self.max_weight = max_weight
        #: called with (key, value) when an entry leaves the cache (LRU
        #: eviction, ``evict_tagged`` or ``clear``); must not call back into
        #: this cache.
        self.on_evict = on_evict
        self._weigher = weigher
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._weights: dict[Hashable, int] = {}
        self._tags: dict[Hashable, frozenset] = {}
        self._total_weight = 0
        self._lock = threading.RLock()
        self._pending: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- access ----------------------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            if key in self._entries and not self._expired(key):
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def _expired(self, key: Hashable) -> bool:
        """Hook for :class:`TTLCache`; plain entries never expire."""
        return False

    def get_or_create(
        self,
        key: Hashable,
        factory: Callable[[], Any],
        *,
        tags: Iterable[Hashable] = (),
    ) -> Any:
        """Return the cached value, building it with ``factory`` on a miss.

        Per-key single-flight: the first caller to miss a key becomes its
        builder and runs ``factory`` *outside* the cache lock; concurrent
        callers for the same key wait for that build, while hits and misses
        on other keys proceed unblocked.  If the builder raises, one waiter
        takes over as builder.
        """
        while True:
            with self._lock:
                if key in self._entries and not self._expired(key):
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return self._entries[key]
                waiter = self._pending.get(key)
                if waiter is None:
                    self._pending[key] = threading.Event()
                    self._misses += 1
                    break  # we are the builder
            waiter.wait()
            # Loop: either the value is cached now, or the builder failed (or
            # the entry was already evicted) and we take over as builder.
        try:
            value = factory()
        except BaseException:
            with self._lock:
                event = self._pending.pop(key, None)
            if event is not None:
                event.set()
            raise
        with self._lock:
            self._store(key, value, tags)
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()
        return value

    def put(self, key: Hashable, value: Any, *, tags: Iterable[Hashable] = ()) -> None:
        """Insert or replace an entry (counts neither hit nor miss)."""
        with self._lock:
            self._store(key, value, tags)

    def _store(self, key: Hashable, value: Any, tags: Iterable[Hashable] = ()) -> None:
        if key in self._entries:
            self._drop(key)
        self._entries[key] = value
        self._entries.move_to_end(key)
        tag_set = frozenset(tags)
        if tag_set:
            self._tags[key] = tag_set
        if self._weigher is not None:
            weight = max(0, int(self._weigher(value)))
            self._weights[key] = weight
            self._total_weight += weight
        while len(self._entries) > self.max_size or (
            self.max_weight is not None
            and self._total_weight > self.max_weight
            and len(self._entries) > 1
        ):
            evicted_key = next(iter(self._entries))
            evicted_value = self._drop(evicted_key)
            self._evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)

    def _drop(self, key: Hashable) -> Any:
        """Remove an entry and its bookkeeping (lock held); return the value."""
        value = self._entries.pop(key)
        self._tags.pop(key, None)
        self._total_weight -= self._weights.pop(key, 0)
        return value

    def evict_tagged(self, tags: Iterable[Hashable]) -> int:
        """Drop every entry whose tag set intersects ``tags``; return the count.

        Untagged entries are treated as depending on nothing and survive.
        """
        wanted = frozenset(tags)
        if not wanted:
            return 0
        with self._lock:
            victims = [
                key for key, key_tags in self._tags.items() if key_tags & wanted
            ]
            dropped = [(key, self._drop(key)) for key in victims]
            self._evictions += len(dropped)
            for key, value in dropped:
                if self.on_evict is not None:
                    self.on_evict(key, value)
        return len(dropped)

    def clear(self) -> None:
        with self._lock:
            entries = list(self._entries.items()) if self.on_evict is not None else []
            self._entries.clear()
            self._tags.clear()
            self._weights.clear()
            self._total_weight = 0
            for key, value in entries:
                self.on_evict(key, value)

    # -- introspection ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries and not self._expired(key)

    def values(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._entries.values()))

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def total_weight(self) -> int:
        with self._lock:
            return self._total_weight

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                max_size=self.max_size,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                weight=self._total_weight,
                max_weight=self.max_weight,
            )


class TTLCache(LRUCache):
    """An :class:`LRUCache` whose entries can expire after ``ttl_seconds``.

    ``ttl_seconds=None`` never expires (pure LRU).  Expiry is lazy: an expired
    entry counts as a miss on access and is replaced by the rebuilt value
    (single-flight, like any other miss).  The result cache uses this as its
    staleness bound for repeated identical queries between invalidations.
    """

    def __init__(
        self,
        max_size: int,
        name: str = "cache",
        on_evict: Callable[[Hashable, Any], None] | None = None,
        *,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(max_size, name, on_evict)
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when given")
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._inserted_at: dict[Hashable, float] = {}

    def _expired(self, key: Hashable) -> bool:
        if self.ttl_seconds is None:
            return False
        inserted = self._inserted_at.get(key)
        return inserted is not None and self._clock() - inserted > self.ttl_seconds

    def _store(self, key: Hashable, value: Any, tags: Iterable[Hashable] = ()) -> None:
        # Stamp AFTER the base insert: replacing an existing (e.g. expired)
        # entry goes through _drop, which discards the key's old timestamp —
        # stamping first would lose the fresh one with it and make the
        # rebuilt entry immortal.  The new entry is most recently used, so
        # the base class can never evict it within the same call.
        super()._store(key, value, tags)
        self._inserted_at[key] = self._clock()

    def _drop(self, key: Hashable) -> Any:
        self._inserted_at.pop(key, None)
        return super()._drop(key)

    def clear(self) -> None:
        with self._lock:
            self._inserted_at.clear()
        super().clear()


class QueryCaches:
    """The bundle of caches one :class:`HypeRService` owns."""

    def __init__(
        self,
        *,
        estimator_size: int = 64,
        view_size: int = 16,
        block_size: int = 8,
        candidate_size: int = 64,
        result_size: int = 256,
        result_ttl_seconds: float | None = None,
        estimator_weigher: Callable[[Any], int] | None = None,
        estimator_max_weight: int | None = None,
    ) -> None:
        self.estimators = LRUCache(
            estimator_size,
            "estimators",
            weigher=estimator_weigher,
            max_weight=estimator_max_weight,
        )
        self.views = LRUCache(view_size, "views")
        self.blocks = LRUCache(block_size, "blocks")
        self.candidates = LRUCache(candidate_size, "candidates")
        # result_size=0 disables result caching entirely (see HypeRService).
        self.results = TTLCache(
            max(1, result_size), "results", ttl_seconds=result_ttl_seconds
        )

    def all(self) -> tuple[LRUCache, ...]:
        return (self.estimators, self.views, self.blocks, self.candidates, self.results)

    def clear(self) -> None:
        for cache in self.all():
            cache.clear()

    def evict_tagged(self, tags: Iterable[Hashable]) -> int:
        """Fine-grained invalidation: drop entries depending on any of ``tags``."""
        return sum(cache.evict_tagged(tags) for cache in self.all())

    def stats(self) -> dict[str, dict[str, Any]]:
        return {cache.name: cache.stats().as_dict() for cache in self.all()}
