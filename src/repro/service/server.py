"""A minimal stdlib HTTP front-end for :class:`HypeRService`.

No web framework — ``http.server.ThreadingHTTPServer`` dispatches each
request on its own thread to a shared, thread-safe service.  Routing, request
validation, error envelopes and the 413/400 body policy all come from the
shared ``/v1`` endpoint table in :mod:`repro.api.endpoints` (the asyncio
front-end of :mod:`repro.aserve` mounts the same table, so the two front
doors cannot drift):

* ``GET /v1/health`` (alias ``/health``) — liveness probe;
* ``GET /v1/stats`` (alias ``/stats``) — the v1
  :class:`~repro.api.schemas.StatsSnapshot`;
* ``GET /v1/metrics`` (alias ``/metrics``) — Prometheus text exposition of
  the service's metrics registry;
* ``GET /v1/slow`` — the bounded slow-query log, worst offender first;
* ``POST /v1/query`` (alias ``/query``) — body is a v1
  :class:`~repro.api.schemas.QueryRequest`; answers with the typed
  what-if/how-to answer payload;
* ``POST /v1/batch`` (alias ``/batch``) — body is a v1
  :class:`~repro.api.schemas.BatchRequest`; answers ``{"results": [...],
  "n_queries": N}`` with per-query error envelopes (one bad entry never
  discards the rest of the batch);
* ``POST /v1/update`` — body is a v1
  :class:`~repro.api.schemas.UpdateRequest`; commits the named columns as
  one MVCC generation and answers with the
  :class:`~repro.api.schemas.UpdateAnswer` (in-flight queries keep their
  pinned snapshot — a commit never pauses readers);
* ``POST /v1/prepare`` — warm plans/estimators for a list of queries before
  real traffic arrives;
* ``POST /v1/jobs`` / ``GET /v1/jobs`` / ``GET /v1/jobs/{id}`` /
  ``GET /v1/jobs/{id}/events`` (NDJSON stream) / ``GET /v1/jobs/{id}/result``
  / ``POST /v1/jobs/{id}/cancel`` — the durable async job service
  (:mod:`repro.jobs`); answers 503 when the service was started without a
  job journal.

Requests may carry an ``X-Client-Id`` header; it scopes job quotas and
per-client serving stats, defaulting to a per-connection anonymous id.

Failures map through :func:`repro.api.endpoints.envelope_for` to the shared
``{"error", "code", "detail"?}`` envelope: query errors 400, oversized bodies
413, malformed JSON 400, unknown paths 404, unexpected engine failures 500.
Start a server from Python with :func:`serve` or from the command line with
``repro serve --dataset german-syn``; :func:`serve` installs SIGTERM/SIGINT
handlers that stop the listener, finish in-flight requests, and release the
service's shard pool.
"""

from __future__ import annotations

import signal
import threading
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..api import endpoints as api

# Historical home of the shared body-guard helpers; re-exported so existing
# importers (and pickled references) keep working after the move to repro.api.
from ..api.endpoints import (  # noqa: F401  (re-exports)
    MAX_BODY_BYTES,
    PayloadError,
    check_body_length,
    decode_json_object,
)
from ..jobs import api as jobs_api
from ..obs import trace as obs_trace
from .session import HypeRService

__all__ = [
    "MAX_BODY_BYTES",
    "PayloadError",
    "check_body_length",
    "decode_json_object",
    "make_server",
    "serve",
]


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests through the shared v1 endpoint table."""

    server_version = "HypeRService/1.0"
    #: silence per-request stderr logging unless the server enables it
    verbose = False

    @property
    def service(self) -> HypeRService:
        return self.server.hyper_service  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.verbose:  # pragma: no cover - exercised only with verbose servers
            super().log_message(format, *args)

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        body, compressed = api.maybe_gzip(
            body, enabled=api.accepts_gzip(self.headers.get("Accept-Encoding"))
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if compressed:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", "")
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, default=str).encode()
        self._send_body(status, body, "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _send_error_envelope(self, error: BaseException) -> None:
        status, envelope = api.envelope_for(error)
        self._send_json(status, envelope.to_json())

    def _begin_request(self) -> tuple[str, str]:
        """Split path/query string, adopt or mint the request id.

        Returns ``(path, query_string)``; the request id is echoed back on
        every response as ``X-Request-Id``.
        """
        path, _, query_string = self.path.partition("?")
        self._request_id = (
            self.headers.get("X-Request-Id") or obs_trace.new_request_id()
        )
        return path, query_string

    def _client_id(self) -> str:
        """The caller's id: ``X-Client-Id`` or a per-connection anonymous id."""
        header = (self.headers.get("X-Client-Id") or "").strip()
        if header:
            return header[:128]
        host, port = self.client_address[:2]
        return f"anon-{host}:{port}"

    def _note_client(self, *, rejected: bool = False) -> None:
        note = getattr(self.service, "note_client_request", None)
        if note is not None:
            note(self._client_id(), rejected=rejected)

    def _trace_context(self, query_string: str) -> "obs_trace.TraceContext | None":
        if api.wants_trace(query_string):
            return obs_trace.TraceContext(self._request_id)
        return None

    def _read_json_body(self) -> dict[str, Any]:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else None
        except ValueError:
            raise PayloadError(400, f"invalid Content-Length {raw_length!r}") from None
        length = check_body_length(length)
        raw = api.decompress_body(
            self.rfile.read(length), self.headers.get("Content-Encoding")
        )
        return decode_json_object(raw)

    # -- routes ------------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path, query_string = self._begin_request()
        matched = api.match("GET", path)
        if matched is None:
            self._send_error_envelope(api.not_found(path))
            return
        endpoint, params = matched
        try:
            if endpoint.name == "health":
                self._send_json(200, api.health_payload(self.service))
            elif endpoint.name == "stats":
                self._send_json(200, api.stats_payload(self.service))
            elif endpoint.name == "metrics":
                self._send_text(
                    200, api.metrics_text(self.service), api.METRICS_CONTENT_TYPE
                )
            elif endpoint.name == "slow":
                self._send_json(200, api.slow_payload(self.service))
            elif endpoint.name == "jobs_list":
                self._note_client()
                self._send_json(
                    200,
                    jobs_api.list_jobs_payload(
                        self.service, client_id=self._client_id()
                    ),
                )
            elif endpoint.name == "job_status":
                self._send_json(
                    200,
                    jobs_api.job_status_payload(
                        self.service, params["id"], client_id=self._client_id()
                    ),
                )
            elif endpoint.name == "job_result":
                self._send_json(
                    200,
                    jobs_api.job_result_payload(
                        self.service, params["id"], client_id=self._client_id()
                    ),
                )
            elif endpoint.name == "job_events":
                self._stream_job_events(params["id"], query_string)
            else:  # pragma: no cover - every GET endpoint is handled above
                self._send_error_envelope(api.not_found(path))
        except Exception as error:  # noqa: BLE001 - keep the JSON contract
            self._send_error_envelope(error)

    def _stream_job_events(self, job_id: str, query_string: str) -> None:
        """Stream a job's progress events as NDJSON lines.

        The response carries no ``Content-Length``; each event is flushed as
        it happens and the connection closes after the ``{"done": true}``
        line (HTTP/1.0 close-delimited framing, matching how this door
        already answers everything else).  Errors that occur before the
        first event — unknown job, jobs disabled — still answer a normal
        JSON envelope.
        """
        timeout = 30.0
        for part in query_string.split("&"):
            key, _, value = part.partition("=")
            if key == "timeout_s":
                try:
                    timeout = min(300.0, max(0.0, float(value)))
                except ValueError:
                    pass
        events = jobs_api.iter_job_events(
            self.service, job_id, client_id=self._client_id(), timeout=timeout
        )
        first = next(events)  # raises (404/503) before any header is written
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        try:
            for event in (first, *events):
                self.wfile.write(
                    json.dumps(event, default=str).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client hung up mid-stream; nothing to answer
        self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        path, query_string = self._begin_request()
        matched = api.match("POST", path)
        if matched is None:
            self._send_error_envelope(api.not_found(path))
            return
        endpoint, params = matched
        try:
            body = self._read_json_body()
        except PayloadError as error:
            # 413 for oversized bodies, 400 for missing/malformed ones — the
            # shared guards keep this identical to the async front-end.
            self._send_error_envelope(error)
            return
        trace = self._trace_context(query_string)
        try:
            if endpoint.name == "query":
                request = api.parse_query_request(body)
                self._send_json(
                    200,
                    api.execute_query_payload(self.service, request, trace=trace),
                )
            elif endpoint.name == "batch":
                request = api.parse_batch_request(body)
                self._send_json(200, api.batch_response_payload(self.service, request))
            elif endpoint.name == "update":
                request = api.parse_update_request(body)
                self._send_json(
                    200, api.apply_update_payload(self.service, request, trace=trace)
                )
            elif endpoint.name == "prepare":
                request = api.parse_prepare_request(body)
                self._send_json(200, api.prepare_payload(self.service, request))
            elif endpoint.name == "jobs_submit":
                self._note_client()
                request = jobs_api.parse_job_submit(body)
                try:
                    payload = jobs_api.submit_job_payload(
                        self.service, request, client_id=self._client_id()
                    )
                except api.ApiError as error:
                    if error.status == 429:
                        self._note_client(rejected=True)
                    raise
                self._send_json(202, payload)
            elif endpoint.name == "job_cancel":
                self._send_json(
                    200,
                    jobs_api.cancel_job_payload(
                        self.service, params["id"], client_id=self._client_id()
                    ),
                )
            else:  # pragma: no cover - the table maps every POST above
                self._send_error_envelope(api.not_found(path))
        except Exception as error:  # noqa: BLE001 - keep the JSON contract
            # Never drop the connection: query errors answer 400, unexpected
            # engine failures 500, all with the shared envelope shape.
            self._send_error_envelope(error)


def make_server(
    service: HypeRService, host: str = "127.0.0.1", port: int = 8000
) -> ThreadingHTTPServer:
    """Build (without starting) a threading HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port (useful for tests); read the actual
    address from ``server.server_address``.
    """
    class _Server(ThreadingHTTPServer):
        # socketserver's default listen backlog of 5 resets connections the
        # moment a few dozen clients arrive at once; without keep-alive every
        # request is a fresh connection, so the backlog must absorb bursts.
        request_queue_size = 128
        # Handler threads stay daemonic (a hung engine call must never block
        # process exit), but ``block_on_close`` keeps them registered so
        # ``server_close()`` joins them — ``serve()`` runs that join on a
        # helper thread with a timeout, giving a *bounded* drain.
        daemon_threads = True
        block_on_close = True

    server = _Server((host, port), _ServiceRequestHandler)
    server.hyper_service = service  # type: ignore[attr-defined]
    return server


def serve(
    service: HypeRService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    shutdown_event: threading.Event | None = None,
    drain_timeout: float = 30.0,
) -> None:
    """Serve until SIGTERM/SIGINT (or ``shutdown_event``), then drain and close.

    Graceful shutdown: the signal stops the listener (no new connections),
    in-flight handler threads finish their responses (``server_close`` joins
    them, run on a helper thread bounded by ``drain_timeout`` so one hung
    request cannot block shutdown forever), and :meth:`HypeRService.close`
    releases the shard worker pool — workers are never left to be
    garbage-collected.  ``shutdown_event`` lets embedding code (tests)
    request the same drain without a signal; when ``serve`` is not on the
    main thread, signal handlers are skipped and the event is the only
    trigger.
    """
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"HypeR service listening on http://{bound_host}:{bound_port}", flush=True)
    print(
        "endpoints: GET /v1/health, GET /v1/stats, GET /v1/metrics, GET /v1/slow, "
        "POST /v1/query, POST /v1/batch, POST /v1/update, POST /v1/prepare, "
        "POST+GET /v1/jobs, GET /v1/jobs/{id}[/events|/result], "
        "POST /v1/jobs/{id}/cancel (legacy aliases without the /v1 prefix)",
        flush=True,
    )
    stop = shutdown_event if shutdown_event is not None else threading.Event()
    previous: dict[int, Any] = {}

    def _request_stop(signum: int, frame: Any) -> None:
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:  # pragma: no cover - not the main thread
            break
    listener = threading.Thread(
        target=server.serve_forever, name="hyper-http-listener", daemon=True
    )
    listener.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive fallback
        pass
    finally:
        print("draining: listener closed, finishing in-flight requests", flush=True)
        server.shutdown()
        # server_close joins in-flight handler threads; bound it so a hung
        # engine call cannot block shutdown (handlers are daemonic)
        closer = threading.Thread(
            target=server.server_close, name="hyper-http-drain", daemon=True
        )
        closer.start()
        closer.join(timeout=drain_timeout)
        if closer.is_alive():
            print(
                f"drain timeout after {drain_timeout}s; abandoning in-flight requests",
                flush=True,
            )
        listener.join(timeout=10)
        jobs_manager = getattr(service, "jobs", None)
        if jobs_manager is not None:
            # stop workers and flush the journal before the pool goes away;
            # an unfinished lease replays as a crashed lease on restart
            jobs_manager.close()
        service.close()
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        print("shutdown complete", flush=True)
