"""A minimal stdlib HTTP front-end for :class:`HypeRService`.

No web framework — ``http.server.ThreadingHTTPServer`` dispatches each
request on its own thread to a shared, thread-safe service.  Endpoints:

* ``GET /health`` — liveness probe, ``{"status": "ok"}``;
* ``GET /stats`` — :meth:`HypeRService.stats` as JSON;
* ``POST /query`` — body ``{"query": "<SQL extension text>",
  "exhaustive": false}``; answers with the result payload;
* ``POST /batch`` — body ``{"queries": ["...", ...]}``; runs
  :meth:`HypeRService.execute_many` and answers with
  ``{"results": [...], "n_queries": N}``.  Failures are per query: a bad
  entry yields ``{"error": ...}`` at its position while the rest of the
  batch completes.

Query errors (parse/semantics) on ``/query`` return HTTP 400 with
``{"error": ...}``, unexpected engine failures 500; unknown paths 404.  Start one from Python with :func:`serve` or from the
command line with ``repro serve --dataset german-syn``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..exceptions import HypeRError
from .session import HypeRService

__all__ = ["make_server", "serve"]

_MAX_BODY_BYTES = 4 * 1024 * 1024


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service attached to the server."""

    server_version = "HypeRService/1.0"
    #: silence per-request stderr logging unless the server enables it
    verbose = False

    @property
    def service(self) -> HypeRService:
        return self.server.hyper_service  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.verbose:  # pragma: no cover - exercised only with verbose servers
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY_BYTES:
            raise ValueError("request body missing or too large")
        data = json.loads(self.rfile.read(length).decode())
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routes ------------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/health":
            self._send_json(200, {"status": "ok", "generation": self.service.generation})
        elif self.path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            body = self._read_json_body()
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid request body: {error}"})
            return
        try:
            if self.path == "/query":
                text = body.get("query")
                if not isinstance(text, str):
                    raise ValueError('body must contain a "query" string')
                result = self.service.execute(
                    text, exhaustive=bool(body.get("exhaustive", False))
                )
                self._send_json(200, result.payload())
            elif self.path == "/batch":
                texts = body.get("queries")
                if not isinstance(texts, list) or not all(
                    isinstance(t, str) for t in texts
                ):
                    raise ValueError('body must contain a "queries" list of strings')
                # Per-query error capture: one bad query must not discard the
                # rest of the batch's already-computed results.
                results = self.service.execute_many(texts, return_errors=True)
                payloads = [
                    {"error": str(r)} if isinstance(r, Exception) else r.payload()
                    for r in results
                ]
                self._send_json(
                    200, {"results": payloads, "n_queries": len(payloads)}
                )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except (HypeRError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - keep the JSON contract
            # Never drop the connection: unexpected engine failures still
            # answer with the documented {"error": ...} shape.
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})


def make_server(
    service: HypeRService, host: str = "127.0.0.1", port: int = 8000
) -> ThreadingHTTPServer:
    """Build (without starting) a threading HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port (useful for tests); read the actual
    address from ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port), _ServiceRequestHandler)
    server.hyper_service = service  # type: ignore[attr-defined]
    return server


def serve(
    service: HypeRService, host: str = "127.0.0.1", port: int = 8000
) -> None:  # pragma: no cover - blocking loop, exercised manually / via CLI
    """Serve forever (Ctrl-C to stop); used by the ``repro serve`` subcommand."""
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"HypeR service listening on http://{bound_host}:{bound_port}")
    print("endpoints: GET /health, GET /stats, POST /query, POST /batch")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
