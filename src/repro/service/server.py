"""A minimal stdlib HTTP front-end for :class:`HypeRService`.

No web framework — ``http.server.ThreadingHTTPServer`` dispatches each
request on its own thread to a shared, thread-safe service.  Endpoints:

* ``GET /health`` — liveness probe, ``{"status": "ok"}``;
* ``GET /stats`` — :meth:`HypeRService.stats` as JSON;
* ``POST /query`` — body ``{"query": "<SQL extension text>",
  "exhaustive": false}``; answers with the result payload;
* ``POST /batch`` — body ``{"queries": ["...", ...]}``; runs
  :meth:`HypeRService.execute_many` and answers with
  ``{"results": [...], "n_queries": N}``.  Failures are per query: a bad
  entry yields ``{"error": ...}`` at its position while the rest of the
  batch completes.

Query errors (parse/semantics) on ``/query`` return HTTP 400 with
``{"error": ...}``, unexpected engine failures 500; unknown paths 404;
oversized bodies 413 and malformed JSON 400 (the shared
:func:`check_body_length` / :func:`decode_json_object` helpers give the
asyncio front-end in :mod:`repro.aserve` the identical contract).  Start one
from Python with :func:`serve` or from the command line with ``repro serve
--dataset german-syn``; :func:`serve` installs SIGTERM/SIGINT handlers that
stop the listener, finish in-flight requests, and release the service's
shard pool.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..exceptions import HypeRError
from .session import HypeRService

__all__ = [
    "MAX_BODY_BYTES",
    "PayloadError",
    "check_body_length",
    "decode_json_object",
    "make_server",
    "serve",
]

#: default request-body ceiling shared by the threaded and asyncio front-ends
MAX_BODY_BYTES = 4 * 1024 * 1024


class PayloadError(ValueError):
    """A request body rejected before execution; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def check_body_length(length: int | None, *, max_bytes: int = MAX_BODY_BYTES) -> int:
    """Validate a declared Content-Length: 400 when absent, 413 when too big."""
    if length is None or length <= 0:
        raise PayloadError(400, "request body missing (Content-Length required)")
    if length > max_bytes:
        raise PayloadError(
            413, f"request body of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    return length


def decode_json_object(raw: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object; malformed input is 400."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise PayloadError(400, f"malformed JSON body: {error}") from None
    if not isinstance(data, dict):
        raise PayloadError(400, "request body must be a JSON object")
    return data


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service attached to the server."""

    server_version = "HypeRService/1.0"
    #: silence per-request stderr logging unless the server enables it
    verbose = False

    @property
    def service(self) -> HypeRService:
        return self.server.hyper_service  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.verbose:  # pragma: no cover - exercised only with verbose servers
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict[str, Any]:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else None
        except ValueError:
            raise PayloadError(400, f"invalid Content-Length {raw_length!r}") from None
        length = check_body_length(length)
        return decode_json_object(self.rfile.read(length))

    # -- routes ------------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/health":
            self._send_json(200, {"status": "ok", "generation": self.service.generation})
        elif self.path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            body = self._read_json_body()
        except PayloadError as error:
            # 413 for oversized bodies, 400 for missing/malformed ones — the
            # shared helpers keep this identical to the async front-end.
            self._send_json(error.status, {"error": str(error)})
            return
        try:
            if self.path == "/query":
                text = body.get("query")
                if not isinstance(text, str):
                    raise ValueError('body must contain a "query" string')
                result = self.service.execute(
                    text, exhaustive=bool(body.get("exhaustive", False))
                )
                self._send_json(200, result.payload())
            elif self.path == "/batch":
                texts = body.get("queries")
                if not isinstance(texts, list) or not all(
                    isinstance(t, str) for t in texts
                ):
                    raise ValueError('body must contain a "queries" list of strings')
                # Per-query error capture: one bad query must not discard the
                # rest of the batch's already-computed results.
                results = self.service.execute_many(texts, return_errors=True)
                payloads = [
                    {"error": str(r)} if isinstance(r, Exception) else r.payload()
                    for r in results
                ]
                self._send_json(
                    200, {"results": payloads, "n_queries": len(payloads)}
                )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except (HypeRError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - keep the JSON contract
            # Never drop the connection: unexpected engine failures still
            # answer with the documented {"error": ...} shape.
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})


def make_server(
    service: HypeRService, host: str = "127.0.0.1", port: int = 8000
) -> ThreadingHTTPServer:
    """Build (without starting) a threading HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port (useful for tests); read the actual
    address from ``server.server_address``.
    """
    class _Server(ThreadingHTTPServer):
        # socketserver's default listen backlog of 5 resets connections the
        # moment a few dozen clients arrive at once; without keep-alive every
        # request is a fresh connection, so the backlog must absorb bursts.
        request_queue_size = 128
        # Handler threads stay daemonic (a hung engine call must never block
        # process exit), but ``block_on_close`` keeps them registered so
        # ``server_close()`` joins them — ``serve()`` runs that join on a
        # helper thread with a timeout, giving a *bounded* drain.
        daemon_threads = True
        block_on_close = True

    server = _Server((host, port), _ServiceRequestHandler)
    server.hyper_service = service  # type: ignore[attr-defined]
    return server


def serve(
    service: HypeRService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    shutdown_event: threading.Event | None = None,
    drain_timeout: float = 30.0,
) -> None:
    """Serve until SIGTERM/SIGINT (or ``shutdown_event``), then drain and close.

    Graceful shutdown: the signal stops the listener (no new connections),
    in-flight handler threads finish their responses (``server_close`` joins
    them, run on a helper thread bounded by ``drain_timeout`` so one hung
    request cannot block shutdown forever), and :meth:`HypeRService.close`
    releases the shard worker pool — workers are never left to be
    garbage-collected.  ``shutdown_event`` lets embedding code (tests)
    request the same drain without a signal; when ``serve`` is not on the
    main thread, signal handlers are skipped and the event is the only
    trigger.
    """
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"HypeR service listening on http://{bound_host}:{bound_port}", flush=True)
    print("endpoints: GET /health, GET /stats, POST /query, POST /batch", flush=True)
    stop = shutdown_event if shutdown_event is not None else threading.Event()
    previous: dict[int, Any] = {}

    def _request_stop(signum: int, frame: Any) -> None:
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:  # pragma: no cover - not the main thread
            break
    listener = threading.Thread(
        target=server.serve_forever, name="hyper-http-listener", daemon=True
    )
    listener.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive fallback
        pass
    finally:
        print("draining: listener closed, finishing in-flight requests", flush=True)
        server.shutdown()
        # server_close joins in-flight handler threads; bound it so a hung
        # engine call cannot block shutdown (handlers are daemonic)
        closer = threading.Thread(
            target=server.server_close, name="hyper-http-drain", daemon=True
        )
        closer.start()
        closer.join(timeout=drain_timeout)
        if closer.is_alive():
            print(
                f"drain timeout after {drain_timeout}s; abandoning in-flight requests",
                flush=True,
            )
        listener.join(timeout=10)
        service.close()
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        print("shutdown complete", flush=True)
