"""The HypeR query service layer: fingerprints, caches, batch execution, HTTP.

This package turns the per-query engines of :mod:`repro.core` into a servable
system (the ROADMAP's production north star):

* :mod:`~repro.service.fingerprint` — canonical logical-plan fingerprints
  separating plan structure (which determines the expensive causal work)
  from parameters (update constants, clause literals);
* :mod:`~repro.service.cache` — bounded, instrumented LRU caches for views,
  fitted estimators, block decompositions and candidate enumerations;
* :mod:`~repro.service.executor` — fingerprint-grouped concurrent batch
  execution on a thread pool;
* :mod:`~repro.service.session` — the :class:`HypeRService` facade
  (``prepare`` / ``execute`` / ``execute_many`` / ``stats``);
* :mod:`~repro.service.server` — a stdlib HTTP JSON endpoint
  (``repro serve``) with graceful SIGTERM/SIGINT drain and the shared
  payload/limit helpers (:class:`PayloadError`, :func:`check_body_length`,
  :func:`decode_json_object`) the asyncio front-end (:mod:`repro.aserve`,
  ``repro serve --async``) reuses.

See ``docs/service.md`` for the architecture and invalidation rules.
"""

from .cache import CacheStats, LRUCache, QueryCaches, TTLCache
from .executor import BatchExecutor, default_max_workers
from .fingerprint import (
    PlanFingerprint,
    config_key,
    dag_key,
    fingerprint_how_to,
    fingerprint_query,
    fingerprint_what_if,
    update_key,
    use_key,
    use_relations,
)
from .server import (
    MAX_BODY_BYTES,
    PayloadError,
    check_body_length,
    decode_json_object,
    make_server,
    serve,
)
from .session import HypeRService, PreparedPlan

__all__ = [
    "BatchExecutor",
    "CacheStats",
    "HypeRService",
    "LRUCache",
    "MAX_BODY_BYTES",
    "PayloadError",
    "PlanFingerprint",
    "PreparedPlan",
    "QueryCaches",
    "TTLCache",
    "check_body_length",
    "decode_json_object",
    "config_key",
    "dag_key",
    "default_max_workers",
    "fingerprint_how_to",
    "fingerprint_query",
    "fingerprint_what_if",
    "make_server",
    "serve",
    "update_key",
    "use_key",
    "use_relations",
]
