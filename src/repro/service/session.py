"""The long-lived HypeR query service.

:class:`HypeRService` is the "system that serves many queries" counterpart of
the per-query :class:`repro.core.engine.HypeR` library facade.  It holds one
database + causal DAG + engine configuration and, across queries:

* caches materialised relevant views, fitted estimators and the block
  decomposition, keyed by :mod:`plan fingerprints <repro.service.fingerprint>`
  that embed a **generation counter** — ``update_database`` /
  ``update_causal_dag`` / ``invalidate`` bump the counter, so stale state can
  never be served;
* executes query batches concurrently through
  :class:`~repro.service.executor.BatchExecutor` (``execute_many``);
* reports instrumentation through :meth:`stats`.

Concurrency model: every generation-dependent piece (database, engines, DAG
identity, counter) lives in one immutable ``_EngineState`` snapshot that each
query reads exactly once, so a query observes either the old or the new
generation in full — never a mix — even when ``update_database`` runs
mid-flight.  Cache keys embed the snapshot's generation; entries an in-flight
old-generation query inserts after an invalidation are unreachable from the
new generation and age out of the bounded LRU.

Typical use::

    service = HypeRService(dataset.database, dataset.causal_dag,
                           EngineConfig(regressor="linear"))
    results = service.execute_many(queries)      # shared plans, thread pool
    one = service.execute("USE Credit UPDATE(Status) = 4 ...")
    print(service.stats()["caches"]["estimators"]["hit_rate"])
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from ..causal.dag import CausalDAG
from ..core.config import EngineConfig
from ..core.estimator import PostUpdateEstimator, build_view_dag
from ..core.howto import HowToEngine
from ..core.queries import HowToQuery, WhatIfQuery
from ..core.results import HowToResult, WhatIfResult
from ..core.whatif import WhatIfEngine
from ..exceptions import QuerySemanticsError
from ..lang.parser import parse_query
from ..probdb.blocks import block_labels
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.view import UseSpec
from .cache import QueryCaches
from .executor import BatchExecutor
from .fingerprint import PlanFingerprint, dag_key, fingerprint_query, use_key

__all__ = ["HypeRService", "PreparedPlan"]

Query = WhatIfQuery | HowToQuery
Result = WhatIfResult | HowToResult


@dataclass(frozen=True)
class _EngineState:
    """One generation's immutable execution state, swapped atomically."""

    generation: int
    database: Database
    causal_dag: CausalDAG | None
    dag_identity: Hashable
    whatif: WhatIfEngine
    howto: HowToEngine

    @classmethod
    def build(
        cls,
        generation: int,
        database: Database,
        causal_dag: CausalDAG | None,
        config: EngineConfig,
    ) -> "_EngineState":
        whatif = WhatIfEngine(database, causal_dag, config)
        # Reuse the (possibly backend-converted) database so both engines and
        # every cached view share one set of relations and column stores.
        howto = HowToEngine(whatif.database, causal_dag, config)
        return cls(
            generation=generation,
            database=whatif.database,
            causal_dag=causal_dag,
            dag_identity=dag_key(causal_dag),
            whatif=whatif,
            howto=howto,
        )


class PreparedPlan:
    """Handle returned by :meth:`HypeRService.prepare`: warmed shared state."""

    __slots__ = ("fingerprint", "view", "estimator")

    def __init__(
        self,
        fingerprint: PlanFingerprint,
        view: Relation,
        estimator: PostUpdateEstimator | None,
    ) -> None:
        self.fingerprint = fingerprint
        self.view = view
        self.estimator = estimator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PreparedPlan({self.fingerprint.kind}, plan={self.fingerprint.digest}, "
            f"estimator={'yes' if self.estimator is not None else 'no'})"
        )


class HypeRService:
    """Thread-safe, cache-backed query service over one database.

    Parameters
    ----------
    database / causal_dag / config:
        Exactly as for :class:`repro.core.engine.HypeR`.
    estimator_cache_size / view_cache_size / block_cache_size /
    candidate_cache_size:
        LRU bounds of the cross-query caches (entries, not bytes).  A view
        entry holds the materialised relevant view together with its DAG
        projection.
    max_workers:
        Default thread count for :meth:`execute_many` (``None``: CPU count
        capped at 8).
    """

    def __init__(
        self,
        database: Database,
        causal_dag: CausalDAG | None = None,
        config: EngineConfig | None = None,
        *,
        estimator_cache_size: int = 64,
        view_cache_size: int = 16,
        block_cache_size: int = 8,
        candidate_cache_size: int = 64,
        max_workers: int | None = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self._state = _EngineState.build(0, database, causal_dag, self.config)
        self.caches = QueryCaches(
            estimator_size=estimator_cache_size,
            view_size=view_cache_size,
            block_size=block_cache_size,
            candidate_size=candidate_cache_size,
        )
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._n_queries = 0
        self._n_batches = 0
        self._started_at = time.time()
        # Fold evicted/invalidated estimators' regressor counters into running
        # totals so stats() stays monotonic across evictions.  Guarded by its
        # own lock: the callback runs under the cache lock and must not take
        # self._lock (stats() holds self._lock while reading the caches).
        self._retired_lock = threading.Lock()
        self._retired_regressor_fits = 0
        self._retired_regressor_hits = 0
        self.caches.estimators.on_evict = self._retire_estimator

    def _retire_estimator(self, key: Hashable, estimator: PostUpdateEstimator) -> None:
        counters = estimator.regressor_cache_stats
        with self._retired_lock:
            self._retired_regressor_fits += counters["fits"]
            self._retired_regressor_hits += counters["hits"]

    # -- generation snapshot ---------------------------------------------------------------

    @property
    def database(self) -> Database:
        return self._state.database

    @property
    def causal_dag(self) -> CausalDAG | None:
        return self._state.causal_dag

    @property
    def generation(self) -> int:
        return self._state.generation

    # -- parsing and fingerprinting ------------------------------------------------------

    def parse(self, query_text: str) -> Query:
        """Parse SQL-extension text into a query object (no execution)."""
        return parse_query(query_text)

    def _as_query(self, query: str | Query) -> Query:
        if isinstance(query, str):
            return self.parse(query)
        if isinstance(query, (WhatIfQuery, HowToQuery)):
            return query
        raise QuerySemanticsError(
            f"expected query text or a query object, got {type(query).__name__}"
        )

    def fingerprint(self, query: str | Query) -> PlanFingerprint:
        """The canonical plan fingerprint of ``query`` at the current generation."""
        return self._fingerprint(self._state, self._as_query(query))

    def _fingerprint(self, state: _EngineState, query: Query) -> PlanFingerprint:
        return fingerprint_query(
            query,
            self.config,
            generation=state.generation,
            dag_identity=state.dag_identity,
        )

    # -- cached shared state ---------------------------------------------------------------

    def _plan_view(
        self, state: _EngineState, use: UseSpec
    ) -> tuple[Relation, CausalDAG | None]:
        """The materialised relevant view and its DAG projection (one cache entry)."""
        key = ("view", state.generation, state.dag_identity, use_key(use))
        return self.caches.views.get_or_create(
            key,
            lambda: (
                use.build(state.database),
                build_view_dag(state.causal_dag, use, state.database),
            ),
        )

    def _blocks(self, state: _EngineState) -> tuple[dict, int] | None:
        if state.causal_dag is None or not self.config.use_blocks:
            return None
        key = ("blocks", state.generation, state.dag_identity)
        return self.caches.blocks.get_or_create(
            key, lambda: block_labels(state.database, state.causal_dag)
        )

    def prepare(self, query: str | Query) -> PreparedPlan:
        """Warm the caches for ``query``'s plan and return the shared state.

        Building the plan once up front (the batch executor does this per
        fingerprint group) means subsequent :meth:`execute` calls for any
        parameter variant of the plan only pay for prediction.
        """
        state = self._state
        parsed = self._as_query(query)
        fingerprint = self._fingerprint(state, parsed)
        view, view_dag = self._plan_view(state, parsed.use)
        estimator: PostUpdateEstimator | None = None
        if isinstance(parsed, WhatIfQuery):
            if not self.config.ignores_dependencies:
                estimator = self.caches.estimators.get_or_create(
                    fingerprint.estimator_key,
                    lambda: state.whatif.build_estimator(
                        parsed, view=view, view_dag=view_dag
                    ),
                )
        else:
            estimator = self.caches.estimators.get_or_create(
                fingerprint.estimator_key,
                lambda: state.howto.build_estimator(
                    parsed, view=view, view_dag=view_dag
                ),
            )
        return PreparedPlan(fingerprint, view, estimator)

    # -- execution ---------------------------------------------------------------------------

    def execute(self, query: str | Query, *, exhaustive: bool = False) -> Result:
        """Answer one query, reusing every applicable cached plan component."""
        state = self._state
        parsed = self._as_query(query)
        with self._lock:
            self._n_queries += 1
        if isinstance(parsed, WhatIfQuery):
            return self._execute_what_if(state, parsed)
        return self._execute_how_to(state, parsed, exhaustive=exhaustive)

    def what_if(self, query: WhatIfQuery) -> WhatIfResult:
        """Alias of :meth:`execute` for programmatic what-if queries."""
        return self.execute(query)  # type: ignore[return-value]

    def how_to(self, query: HowToQuery, *, exhaustive: bool = False) -> HowToResult:
        """Alias of :meth:`execute` for programmatic how-to queries."""
        return self.execute(query, exhaustive=exhaustive)  # type: ignore[return-value]

    def execute_many(
        self,
        queries: Sequence[str | Query],
        *,
        max_workers: int | None = None,
        return_errors: bool = False,
    ) -> list[Result | Exception]:
        """Answer a batch concurrently; results align with the input order.

        Queries are grouped by plan fingerprint so each shared estimator is
        fitted once, then parameter variants fan out across worker threads.
        With ``return_errors=True`` a failing query yields its exception in
        the result list while the rest of the batch completes normally (the
        HTTP ``/batch`` endpoint uses this); with the default, the first
        failure propagates after the pool drains.
        """
        parsed: list[Query | Exception] = []
        for query in queries:
            try:
                parsed.append(self._as_query(query))
            except Exception as error:  # noqa: BLE001 - captured per query
                if not return_errors:
                    raise
                parsed.append(error)
        with self._lock:
            self._n_batches += 1
        executor = BatchExecutor(max_workers or self.max_workers)
        return executor.run(self, parsed, return_errors=return_errors)

    def _execute_what_if(self, state: _EngineState, query: WhatIfQuery) -> WhatIfResult:
        fingerprint = self._fingerprint(state, query)
        view, view_dag = self._plan_view(state, query.use)
        prepared = state.whatif.prepare(
            query, view=view, blocks=self._blocks(state), view_dag=view_dag
        )
        estimator: PostUpdateEstimator | None = None
        if not self.config.ignores_dependencies:
            estimator = self.caches.estimators.get_or_create(
                fingerprint.estimator_key,
                lambda: state.whatif.build_estimator(query, prepared),
            )
        return state.whatif.evaluate(query, prepared=prepared, estimator=estimator)

    def _execute_how_to(
        self, state: _EngineState, query: HowToQuery, *, exhaustive: bool
    ) -> HowToResult:
        fingerprint = self._fingerprint(state, query)
        view, view_dag = self._plan_view(state, query.use)
        estimator = self.caches.estimators.get_or_create(
            fingerprint.estimator_key,
            lambda: state.howto.build_estimator(query, view=view, view_dag=view_dag),
        )
        prepared = state.howto.prepare(
            query, view=view, estimator=estimator, view_dag=view_dag
        )
        candidates = self.caches.candidates.get_or_create(
            ("candidates", fingerprint.query_key),
            lambda: state.howto.enumerate_candidates(
                query, prepared.view, prepared.scope_mask
            ),
        )
        if exhaustive:
            return state.howto.evaluate_exhaustive(
                query, prepared=prepared, candidates=candidates
            )
        return state.howto.evaluate(query, prepared=prepared, candidates=candidates)

    # -- invalidation ---------------------------------------------------------------------

    def invalidate(self) -> None:
        """Bump the generation counter and drop every cached plan component."""
        with self._lock:
            state = self._state
            self._state = _EngineState.build(
                state.generation + 1, state.database, state.causal_dag, self.config
            )
        self.caches.clear()

    def update_database(self, database: Database) -> None:
        """Swap in a new database instance; all cached state is invalidated."""
        with self._lock:
            state = self._state
            self._state = _EngineState.build(
                state.generation + 1, database, state.causal_dag, self.config
            )
        self.caches.clear()

    def update_causal_dag(self, causal_dag: CausalDAG | None) -> None:
        """Swap in new causal background knowledge; invalidates cached state."""
        with self._lock:
            state = self._state
            self._state = _EngineState.build(
                state.generation + 1, state.database, causal_dag, self.config
            )
        self.caches.clear()

    # -- instrumentation -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service counters plus per-cache and regressor-level statistics.

        ``regressors.fits``/``hits`` are monotonic totals over the service's
        life: counters of estimators evicted from the LRU (or dropped by an
        invalidation) are folded into running sums, not lost.
        """
        with self._retired_lock:
            regressor_fits = self._retired_regressor_fits
            regressor_hits = self._retired_regressor_hits
        regressors_cached = 0
        for estimator in self.caches.estimators.values():
            counters = estimator.regressor_cache_stats
            regressor_fits += counters["fits"]
            regressor_hits += counters["hits"]
            regressors_cached += counters["cached"]
        with self._lock:
            return {
                "generation": self._state.generation,
                "n_queries": self._n_queries,
                "n_batches": self._n_batches,
                "uptime_seconds": time.time() - self._started_at,
                "caches": self.caches.stats(),
                "regressors": {
                    "fits": regressor_fits,
                    "hits": regressor_hits,
                    "cached": regressors_cached,
                },
            }
