"""The long-lived HypeR query service.

:class:`HypeRService` is the "system that serves many queries" counterpart of
the per-query :class:`repro.core.engine.HypeR` library facade.  It holds one
database + causal DAG + engine configuration and, across queries:

* caches materialised relevant views, fitted estimators, block decompositions
  and final **results**, keyed by :mod:`plan fingerprints
  <repro.service.fingerprint>` that embed **per-relation generation
  counters** — ``update_database`` bumps only the generations of the
  relations that actually changed, so estimators and views built from other
  relations stay warm, while ``update_causal_dag`` / ``invalidate`` bump
  everything;
* executes query batches concurrently — through
  :class:`~repro.service.executor.BatchExecutor` threads
  (``execution="threads"``, the default) or through a persistent
  :class:`~repro.shard.pool.ShardPool` of worker **processes** over a
  block-decomposition partition (``execution="processes"``, see
  :mod:`repro.shard`), whose merged answers are bitwise equal to the
  single-process path;
* reports instrumentation through :meth:`stats`.

Concurrency model (MVCC): every generation-dependent piece (database,
engines, DAG identity, counters) lives in one immutable ``_EngineState``
snapshot, and the snapshots live in a refcounted
:class:`~repro.service.versions.VersionStore`.  A query *pins* the latest
committed snapshot when it begins and reads exactly that snapshot until it
finishes, so it observes either the old or the new generation in full —
never a mix — even when ``update_database`` commits mid-flight.  Commits
never pause readers: ``update_database`` installs the new snapshot
atomically, in-flight readers keep their pinned (old) snapshot alive until
they unpin, and superseded snapshots are retired the moment their last
reader finishes.  In ``processes`` mode the shard pool always serves the
latest committed generation — a commit ships only the changed relations and
re-shaped row masks to the existing workers in place
(:meth:`~repro.shard.pool.ShardPool.apply_update`) instead of tearing the
pool down, and a reader still pinned to an older snapshot falls back to
in-process evaluation of its pinned state (bitwise-identical answers by the
shard merge contract), so no query ever observes a pool teardown.  Cache
keys embed the snapshot's generation vector; entries an in-flight
old-generation query inserts after an invalidation are unreachable from the
new generation and age out of the bounded LRU (targeted eviction by
relation tag reclaims the reachable ones eagerly).

Typical use::

    service = HypeRService(dataset.database, dataset.causal_dag,
                           EngineConfig(regressor="linear"))
    results = service.execute_many(queries)      # shared plans, thread pool
    one = service.execute("USE Credit UPDATE(Status) = 4 ...")
    print(service.stats()["caches"]["estimators"]["hit_rate"])

    sharded = HypeRService(dataset.database, dataset.causal_dag, config,
                           execution="processes", n_shards=4)
    results = sharded.execute_many(queries)      # shard workers, exact merge
    sharded.close()
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Sequence

from ..causal.dag import CausalDAG
from ..core.config import EngineConfig
from ..core.estimator import PostUpdateEstimator, build_view_dag
from ..core.howto import HowToEngine
from ..core.queries import HowToQuery, WhatIfQuery
from ..core.results import HowToResult, WhatIfResult
from ..core.whatif import WhatIfEngine
from ..exceptions import QuerySemanticsError
from ..lang.parser import parse_query
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from ..obs.slowlog import SlowQueryLog
from ..probdb.blocks import block_labels
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.view import UseSpec
from .cache import QueryCaches
from .executor import BatchExecutor, default_max_workers
from .fingerprint import (
    PlanFingerprint,
    dag_key,
    fingerprint_query,
    use_key,
    use_relations,
)
from .versions import VersionStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..shard.pool import ShardPool

__all__ = ["HypeRService", "PreparedPlan"]

Query = WhatIfQuery | HowToQuery
Result = WhatIfResult | HowToResult

EXECUTION_MODES = ("threads", "processes")


def _estimator_weight(estimator: PostUpdateEstimator) -> int:
    """Cost weight of a cached estimator: training rows × feature columns."""
    return estimator.n_training_rows * max(1, len(estimator.feature_attributes))


@dataclass(frozen=True)
class _EngineState:
    """One generation's immutable execution state, swapped atomically."""

    generation: int
    database: Database
    causal_dag: CausalDAG | None
    dag_identity: Hashable
    whatif: WhatIfEngine
    howto: HowToEngine
    #: generation counter per relation; only the counters of relations a plan
    #: reads enter its fingerprint, which is what keeps unrelated plans warm
    #: across partial database updates.  Treated as immutable.
    relation_generations: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        generation: int,
        database: Database,
        causal_dag: CausalDAG | None,
        config: EngineConfig,
        relation_generations: dict[str, int] | None = None,
    ) -> "_EngineState":
        whatif = WhatIfEngine(database, causal_dag, config)
        # Reuse the (possibly backend-converted) database so both engines and
        # every cached view share one set of relations and column stores.
        howto = HowToEngine(whatif.database, causal_dag, config)
        if relation_generations is None:
            relation_generations = {name: 0 for name in whatif.database.relation_names}
        return cls(
            generation=generation,
            database=whatif.database,
            causal_dag=causal_dag,
            dag_identity=dag_key(causal_dag),
            whatif=whatif,
            howto=howto,
            relation_generations=relation_generations,
        )

    def generation_key(self, relations: Sequence[str] | frozenset[str]) -> Hashable:
        """The generation vector of ``relations`` (a stable hashable)."""
        return ("gens",) + tuple(
            (name, self.relation_generations.get(name, 0)) for name in sorted(relations)
        )

    def all_relations_key(self) -> Hashable:
        return self.generation_key(self.database.relation_names)


class PreparedPlan:
    """Handle returned by :meth:`HypeRService.prepare`: warmed shared state."""

    __slots__ = ("fingerprint", "view", "estimator")

    def __init__(
        self,
        fingerprint: PlanFingerprint,
        view: Relation,
        estimator: PostUpdateEstimator | None,
    ) -> None:
        self.fingerprint = fingerprint
        self.view = view
        self.estimator = estimator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PreparedPlan({self.fingerprint.kind}, plan={self.fingerprint.digest}, "
            f"estimator={'yes' if self.estimator is not None else 'no'})"
        )


class HypeRService:
    """Thread-safe, cache-backed query service over one database.

    Parameters
    ----------
    database / causal_dag / config:
        Exactly as for :class:`repro.core.engine.HypeR`.
    estimator_cache_size / view_cache_size / block_cache_size /
    candidate_cache_size:
        LRU bounds of the cross-query caches (entries).  A view entry holds
        the materialised relevant view together with its DAG projection.
    estimator_cache_weight:
        Cost budget of the estimator cache in training-rows × features
        (size-weighted LRU on top of the entry bound; ``None`` disables the
        weight bound).
    result_cache_size / result_ttl_seconds:
        Bound and optional time-to-live of the result cache keyed on exact
        query identity (``PlanFingerprint.query_key``); ``result_cache_size=0``
        disables result caching.
    max_workers:
        Default thread count for :meth:`execute_many` in ``threads`` mode
        (``None``: CPU count capped at 8).
    execution:
        ``"threads"`` (default) executes in-process; ``"processes"`` routes
        queries through a persistent :class:`~repro.shard.pool.ShardPool` of
        worker processes over a block-decomposition partition
        (:mod:`repro.shard`) — answers are bitwise identical either way.
    n_shards:
        Number of shards/worker processes in ``processes`` mode (default:
        ``max_workers`` or the CPU count capped at 8).
    """

    def __init__(
        self,
        database: Database,
        causal_dag: CausalDAG | None = None,
        config: EngineConfig | None = None,
        *,
        estimator_cache_size: int = 64,
        view_cache_size: int = 16,
        block_cache_size: int = 8,
        candidate_cache_size: int = 64,
        estimator_cache_weight: int | None = 50_000_000,
        result_cache_size: int = 256,
        result_ttl_seconds: float | None = None,
        max_workers: int | None = None,
        execution: str = "threads",
        n_shards: int | None = None,
        metrics_registry: MetricsRegistry | None = None,
        slow_query_seconds: float = 0.1,
        slow_log_size: int = 64,
    ) -> None:
        if execution not in EXECUTION_MODES:
            raise QuerySemanticsError(
                f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
            )
        self.config = config if config is not None else EngineConfig()
        self.execution = execution
        self._versions = VersionStore(
            _EngineState.build(0, database, causal_dag, self.config),
            on_retire=self._on_retire_snapshot,
        )
        self.caches = QueryCaches(
            estimator_size=estimator_cache_size,
            view_size=view_cache_size,
            block_size=block_cache_size,
            candidate_size=candidate_cache_size,
            result_size=result_cache_size,
            result_ttl_seconds=result_ttl_seconds,
            estimator_weigher=_estimator_weight,
            estimator_max_weight=estimator_cache_weight,
        )
        self._result_cache_enabled = result_cache_size > 0
        self.max_workers = max_workers
        self.n_shards = n_shards or max_workers or default_max_workers()
        # Serializes read-modify-write commits (update_relation_columns) so
        # concurrent column updates cannot lose each other; re-entrant because
        # update_database takes it too.
        self._commit_lock = threading.RLock()
        self._pool_lock = threading.Lock()
        self._pool: "ShardPool | None" = None
        self._pool_generation: int | None = None
        self._shard_gate_warned = False
        self._started_at = time.time()
        # Declared instruments (repro.obs.metrics) replace the old hand-rolled
        # counter fields.  Each service gets its own registry by default so
        # stats of co-hosted services never mix; the front doors expose it at
        # GET /v1/metrics.  The serving instruments double as the live
        # backpressure signals read by front-end admission control
        # (repro.aserve) via serving_signals().
        self.metrics = (
            metrics_registry if metrics_registry is not None else MetricsRegistry()
        )
        m = self.metrics
        self._m_queries = m.counter(
            "hyper_queries_total", "Queries accepted by execute()/execute_many()"
        )
        self._m_batches = m.counter(
            "hyper_batches_total", "Batches accepted by execute_many()"
        )
        self._m_noop_commits = m.counter(
            "hyper_noop_commits_total", "Commits that changed no relation"
        )
        self._m_pinned_fallbacks = m.counter(
            "hyper_pinned_fallbacks_total",
            "Queries evaluated in-process because their pinned snapshot was superseded",
        )
        self._m_rejected = m.counter(
            "hyper_rejected_total",
            "Requests turned away by front-end admission control",
            labelnames=("endpoint",),
        )
        self._m_latency = m.histogram(
            "hyper_request_seconds",
            "Tracked execution latency per endpoint",
            labelnames=("endpoint",),
        )
        self._m_inflight = m.gauge(
            "hyper_inflight", "Concurrent tracked executions across all front doors"
        )
        self._m_slow = m.counter(
            "hyper_slow_queries_total",
            "Query completions at or above the slow-query threshold",
        )
        self._m_shard_gated = m.counter(
            "hyper_shard_gated_total",
            "Pool starts forced to a single worker by the rows backend",
        )
        #: bounded per-plan-fingerprint slow-query log, served by GET /v1/slow
        self.slow_log = SlowQueryLog(slow_log_size, slow_query_seconds)
        #: attached durable job manager (see repro.jobs.attach_jobs); None
        #: means the job surface answers 503 on both front doors
        self.jobs: Any = None
        # Per-client request/rejection counters (X-Client-Id or anonymous
        # per-connection ids).  Bounded: past _MAX_TRACKED_CLIENTS distinct
        # ids, new ones collapse into "_other" so a client-id churn attack
        # cannot grow the map without bound.
        self._clients_lock = threading.Lock()
        self._client_requests: dict[str, int] = {}
        self._client_rejections: dict[str, int] = {}
        self._register_collectors()
        # Fold evicted/invalidated estimators' regressor counters into running
        # totals so stats() stays monotonic across evictions.  Guarded by its
        # own lock because the callback runs under the cache lock.
        self._retired_lock = threading.Lock()
        self._retired_regressor_fits = 0
        self._retired_regressor_hits = 0
        self.caches.estimators.on_evict = self._retire_estimator

    def _register_collectors(self) -> None:
        """Scrape-time callbacks over derived state (zero steady-state cost)."""
        m = self.metrics
        m.register_callback(
            "hyper_uptime_seconds",
            "Seconds since the service started",
            lambda: time.time() - self._started_at,
        )
        m.register_callback(
            "hyper_generation",
            "Latest committed database generation",
            lambda: self._versions.latest.generation,
        )
        m.register_callback(
            "hyper_inflight_peak",
            "High-water mark of concurrent tracked executions",
            lambda: self._m_inflight.peak,
        )
        mvcc = {
            "hyper_mvcc_commits_total": ("commits", "counter"),
            "hyper_mvcc_retired_total": ("retired", "counter"),
            "hyper_mvcc_live_snapshots": ("live_snapshots", "gauge"),
            "hyper_mvcc_pinned_readers": ("pinned_readers", "gauge"),
        }
        for name, (stat_key, kind) in mvcc.items():
            m.register_callback(
                name,
                f"MVCC version store: {stat_key}",
                lambda key=stat_key: self._versions.stats()[key],
                kind=kind,
            )
        for name, stat_key, kind in (
            ("hyper_cache_hits_total", "hits", "counter"),
            ("hyper_cache_misses_total", "misses", "counter"),
            ("hyper_cache_evictions_total", "evictions", "counter"),
            ("hyper_cache_entries", "size", "gauge"),
        ):
            m.register_callback(
                name,
                f"Per-cache {stat_key} (labelled by cache)",
                lambda key=stat_key: [
                    ({"cache": cache_name}, stats[key])
                    for cache_name, stats in self.caches.stats().items()
                ],
                kind=kind,
            )
        for name, stat_key, kind in (
            ("hyper_pool_broadcasts_total", "n_broadcasts", "counter"),
            ("hyper_pool_updates_total", "n_updates", "counter"),
            ("hyper_pool_shards", "n_shards", "gauge"),
        ):
            m.register_callback(
                name,
                f"Shard pool {stat_key} (absent while no pool is running)",
                lambda key=stat_key: self._collect_pool_stat(key),
                kind=kind,
            )
        m.register_callback(
            "hyper_shm_bytes",
            "Live shared-memory snapshot bytes owned by the shard pool",
            self._collect_shm_bytes,
        )
        m.register_callback(
            "hyper_broadcast_bytes_total",
            "Bytes crossing the shard-worker queues (both directions)",
            lambda: self._collect_pool_stat("bytes_to_workers", "bytes_from_workers"),
            kind="counter",
        )

    def _collect_pool_stat(self, *keys: str) -> float | None:
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return None
        stats = pool.stats()
        return float(sum(stats[key] for key in keys))

    def _collect_shm_bytes(self) -> float | None:
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return None
        shm = pool.stats()["shm"]
        return float(shm["live_bytes"]) if shm is not None else 0.0

    @contextmanager
    def _track(self, endpoint: str, units: int = 1):
        """Count ``units`` in-flight executions and the endpoint's latency.

        ``units`` is the number of concurrent query executions the tracked
        region represents (a shard-pool batch crossing counts one unit per
        query it carries; a wrapper whose per-query work is tracked elsewhere
        passes 0 so nothing double-counts).
        """
        started = time.perf_counter()
        self._m_inflight.inc(units)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._m_inflight.dec(units)
            self._m_latency.labels(endpoint=endpoint).observe(elapsed)

    _MAX_TRACKED_CLIENTS = 512

    def record_rejection(self, endpoint: str = "query", *, units: int = 1) -> None:
        """Count ``units`` requests a front-end turned away (HTTP 429)."""
        self._m_rejected.labels(endpoint=endpoint).inc(units)

    def note_client_request(self, client_id: str, *, rejected: bool = False) -> None:
        """Attribute one front-door request (or admission/quota rejection)
        to a client id, for the per-client section of :meth:`stats`."""
        with self._clients_lock:
            counters = self._client_requests
            key = client_id
            if key not in counters and len(counters) >= self._MAX_TRACKED_CLIENTS:
                key = "_other"
            counters[key] = counters.get(key, 0) + 1
            if rejected:
                self._client_rejections[key] = self._client_rejections.get(key, 0) + 1

    def client_stats(self) -> dict[str, Any]:
        """Per-client request/rejection counts (bounded; see ``_other``)."""
        with self._clients_lock:
            return {
                "tracked": len(self._client_requests),
                "requests": dict(self._client_requests),
                "rejections": dict(self._client_rejections),
            }

    def serving_signals(self) -> dict[str, Any]:
        """A cheap live snapshot of serving load, for admission decisions.

        Returns in-flight executions (all front-ends sharing the service),
        their peak, total rejections, per-endpoint latency sums, and a
        saturation ratio against the service's own execution capacity
        (shard count in ``processes`` mode, worker threads otherwise).  No
        engine locks are taken — safe to call on an event loop per request.
        """
        capacity = (
            self.n_shards
            if self.execution == "processes"
            else (self.max_workers or default_max_workers())
        )
        in_flight = int(self._m_inflight.value)
        rejected = {k: int(v) for k, v in self._m_rejected.per_label().items()}
        signals: dict[str, Any] = {
            "in_flight": in_flight,
            "peak_in_flight": int(self._m_inflight.peak),
            "rejected_total": sum(rejected.values()),
            "rejected": rejected,
            "capacity_hint": capacity,
            "saturation": in_flight / capacity if capacity else 0.0,
            "latency": {
                endpoint: {"count": child.count, "seconds": child.sum}
                for endpoint, child in self._m_latency.per_label().items()
            },
        }
        jobs_manager = self.jobs
        if jobs_manager is not None:
            # Leases held but not yet inside the engine count as in-flight
            # pressure too (leases inside the engine already show up via the
            # _track gauge), so interactive admission sees background work
            # before it over-admits.
            job_signals = jobs_manager.signals()
            signals["jobs"] = job_signals
            signals["in_flight"] = in_flight + job_signals["background_load"]
            signals["saturation"] = (
                signals["in_flight"] / capacity if capacity else 0.0
            )
        return signals

    def _on_retire_snapshot(self, snapshot) -> None:
        """MVCC retire hook: free the retired generation's shm segments.

        Runs under the version store's lock, so it must stay re-entrancy-free:
        the pool reference is read directly (never via ``_pool_lock``, which
        ``close()`` holds while commits may retire concurrently) and
        :meth:`~repro.shard.pool.ShardPool.release_snapshot` only touches the
        segment manager's leaf lock.  Missing the pool here (a benign race
        with teardown) just defers the unlink to the pool's ``close_all``.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.release_snapshot(snapshot.generation)
            except Exception:  # noqa: BLE001 - never fail a retire over cleanup
                pass

    def _retire_estimator(self, key: Hashable, estimator: PostUpdateEstimator) -> None:
        counters = estimator.regressor_cache_stats
        with self._retired_lock:
            self._retired_regressor_fits += counters["fits"]
            self._retired_regressor_hits += counters["hits"]

    # -- generation snapshot ---------------------------------------------------------------

    @property
    def _state(self) -> _EngineState:
        """The latest committed engine state (unpinned peek).

        Queries must not read this repeatedly — they pin a snapshot once via
        :meth:`_pin_snapshot` and pass the pinned state explicitly, which is
        what makes every answer attributable to exactly one committed
        generation.
        """
        return self._versions.latest.state

    @contextmanager
    def _pin_snapshot(self):
        """Pin the latest committed snapshot for one query's whole execution."""
        with obs_trace.span("snapshot.pin") as pin_span:
            snapshot = self._versions.acquire()
            if pin_span is not None:
                pin_span.meta["generation"] = snapshot.generation
        try:
            yield snapshot.state
        finally:
            self._versions.release(snapshot)

    @property
    def database(self) -> Database:
        return self._state.database

    @property
    def causal_dag(self) -> CausalDAG | None:
        return self._state.causal_dag

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def relation_generations(self) -> dict[str, int]:
        """Per-relation generation counters (copy; see fine-grained invalidation)."""
        return dict(self._state.relation_generations)

    # -- parsing and fingerprinting ------------------------------------------------------

    def parse(self, query_text: str) -> Query:
        """Parse SQL-extension text into a query object (no execution)."""
        return parse_query(query_text)

    def _as_query(self, query: str | Query) -> Query:
        if isinstance(query, str):
            return self.parse(query)
        from ..api.builder import as_query_object  # lazy: api sits above service

        return as_query_object(query)

    def fingerprint(self, query: str | Query) -> PlanFingerprint:
        """The canonical plan fingerprint of ``query`` at the current generation."""
        return self._fingerprint(self._state, self._as_query(query))

    def _fingerprint(self, state: _EngineState, query: Query) -> PlanFingerprint:
        return fingerprint_query(
            query,
            self.config,
            generation=state.generation_key(use_relations(query.use)),
            dag_identity=state.dag_identity,
        )

    # -- cached shared state ---------------------------------------------------------------

    def _plan_view(
        self, state: _EngineState, use: UseSpec
    ) -> tuple[Relation, CausalDAG | None]:
        """The materialised relevant view and its DAG projection (one cache entry)."""
        deps = use_relations(use)
        key = ("view", state.generation_key(deps), state.dag_identity, use_key(use))
        return self.caches.views.get_or_create(
            key,
            lambda: (
                use.build(state.database),
                build_view_dag(state.causal_dag, use, state.database),
            ),
            tags=deps,
        )

    def _blocks(self, state: _EngineState) -> tuple[dict, int] | None:
        if state.causal_dag is None or not self.config.use_blocks:
            return None
        key = ("blocks", state.all_relations_key(), state.dag_identity)
        return self.caches.blocks.get_or_create(
            key,
            lambda: block_labels(state.database, state.causal_dag),
            tags=state.database.relation_names,
        )

    def prepare(
        self, query: str | Query | Sequence[str | Query]
    ) -> PreparedPlan | list[PreparedPlan]:
        """Warm the caches for ``query``'s plan and return the shared state.

        Building the plan once up front (the batch executor does this per
        fingerprint group) means subsequent :meth:`execute` calls for any
        parameter variant of the plan only pay for prediction.

        A list (or tuple) of queries warms every plan in order against one
        pinned snapshot and returns the plans as a list — ``repro serve``
        uses this to warm each ``--warm-query`` before binding the server.
        """
        if isinstance(query, (list, tuple)):
            plans: list[PreparedPlan] = []
            with self._pin_snapshot():
                for entry in query:
                    plans.append(self.prepare(entry))
            return plans
        parsed = self._as_query(query)
        with self._pin_snapshot() as state:
            fingerprint = self._fingerprint(state, parsed)
            view, view_dag = self._plan_view(state, parsed.use)
            deps = use_relations(parsed.use)
            estimator: PostUpdateEstimator | None = None
            if isinstance(parsed, WhatIfQuery):
                if not self.config.ignores_dependencies:
                    estimator = self.caches.estimators.get_or_create(
                        fingerprint.estimator_key,
                        lambda: state.whatif.build_estimator(
                            parsed, view=view, view_dag=view_dag
                        ),
                        tags=deps,
                    )
            else:
                estimator = self.caches.estimators.get_or_create(
                    fingerprint.estimator_key,
                    lambda: state.howto.build_estimator(
                        parsed, view=view, view_dag=view_dag
                    ),
                    tags=deps,
                )
            return PreparedPlan(fingerprint, view, estimator)

    # -- execution ---------------------------------------------------------------------------

    def execute(
        self,
        query: str | Query,
        *,
        exhaustive: bool = False,
        trace: "obs_trace.TraceContext | None" = None,
    ) -> Result:
        """Answer one query, reusing every applicable cached plan component.

        Repeated identical queries (same plan *and* parameters) are answered
        from the bounded result cache in O(1); the cache key embeds the
        generation vector of every relation, so no stale answer can survive a
        database update, and ``result_ttl_seconds`` adds a wall-clock bound on
        top for dashboard-style workloads.

        ``trace`` activates span recording for this call (the front doors
        pass the request's :class:`~repro.obs.trace.TraceContext` when the
        client asked for ``?trace=1``); with ``trace=None`` every span site
        is a no-op.
        """
        with obs_trace.activate(trace):
            with obs_trace.span("parse"):
                parsed = self._as_query(query)
            self._m_queries.inc()
            with self._track("query"), self._pin_snapshot() as state:
                started = time.perf_counter()
                if not self._result_cache_enabled:
                    with obs_trace.span("execute"):
                        result = self._execute_uncached(state, parsed, exhaustive)
                    self._record_completion(
                        state, parsed, query, time.perf_counter() - started
                    )
                    return result
                with obs_trace.span("fingerprint"):
                    fingerprint = self._fingerprint(state, parsed)
                key = self._result_key(state, fingerprint, exhaustive)
                hit = True

                def _build() -> Result:
                    nonlocal hit
                    hit = False
                    with obs_trace.span("execute"):
                        return self._execute_uncached(state, parsed, exhaustive)

                with obs_trace.span("cache.result") as cache_span:
                    result = self.caches.results.get_or_create(
                        key, _build, tags=state.database.relation_names
                    )
                if cache_span is not None:
                    cache_span.meta["hit"] = hit
                self._record_completion(
                    state,
                    parsed,
                    query,
                    time.perf_counter() - started,
                    fingerprint=fingerprint,
                )
                return result

    def _record_completion(
        self,
        state: _EngineState,
        parsed: Query,
        query: str | Query,
        elapsed: float,
        *,
        fingerprint: PlanFingerprint | None = None,
    ) -> None:
        """Feed the slow-query log; fingerprints/unparses only when tripped."""
        if elapsed < self.slow_log.threshold_seconds:
            return
        if fingerprint is None:
            fingerprint = self._fingerprint(state, parsed)
        if isinstance(query, str):
            text = query
        else:
            try:
                from ..lang.unparse import unparse_how_to, unparse_what_if

                if isinstance(parsed, WhatIfQuery):
                    text = unparse_what_if(parsed)
                else:
                    text = unparse_how_to(parsed)
            except Exception:  # noqa: BLE001 - the log is best-effort
                text = repr(parsed)[:200]
        active = obs_trace.current_trace()
        if self.slow_log.record(
            str(fingerprint.digest),
            elapsed,
            query=text,
            request_id=active.request_id if active is not None else "",
            kind=fingerprint.kind,
        ):
            self._m_slow.inc()

    def _result_key(
        self, state: _EngineState, fingerprint: PlanFingerprint, exhaustive: bool
    ) -> Hashable:
        # Shard-aware: results from different execution layouts never alias
        # (they are bitwise equal by construction, but the key still records
        # which pipeline produced them).  Block metadata depends on the whole
        # database, so the full generation vector is embedded.
        layout = (self.execution, self.n_shards if self.execution == "processes" else None)
        return (
            "result",
            fingerprint.kind,
            fingerprint.query_key,
            state.all_relations_key(),
            exhaustive,
            layout,
        )

    def _execute_uncached(
        self, state: _EngineState, parsed: Query, exhaustive: bool
    ) -> Result:
        if self.execution == "processes":
            pool = self._pool_for(state)
            if pool is not None:
                return pool.run_query(parsed, exhaustive=exhaustive)
            # Straggler: this query is pinned to a snapshot the pool has moved
            # past (or the pool is mid-rebuild).  Its pinned state holds fully
            # built engines, and the shard merge contract makes the in-process
            # answer bitwise-identical — so evaluate here rather than pause or
            # error the reader.
            self._m_pinned_fallbacks.inc()
        if isinstance(parsed, WhatIfQuery):
            return self._execute_what_if(state, parsed)
        return self._execute_how_to(state, parsed, exhaustive=exhaustive)

    def what_if(self, query: WhatIfQuery) -> WhatIfResult:
        """Alias of :meth:`execute` for programmatic what-if queries."""
        return self.execute(query)  # type: ignore[return-value]

    def how_to(self, query: HowToQuery, *, exhaustive: bool = False) -> HowToResult:
        """Alias of :meth:`execute` for programmatic how-to queries."""
        return self.execute(query, exhaustive=exhaustive)  # type: ignore[return-value]

    def execute_many(
        self,
        queries: Sequence[str | Query],
        *,
        max_workers: int | None = None,
        return_errors: bool = False,
    ) -> list[Result | Exception]:
        """Answer a batch concurrently; results align with the input order.

        In ``threads`` mode, queries are grouped by plan fingerprint so each
        shared estimator is fitted once, then parameter variants fan out
        across worker threads.  In ``processes`` mode the whole batch crosses
        the shard pool in a single broadcast round-trip and the merged
        answers come back in order.  With ``return_errors=True`` a failing
        query yields its exception in the result list while the rest of the
        batch completes normally (the HTTP ``/batch`` endpoint uses this);
        with the default, the first failure propagates after the pool drains.
        """
        parsed: list[Query | Exception] = []
        for query in queries:
            try:
                parsed.append(self._as_query(query))
            except Exception as error:  # noqa: BLE001 - captured per query
                if not return_errors:
                    raise
                parsed.append(error)
        self._m_batches.inc()
        # units=0: per-query in-flight is tracked inside execute() (threads
        # mode) or around the pool crossing (processes mode); the batch
        # wrapper contributes only its latency sum.
        with self._track("batch", units=0):
            if self.execution == "processes":
                return self._execute_many_processes(parsed, return_errors=return_errors)
            executor = BatchExecutor(max_workers or self.max_workers)
            return executor.run(self, parsed, return_errors=return_errors)

    def _execute_many_processes(
        self, parsed: Sequence[Query | Exception], *, return_errors: bool
    ) -> list[Result | Exception]:
        self._m_queries.inc(
            sum(1 for query in parsed if not isinstance(query, Exception))
        )
        results: list[Result | Exception] = list(parsed)
        with self._pin_snapshot() as state:
            # Serve result-cache hits first; only misses cross the pool.
            misses: list[tuple[int, Query, Hashable]] = []
            for index, query in enumerate(parsed):
                if isinstance(query, Exception):
                    continue
                if not self._result_cache_enabled:
                    misses.append((index, query, None))
                    continue
                key = self._result_key(state, self._fingerprint(state, query), False)
                cached = self.caches.results.get(key)
                if cached is not None:
                    results[index] = cached
                else:
                    misses.append((index, query, key))
            if misses:
                pool = self._pool_for(state)
                with self._track("shard_batch", units=len(misses)):
                    if pool is not None:
                        fresh = pool.run_batch(
                            [query for _index, query, _key in misses],
                            return_errors=True,
                        )
                    else:
                        # Pinned to a superseded snapshot: evaluate the whole
                        # batch in-process from the pinned engines (bitwise
                        # identical by the shard merge contract).
                        self._m_pinned_fallbacks.inc(len(misses))
                        fresh = []
                        for _index, query, _key in misses:
                            try:
                                if isinstance(query, WhatIfQuery):
                                    fresh.append(self._execute_what_if(state, query))
                                else:
                                    fresh.append(
                                        self._execute_how_to(
                                            state, query, exhaustive=False
                                        )
                                    )
                            except Exception as error:  # noqa: BLE001 - per query
                                fresh.append(error)
                for (index, _query, key), result in zip(misses, fresh):
                    results[index] = result
                    if key is not None and not isinstance(result, Exception):
                        self.caches.results.put(
                            key, result, tags=state.database.relation_names
                        )
        if not return_errors:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    def _execute_what_if(self, state: _EngineState, query: WhatIfQuery) -> WhatIfResult:
        fingerprint = self._fingerprint(state, query)
        view, view_dag = self._plan_view(state, query.use)
        prepared = state.whatif.prepare(
            query, view=view, blocks=self._blocks(state), view_dag=view_dag
        )
        estimator: PostUpdateEstimator | None = None
        if not self.config.ignores_dependencies:

            def _fit() -> PostUpdateEstimator:
                with obs_trace.span("estimator.fit", plan=str(fingerprint.digest)):
                    return state.whatif.build_estimator(query, prepared)

            estimator = self.caches.estimators.get_or_create(
                fingerprint.estimator_key, _fit, tags=use_relations(query.use)
            )
        return state.whatif.evaluate(query, prepared=prepared, estimator=estimator)

    def _execute_how_to(
        self, state: _EngineState, query: HowToQuery, *, exhaustive: bool
    ) -> HowToResult:
        fingerprint = self._fingerprint(state, query)
        view, view_dag = self._plan_view(state, query.use)
        deps = use_relations(query.use)

        def _fit() -> PostUpdateEstimator:
            with obs_trace.span("estimator.fit", plan=str(fingerprint.digest)):
                return state.howto.build_estimator(query, view=view, view_dag=view_dag)

        estimator = self.caches.estimators.get_or_create(
            fingerprint.estimator_key, _fit, tags=deps
        )
        prepared = state.howto.prepare(
            query, view=view, estimator=estimator, view_dag=view_dag
        )
        candidates = self.caches.candidates.get_or_create(
            ("candidates", fingerprint.query_key),
            lambda: state.howto.enumerate_candidates(
                query, prepared.view, prepared.scope_mask
            ),
            tags=deps,
        )
        if exhaustive:
            return state.howto.evaluate_exhaustive(
                query, prepared=prepared, candidates=candidates
            )
        return state.howto.evaluate(query, prepared=prepared, candidates=candidates)

    # -- shard pool (processes mode) -------------------------------------------------------

    def _pool_for(self, state: _EngineState) -> "ShardPool | None":
        """The persistent shard pool, iff it serves ``state``'s generation.

        The pool always tracks the *latest* committed generation —
        ``update_database`` moves it forward in place
        (:meth:`~repro.shard.pool.ShardPool.apply_update`), so the worker
        processes live across commits and the database crosses the process
        boundary once per generation, never per query.  Returns ``None`` for
        a reader pinned to a superseded snapshot (the caller evaluates
        in-process from its pinned state) — a commit therefore never pauses
        or errors an in-flight reader.  Lazily started on the first call
        whose ``state`` is the latest generation.
        """
        from ..shard.partition import partition_database
        from ..shard.pool import ShardPool

        with self._pool_lock:
            if self._pool is not None:
                if self._pool_generation == state.generation:
                    return self._pool
                # The pool serves a different (newer) generation than this
                # reader's pinned snapshot: straggler, falls back in-process.
                return None
            if state.generation != self._versions.latest.generation:
                return None
            plan = partition_database(
                state.database,
                state.causal_dag,
                self._effective_shards(state),
                blocks=self._blocks(state),
            )
            self._pool = ShardPool(
                plan, state.causal_dag, self.config, generation=state.generation
            ).start()
            self._pool_generation = state.generation
            return self._pool

    def _effective_shards(self, state: _EngineState) -> int:
        """Worker count for ``state`` — gated to 1 on the rows backend.

        Process sharding's zero-copy snapshot transport serializes relations
        through their columnar stores; the rows backend would pay a full
        row→column conversion per generation per worker and void the
        transport's savings, so multi-worker plans are downgraded to a single
        worker (logged once, counted in ``hyper_shard_gated_total``).
        """
        if self.n_shards <= 1:
            return self.n_shards
        backends = {relation.backend for relation in state.database}
        if "rows" not in backends:
            return self.n_shards
        self._m_shard_gated.inc()
        if not self._shard_gate_warned:
            self._shard_gate_warned = True
            logging.getLogger(__name__).warning(
                "process sharding across %d workers requires the columnar "
                "backend; the database uses the rows backend, so the pool is "
                "gated to a single worker (set EngineConfig(backend="
                "'columnar') to shard)",
                self.n_shards,
            )
        return 1

    def _refresh_pool(
        self,
        state: _EngineState,
        changed: frozenset[str],
        *,
        replace_dag: bool = False,
        clear_caches: bool = False,
    ) -> None:
        """Move the running shard pool to ``state``'s generation in place.

        Ships only the changed relations (plus re-shaped row masks / block
        labels) to the existing worker processes; the workers are never
        restarted, so readers racing the commit keep their answers.
        ``replace_dag`` ships ``state``'s causal DAG as the workers' new
        background knowledge and ``clear_caches`` drops every worker plan
        cache — the in-place forms of :meth:`update_causal_dag` and
        :meth:`invalidate`.  If the in-place update fails for any reason the
        pool is closed and the next latest-generation query rebuilds it
        lazily — readers pinned to older snapshots fall back in-process
        either way.
        """
        if self.execution != "processes":
            return
        from ..shard.partition import partition_database

        with self._pool_lock:
            pool = self._pool
            if pool is None:
                return  # nothing running; lazy start will use the new state
            try:
                plan = partition_database(
                    state.database,
                    state.causal_dag,
                    self._effective_shards(state),
                    blocks=self._blocks(state),
                )
                pool.apply_update(
                    plan,
                    changed,
                    generation=state.generation,
                    causal_dag=state.causal_dag if replace_dag else None,
                    replace_dag=replace_dag,
                    clear_caches=clear_caches,
                )
                self._pool_generation = state.generation
            except Exception:
                pool.close()
                self._pool = None
                self._pool_generation = None
                raise

    def start_pool(self) -> None:
        """Eagerly start the shard pool for the current generation.

        Optional — the pool starts lazily on the first ``processes``-mode
        query — but starting it *before* spawning request-handler threads
        lets the pool use the cheap ``fork`` start method safely (forking a
        multithreaded parent risks cloning held locks); ``repro serve`` calls
        this before binding the HTTP server.  No-op in ``threads`` mode.
        """
        if self.execution == "processes":
            self._pool_for(self._state)

    def close(self) -> None:
        """Release the shard pool (idempotent; threads mode has nothing to close)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
                self._pool_generation = None

    def __enter__(self) -> "HypeRService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- invalidation ---------------------------------------------------------------------

    def invalidate(self) -> None:
        """Bump every generation counter and drop every cached plan component.

        A full invalidation moves the running shard pool forward *in place*:
        the workers stay alive (their process state and shm snapshots
        survive) but every worker plan cache is dropped alongside the
        parent's.  Readers already pinned to older snapshots keep executing
        in-process from their pinned engines.  Only if the in-place update
        fails is the pool closed for a lazy rebuild.
        """
        with self._commit_lock:
            state = self._state
            new_state = _EngineState.build(
                state.generation + 1,
                state.database,
                state.causal_dag,
                self.config,
                {name: gen + 1 for name, gen in state.relation_generations.items()},
            )
            self._versions.commit(new_state, generation=new_state.generation)
            self.caches.clear()
            try:
                self._refresh_pool(new_state, frozenset(), clear_caches=True)
            except Exception:  # noqa: BLE001 - invalidate never raises
                # _refresh_pool already closed the pool; the next query
                # rebuilds it against the new state (the old behavior)
                logging.getLogger(__name__).warning(
                    "in-place pool invalidation failed; the pool was closed "
                    "and will rebuild lazily",
                    exc_info=True,
                )

    def update_database(self, database: Database) -> frozenset[str]:
        """Commit a new database snapshot with fine-grained invalidation.

        Relations are compared by object identity against the current
        snapshot: building the new database with
        ``service.database.with_relation(updated)`` (so unchanged relations
        are the *same* objects) bumps only the changed relations'
        generations, and only cache entries depending on them are evicted —
        estimators and views over untouched relations stay warm.  When no
        relation can be proven unchanged, everything is invalidated.

        The commit is MVCC: the new snapshot is installed atomically and
        in-flight readers keep their pinned (old) snapshot until they finish —
        they are never paused, never see a blend, and never observe a shard
        pool teardown (the running pool is moved forward in place, shipping
        only the changed relations to the workers).  A commit that changes
        nothing (every relation identical by identity) is a no-op: no
        generation bump, no cache eviction, and the pool stays untouched.

        Returns the set of relation names whose generation was bumped
        (empty for a no-op commit).
        """
        from dataclasses import replace as dataclass_replace

        with self._commit_lock:
            state = self._state
            new_state = _EngineState.build(
                state.generation + 1,
                database,
                state.causal_dag,
                self.config,
                dict(state.relation_generations),
            )
            # Diff against the backend-converted database the engines built,
            # so conversion no-ops keep relation identity intact.
            changed = {
                name
                for name in new_state.database.relation_names
                if name not in state.database
                or new_state.database[name] is not state.database[name]
            }
            changed |= set(state.database.relation_names) - set(
                new_state.database.relation_names
            )
            if not changed:
                self._m_noop_commits.inc()
                return frozenset()
            generations = dict(state.relation_generations)
            for name in changed:
                generations[name] = generations.get(name, 0) + 1
            new_state = dataclass_replace(new_state, relation_generations=generations)
            self._versions.commit(new_state, generation=new_state.generation)
            if changed >= set(state.database.relation_names) | set(
                new_state.database.relation_names
            ):
                self.caches.clear()
            else:
                # Targeted eviction: entries tagged with a changed relation
                # go, everything else (unrelated estimators, views,
                # candidates) stays.
                self.caches.evict_tagged(changed)
            self._refresh_pool(new_state, frozenset(changed))
            return frozenset(changed)

    def update_relation_columns(
        self, assignments: dict[str, dict[str, Any]]
    ) -> frozenset[str]:
        """Atomically overwrite columns: ``{relation: {attribute: values}}``.

        The read-modify-write runs under the commit lock, so concurrent
        callers (e.g. two ``/v1/update`` requests) serialize and neither can
        lose the other's columns.  Unnamed relations keep their identity, so
        the resulting :meth:`update_database` commit bumps only the relations
        named here.  Returns the changed-relation set.
        """
        with self._commit_lock:
            database = self.database
            for relation_name, columns in assignments.items():
                if relation_name not in database:
                    raise QuerySemanticsError(
                        f"unknown relation {relation_name!r}; database has "
                        f"{sorted(database.relation_names)}"
                    )
                relation = database[relation_name]
                for attribute, values in columns.items():
                    relation = relation.with_column(attribute, values)
                database = database.with_relation(relation)
            return self.update_database(database)

    def update_causal_dag(self, causal_dag: CausalDAG | None) -> None:
        """Swap in new causal background knowledge; invalidates cached state.

        The running shard pool is moved forward in place: workers receive
        the new DAG, rebuild their engines against it, and drop their plan
        caches — no process restart, no shm rebuild.  Only if the in-place
        update fails is the pool closed for a lazy rebuild.
        """
        with self._commit_lock:
            state = self._state
            new_state = _EngineState.build(
                state.generation + 1,
                state.database,
                causal_dag,
                self.config,
                {name: gen + 1 for name, gen in state.relation_generations.items()},
            )
            self._versions.commit(new_state, generation=new_state.generation)
            self.caches.clear()
            try:
                self._refresh_pool(
                    new_state, frozenset(), replace_dag=True, clear_caches=True
                )
            except Exception:  # noqa: BLE001 - mirrors invalidate()
                logging.getLogger(__name__).warning(
                    "in-place pool DAG swap failed; the pool was closed and "
                    "will rebuild lazily",
                    exc_info=True,
                )

    # -- instrumentation -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service counters plus per-cache and regressor-level statistics.

        ``regressors.fits``/``hits`` are monotonic totals over the service's
        life: counters of estimators evicted from the LRU (or dropped by an
        invalidation) are folded into running sums, not lost.  In
        ``processes`` mode, fits inside shard workers are *not* included —
        the per-worker caches live in other processes; ``pool`` reports the
        pool's own counters instead.
        """
        with self._retired_lock:
            regressor_fits = self._retired_regressor_fits
            regressor_hits = self._retired_regressor_hits
        regressors_cached = 0
        for estimator in self.caches.estimators.values():
            counters = estimator.regressor_cache_stats
            regressor_fits += counters["fits"]
            regressor_hits += counters["hits"]
            regressors_cached += counters["cached"]
        with self._pool_lock:
            pool_stats = self._pool.stats() if self._pool is not None else None
        serving = self.serving_signals()
        versions = self._versions.stats()
        latest = self._state
        versions["noop_commits"] = int(self._m_noop_commits.value)
        versions["pinned_fallbacks"] = int(self._m_pinned_fallbacks.value)
        return {
            "serving": serving,
            "generation": latest.generation,
            "relation_generations": dict(latest.relation_generations),
            "versions": versions,
            "execution": self.execution,
            "n_queries": int(self._m_queries.value),
            "n_batches": int(self._m_batches.value),
            "uptime_seconds": time.time() - self._started_at,
            "caches": self.caches.stats(),
            "regressors": {
                "fits": regressor_fits,
                "hits": regressor_hits,
                "cached": regressors_cached,
            },
            "pool": pool_stats,
            "slow_queries": {
                "entries": len(self.slow_log),
                "recorded": int(self._m_slow.value),
                "threshold_seconds": self.slow_log.threshold_seconds,
            },
            "clients": self.client_stats(),
            **(
                {"jobs": self.jobs.stats()}
                if self.jobs is not None
                else {}
            ),
        }
