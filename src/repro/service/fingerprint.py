"""Canonical logical-plan fingerprints for parsed HypeR queries.

A query's cost is dominated by work that depends only on its *structure*:
materialising the relevant view, projecting the causal DAG, choosing a
backdoor set and fitting regressors.  The *parameters* — update constants
("= 1.1 × PRE(Price)" vs "= 1.3 × PRE(Price)"), ``When``/``For`` literals —
only change cheap vectorized arithmetic at prediction time.  This module
separates the two so the service layer can reuse the expensive state:

* :attr:`PlanFingerprint.estimator_key` — identity of the fitted
  :class:`~repro.core.estimator.PostUpdateEstimator`: database generation
  (any hashable — the service passes the per-relation generation vector of
  the relations the plan reads, so an update to an unrelated relation leaves
  the key, and with it the cached estimator, intact),
  causal-DAG identity, ``Use`` specification, update/output attributes, the
  *structural* identity of the ``For`` clause (literals masked — they select
  regression targets, which the estimator disambiguates internally via
  :func:`repro.core.whatif.regressor_cache_key`) and the engine config.
  The ``When`` clause is deliberately absent: scope affects which rows are
  predicted, never what is fitted.  What-if and how-to queries with the same
  components share one estimator.
* :attr:`PlanFingerprint.plan_key` — the full logical plan: the estimator key
  plus kind, aggregate, the structural identity of every clause and the
  update-function shapes, all literals masked.
* :attr:`PlanFingerprint.parameter_key` — everything masked out above:
  update constants and clause literals.  ``(plan_key, parameter_key)``
  identifies the query exactly (the follow-on result cache keys on it).

All keys are nested tuples of plain hashable values, built from
:meth:`repro.relational.expressions.Expr.canonical` — never ``Expr`` objects,
whose ``==`` is overloaded to build comparison nodes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Hashable, Sequence

from ..causal.dag import CausalDAG
from ..core.config import EngineConfig
from ..core.queries import HowToQuery, LimitConstraint, WhatIfQuery
from ..core.updates import AttributeUpdate
from ..exceptions import QuerySemanticsError
from ..relational.expressions import LITERAL_SLOT, _key_value
from ..relational.view import UseSpec

__all__ = [
    "PlanFingerprint",
    "config_key",
    "dag_key",
    "fingerprint_query",
    "fingerprint_what_if",
    "fingerprint_how_to",
    "update_key",
    "use_key",
    "use_relations",
]


def dag_key(dag: CausalDAG | None) -> Hashable:
    """Stable identity of a causal DAG (nodes plus edges with markers)."""
    if dag is None:
        return ("dag", None)
    edges = tuple(
        sorted((e.source, e.target, e.cross_tuple, e.within or "") for e in dag.edges)
    )
    return ("dag", tuple(sorted(dag.nodes)), edges)


def use_relations(use: UseSpec) -> frozenset[str]:
    """The relations a ``Use`` specification reads (dependency tags).

    This is the dependency set behind fine-grained invalidation: views,
    estimators and candidate enumerations built from a plan depend on exactly
    these relations, so a database update touching none of them leaves the
    cached state valid.
    """
    relations = {use.base_relation}
    relations.update(agg.relation for agg in use.aggregated)
    relations.update(use.joins)
    return frozenset(relations)


def use_key(use: UseSpec) -> Hashable:
    """Stable identity of a ``Use`` specification (view name excluded)."""
    aggregated = tuple(
        (a.name, a.relation, a.attribute, a.how) for a in use.aggregated
    )
    joins = tuple(
        (other, tuple(condition)) for other, condition in sorted(use.joins.items())
    )
    attributes = tuple(use.attributes) if use.attributes is not None else None
    return ("use", use.base_relation, attributes, aggregated, joins)


def config_key(config: EngineConfig) -> Hashable:
    """Stable identity of an engine configuration."""
    return ("config",) + tuple(
        (f.name, _key_value(getattr(config, f.name))) for f in fields(config)
    )


def _function_params(function: Any, literals: bool) -> Hashable:
    if not literals:
        return LITERAL_SLOT
    if is_dataclass(function):
        return tuple(_key_value(getattr(function, f.name)) for f in fields(function))
    return repr(function)


def update_key(updates: Sequence[AttributeUpdate], literals: bool = True) -> Hashable:
    """Identity of an ``Update`` clause; ``literals=False`` masks the constants."""
    return tuple(
        (u.attribute, type(u.function).__name__, _function_params(u.function, literals))
        for u in updates
    )


def _limits_key(limits: Sequence[LimitConstraint], literals: bool) -> Hashable:
    out = []
    for limit in limits:
        if literals:
            values: Hashable = (
                limit.lower,
                limit.upper,
                _key_value(limit.allowed_values),
                limit.max_l1,
            )
        else:
            values = (
                limit.lower is not None,
                limit.upper is not None,
                None if limit.allowed_values is None else len(limit.allowed_values),
                limit.max_l1 is not None,
            )
        out.append((limit.attribute, values))
    return tuple(out)


@dataclass(frozen=True)
class PlanFingerprint:
    """Canonical identity of a query, split into shareable structure and parameters."""

    kind: str
    estimator_key: Hashable
    plan_key: Hashable
    parameter_key: Hashable

    @property
    def query_key(self) -> Hashable:
        """Exact query identity (plan plus parameters)."""
        return (self.plan_key, self.parameter_key)

    @property
    def digest(self) -> str:
        """Short stable hex digest of the plan structure, for logs and stats."""
        return hashlib.sha256(repr(self.plan_key).encode()).hexdigest()[:12]

    def same_plan(self, other: "PlanFingerprint") -> bool:
        return self.plan_key == other.plan_key


def fingerprint_what_if(
    query: WhatIfQuery,
    config: EngineConfig,
    *,
    generation: Hashable = 0,
    dag: CausalDAG | None = None,
    dag_identity: Hashable | None = None,
) -> PlanFingerprint:
    """Fingerprint a what-if query (see module docstring for the key split)."""
    dag_id = dag_identity if dag_identity is not None else dag_key(dag)
    cfg = config_key(config)
    for_structure = query.for_clause.canonical(literals=False)
    estimator_key = (
        "estimator",
        generation,
        dag_id,
        use_key(query.use),
        tuple(query.update_attributes),
        query.output_attribute,
        for_structure,
        cfg,
    )
    plan_key = (
        "what-if",
        estimator_key,
        query.output_aggregate,
        query.when.canonical(literals=False),
        update_key(query.updates, literals=False),
    )
    parameter_key = (
        update_key(query.updates, literals=True),
        query.when.canonical(literals=True),
        query.for_clause.canonical(literals=True),
    )
    return PlanFingerprint("what-if", estimator_key, plan_key, parameter_key)


def fingerprint_how_to(
    query: HowToQuery,
    config: EngineConfig,
    *,
    generation: Hashable = 0,
    dag: CausalDAG | None = None,
    dag_identity: Hashable | None = None,
) -> PlanFingerprint:
    """Fingerprint a how-to query.

    The estimator key matches the one a what-if query with the same ``Use``,
    update attributes, output attribute and ``For`` structure would produce,
    so both query families share fitted estimators through the service cache.
    """
    dag_id = dag_identity if dag_identity is not None else dag_key(dag)
    cfg = config_key(config)
    for_structure = query.for_clause.canonical(literals=False)
    estimator_key = (
        "estimator",
        generation,
        dag_id,
        use_key(query.use),
        tuple(query.update_attributes),
        query.objective_attribute,
        for_structure,
        cfg,
    )
    plan_key = (
        "how-to",
        estimator_key,
        query.objective_aggregate,
        query.maximize,
        query.max_updates,
        query.candidate_buckets,
        tuple(query.candidate_multipliers),
        query.when.canonical(literals=False),
        _limits_key(query.limits, literals=False),
    )
    parameter_key = (
        query.when.canonical(literals=True),
        query.for_clause.canonical(literals=True),
        _limits_key(query.limits, literals=True),
    )
    return PlanFingerprint("how-to", estimator_key, plan_key, parameter_key)


def fingerprint_query(
    query: WhatIfQuery | HowToQuery,
    config: EngineConfig,
    *,
    generation: Hashable = 0,
    dag: CausalDAG | None = None,
    dag_identity: Hashable | None = None,
) -> PlanFingerprint:
    """Fingerprint either query family (dispatch on the query type)."""
    if isinstance(query, WhatIfQuery):
        return fingerprint_what_if(
            query, config, generation=generation, dag=dag, dag_identity=dag_identity
        )
    if isinstance(query, HowToQuery):
        return fingerprint_how_to(
            query, config, generation=generation, dag=dag, dag_identity=dag_identity
        )
    raise QuerySemanticsError(
        f"cannot fingerprint query object of type {type(query).__name__}"
    )
