"""Concurrent batch execution of query suites (thread mode).

``execute_many`` on :class:`~repro.service.session.HypeRService` delegates
here in ``execution="threads"`` mode (``execution="processes"`` routes to the
shard worker pool in :mod:`repro.shard.pool` instead — pick processes when
CPU-bound regressor fits dominate and the GIL is the bottleneck, threads when
the working set is cache-hot and fits are amortised).  The executor:

1. fingerprints every query and groups the batch by estimator key, so all
   parameter variants of one logical plan share state;
2. warms one plan per group (view materialisation, estimator construction;
   concurrently across groups) so the fan-out starts from a populated cache;
3. fans the individual queries out across a ``ThreadPoolExecutor``.  The
   heavy lifting inside a query — regression fitting and prediction, mask
   evaluation — happens in NumPy kernels that release the GIL, so threads
   give real parallelism without pickling the database into subprocesses.

Shared mutable state is protected at the source: the per-estimator regressor
cache fits per-key single-flight (each shared regressor is fitted exactly
once even when many workers need it simultaneously), and `Relation.columnar_store`
materialises its typed columns under a lock.  Results are returned in input
order; the first failing query propagates its exception after the pool
drains.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Hashable, Sequence

from ..core.queries import HowToQuery, WhatIfQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import HypeRService

__all__ = ["BatchExecutor", "default_max_workers"]


def default_max_workers() -> int:
    """A conservative thread count: the CPU count, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class BatchExecutor:
    """Groups a query batch by plan fingerprint and executes it on a thread pool."""

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    def run(
        self,
        session: "HypeRService",
        queries: Sequence[WhatIfQuery | HowToQuery | Exception],
        *,
        return_errors: bool = False,
    ) -> list:
        """Execute ``queries`` against ``session``, preserving input order.

        Entries that are already ``Exception`` instances (failed parses
        captured by the caller) are passed through as results.  With
        ``return_errors=True`` a failing query contributes its exception to
        the result list instead of discarding the rest of the batch; with the
        default, the first failure propagates after the pool drains.
        """
        if not queries:
            return []
        runnable = [
            (index, query)
            for index, query in enumerate(queries)
            if not isinstance(query, Exception)
        ]
        groups: dict[Hashable, list[int]] = {}
        for index, query in runnable:
            fingerprint = session.fingerprint(query)
            groups.setdefault(fingerprint.estimator_key, []).append(index)

        def warm_one(query):
            try:
                session.prepare(query)
            except Exception:  # noqa: BLE001 - surfaced per query, attributed
                pass

        def run_one(query):
            try:
                return session.execute(query)
            except Exception as error:  # noqa: BLE001 - captured per query
                return error

        results: list = list(queries)  # Exception entries stay in place
        workers = self.max_workers or default_max_workers()
        workers = max(1, min(workers, len(runnable) or 1))
        if workers == 1:
            for indices in groups.values():
                warm_one(queries[indices[0]])
            for index, query in runnable:
                results[index] = run_one(query)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # Warm one plan per group (concurrently — the caches'
                # per-key single-flight makes each build exactly-once) so
                # every shared view/estimator exists before the fan-out.
                for future in [
                    pool.submit(warm_one, queries[indices[0]])
                    for indices in groups.values()
                ]:
                    future.result()
                futures = [
                    (index, pool.submit(run_one, query)) for index, query in runnable
                ]
                for index, future in futures:
                    results[index] = future.result()
        if not return_errors:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results
