"""Multi-version concurrency control for the query service.

:class:`VersionStore` keeps the service's immutable per-generation engine
snapshots under MVCC semantics: a *commit* installs a new latest snapshot
atomically, while every in-flight query *pins* the snapshot it started on and
keeps reading it until it finishes — a commit never pauses readers and a
reader never observes a mix of two generations.  Snapshots are refcounted;
a superseded snapshot is *retired* (its engine state released) the moment its
last pinned reader unpins, so long-running readers bound memory to the
handful of generations they actually straddle.

The store is deliberately generic — it versions any immutable state object —
so the snapshot-isolation property it provides can be checked black-box by
the recorded-history harness in ``tests/isolation`` (in the style of
"Efficient Black-box Checking of Snapshot Isolation in Databases"): every
answer must be bitwise explainable by exactly one committed snapshot, reads
within a session must be monotonic, and no reader may ever see a torn
(half-committed) generation vector.

Typical use (this is what :class:`~repro.service.session.HypeRService` does)::

    store = VersionStore(initial_state)
    with store.pin() as snapshot:        # reader: pin-at-begin
        answer = evaluate(snapshot.state)
    store.commit(new_state)              # writer: atomic install, no pauses
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from ..obs import trace as obs_trace

__all__ = ["Snapshot", "VersionStore"]


class Snapshot:
    """One committed, immutable version of the service's engine state.

    ``state`` is the payload (the service's ``_EngineState``); ``generation``
    is its monotonically increasing commit number.  The refcount counts
    readers currently pinned to this snapshot; once the snapshot is
    superseded *and* unpinned it is retired — ``state`` is released so the
    databases and fitted engines of dead generations do not accumulate.
    """

    __slots__ = ("generation", "state", "refcount", "retired", "superseded")

    def __init__(self, generation: int, state: Any) -> None:
        self.generation = generation
        self.state = state
        self.refcount = 0
        self.retired = False
        self.superseded = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "retired" if self.retired else ("old" if self.superseded else "latest")
        return f"Snapshot(gen={self.generation}, refs={self.refcount}, {status})"


class VersionStore:
    """Refcounted multi-version snapshot store with atomic commits.

    Invariants (the ones the isolation checker verifies from outside):

    * :meth:`pin` returns the latest committed snapshot at some instant
      within the call — never a superseded-and-retired one, never a blend;
    * :meth:`commit` swaps the latest snapshot atomically and *never* blocks
      on readers — in-flight pins keep their snapshot alive until unpinned;
    * generations are strictly increasing, so per-session reads that pin at
      begin are automatically monotonic.

    ``on_retire`` (if given) is called with each snapshot right after its
    state is released — the service uses it to free the retired generation's
    shared-memory segments (and for instrumentation); it runs under the store
    lock and must not call back into the store.
    """

    def __init__(
        self,
        initial_state: Any,
        *,
        generation: int = 0,
        on_retire: Callable[[Snapshot], None] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._latest = Snapshot(generation, initial_state)
        self.on_retire = on_retire
        self._n_commits = 0
        self._n_retired = 0
        self._live: dict[int, Snapshot] = {self._latest.generation: self._latest}
        self._peak_live = 1
        self._peak_pinned = 0

    # -- readers -----------------------------------------------------------------------

    @property
    def latest(self) -> Snapshot:
        """The current latest snapshot (unpinned peek; may be superseded next)."""
        with self._lock:
            return self._latest

    def acquire(self) -> Snapshot:
        """Pin the latest snapshot (incref); pair with :meth:`release`."""
        with self._lock:
            snapshot = self._latest
            snapshot.refcount += 1
            pinned = sum(s.refcount for s in self._live.values())
            if pinned > self._peak_pinned:
                self._peak_pinned = pinned
            return snapshot

    def release(self, snapshot: Snapshot) -> None:
        """Unpin ``snapshot``; retires it if superseded and no reader remains."""
        with self._lock:
            snapshot.refcount -= 1
            if snapshot.refcount < 0:  # pragma: no cover - misuse guard
                raise RuntimeError(
                    f"snapshot generation {snapshot.generation} released more often "
                    "than acquired"
                )
            self._retire_if_dead(snapshot)

    @contextmanager
    def pin(self) -> Iterator[Snapshot]:
        """Context manager: pin the latest snapshot for the block's duration."""
        snapshot = self.acquire()
        try:
            yield snapshot
        finally:
            self.release(snapshot)

    # -- writers -----------------------------------------------------------------------

    def commit(self, state: Any, *, generation: int | None = None) -> Snapshot:
        """Atomically install ``state`` as the new latest snapshot.

        Readers pinned to older snapshots are untouched; the superseded
        snapshot is retired immediately when nothing is pinned to it,
        otherwise on its last :meth:`release`.  ``generation`` defaults to
        the previous latest plus one and must be strictly increasing.
        """
        # span is a no-op unless the caller's request is being traced (e.g.
        # /v1/update?trace=1); it deliberately wraps the whole critical section
        # so the trace shows commit-lock contention, not just the swap.
        with obs_trace.span("mvcc.commit") as commit_span, self._lock:
            previous = self._latest
            if generation is None:
                generation = previous.generation + 1
            if generation <= previous.generation:
                raise ValueError(
                    f"commit generation {generation} is not after the latest "
                    f"generation {previous.generation}"
                )
            snapshot = Snapshot(generation, state)
            self._latest = snapshot
            self._live[generation] = snapshot
            previous.superseded = True
            self._n_commits += 1
            self._retire_if_dead(previous)
            if len(self._live) > self._peak_live:
                self._peak_live = len(self._live)
            if commit_span is not None:
                commit_span.meta["generation"] = generation
            return snapshot

    # -- internals ---------------------------------------------------------------------

    def _retire_if_dead(self, snapshot: Snapshot) -> None:
        """Release a superseded, unpinned snapshot's state (lock held)."""
        if snapshot.retired or not snapshot.superseded or snapshot.refcount > 0:
            return
        with obs_trace.span("mvcc.retire", generation=snapshot.generation):
            snapshot.retired = True
            snapshot.state = None
            self._live.pop(snapshot.generation, None)
            self._n_retired += 1
            if self.on_retire is not None:
                self.on_retire(snapshot)

    # -- introspection -----------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for :meth:`HypeRService.stats`'s ``versions`` section."""
        with self._lock:
            return {
                "latest_generation": self._latest.generation,
                "commits": self._n_commits,
                "retired": self._n_retired,
                "live_snapshots": len(self._live),
                "pinned_readers": sum(s.refcount for s in self._live.values()),
                "peak_live_snapshots": self._peak_live,
                "peak_pinned_readers": self._peak_pinned,
            }
