"""Optimization substrate: integer-program models and solvers.

Provides the 0/1 integer program representation and solvers backing HypeR's
how-to queries (Section 4.3): a branch-and-bound over scipy LP relaxations and
an exhaustive enumerator used as a correctness oracle and as the basis of the
Opt-HowTo baseline.
"""

from .model import Constraint, IntegerProgram, LinearExpression, Variable
from .solution import Solution, SolveStatus
from .solver import BranchAndBoundSolver, ExhaustiveSolver, solve_integer_program

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "ExhaustiveSolver",
    "IntegerProgram",
    "LinearExpression",
    "Solution",
    "SolveStatus",
    "Variable",
    "solve_integer_program",
]
