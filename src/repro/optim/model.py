"""Linear (integer) program model objects.

The how-to engine (Section 4.3) casts the search over candidate updates as a
0/1 integer program: one indicator variable per candidate update value per
attribute, at-most-one constraints per attribute, extra linear constraints from
the ``Limit`` operator, and a linearised objective.  These classes give that IP
an explicit, solver-independent representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..exceptions import OptimizationError

__all__ = ["Variable", "LinearExpression", "Constraint", "IntegerProgram"]


@dataclass(frozen=True)
class Variable:
    """A decision variable with bounds; ``integer=True`` restricts it to integers."""

    name: str
    lower: float = 0.0
    upper: float = 1.0
    integer: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise OptimizationError("variables need non-empty names")
        if self.lower > self.upper:
            raise OptimizationError(
                f"variable {self.name!r} has lower bound {self.lower} > upper bound {self.upper}"
            )


@dataclass
class LinearExpression:
    """A linear expression ``sum_i coeff_i * x_i + constant``."""

    coefficients: dict[str, float] = field(default_factory=dict)
    constant: float = 0.0

    @classmethod
    def from_terms(cls, terms: Mapping[str, float], constant: float = 0.0) -> "LinearExpression":
        return cls({k: float(v) for k, v in terms.items() if v != 0.0}, float(constant))

    def add_term(self, variable: str, coefficient: float) -> "LinearExpression":
        self.coefficients[variable] = self.coefficients.get(variable, 0.0) + float(coefficient)
        if self.coefficients[variable] == 0.0:
            del self.coefficients[variable]
        return self

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        total = self.constant
        for variable, coefficient in self.coefficients.items():
            if variable not in assignment:
                raise OptimizationError(f"assignment is missing variable {variable!r}")
            total += coefficient * assignment[variable]
        return total

    def __add__(self, other: "LinearExpression") -> "LinearExpression":
        merged = dict(self.coefficients)
        for variable, coefficient in other.coefficients.items():
            merged[variable] = merged.get(variable, 0.0) + coefficient
        return LinearExpression(merged, self.constant + other.constant)

    def scaled(self, factor: float) -> "LinearExpression":
        return LinearExpression(
            {k: v * factor for k, v in self.coefficients.items()}, self.constant * factor
        )

    def variables(self) -> set[str]:
        return set(self.coefficients)


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expression <sense> rhs`` with sense in {<=, >=, ==}."""

    expression: LinearExpression
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise OptimizationError(f"unknown constraint sense {self.sense!r}")

    def satisfied_by(self, assignment: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        value = self.expression.evaluate(assignment)
        if self.sense == "<=":
            return value <= self.rhs + tolerance
        if self.sense == ">=":
            return value >= self.rhs - tolerance
        return abs(value - self.rhs) <= tolerance


class IntegerProgram:
    """A (mixed) integer linear program with a single linear objective."""

    def __init__(self, name: str = "howto-ip") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self.constraints: list[Constraint] = []
        self.objective: LinearExpression = LinearExpression()
        self.maximize: bool = True

    # -- construction -----------------------------------------------------------

    def add_variable(
        self,
        name: str,
        *,
        lower: float = 0.0,
        upper: float = 1.0,
        integer: bool = True,
    ) -> Variable:
        if name in self._variables:
            raise OptimizationError(f"variable {name!r} already exists")
        variable = Variable(name, lower, upper, integer)
        self._variables[name] = variable
        return variable

    def add_binary(self, name: str) -> Variable:
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_constraint(
        self,
        expression: LinearExpression | Mapping[str, float],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        if not isinstance(expression, LinearExpression):
            expression = LinearExpression.from_terms(expression)
        unknown = expression.variables() - set(self._variables)
        if unknown:
            raise OptimizationError(f"constraint references unknown variables {sorted(unknown)}")
        constraint = Constraint(expression, sense, float(rhs), name)
        self.constraints.append(constraint)
        return constraint

    def set_objective(
        self,
        expression: LinearExpression | Mapping[str, float],
        *,
        maximize: bool = True,
        constant: float = 0.0,
    ) -> None:
        if not isinstance(expression, LinearExpression):
            expression = LinearExpression.from_terms(expression, constant)
        unknown = expression.variables() - set(self._variables)
        if unknown:
            raise OptimizationError(f"objective references unknown variables {sorted(unknown)}")
        self.objective = expression
        self.maximize = maximize

    # -- introspection ------------------------------------------------------------

    @property
    def variables(self) -> dict[str, Variable]:
        return dict(self._variables)

    @property
    def variable_names(self) -> list[str]:
        return list(self._variables)

    @property
    def n_variables(self) -> int:
        return len(self._variables)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    def is_feasible(self, assignment: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        for name, variable in self._variables.items():
            if name not in assignment:
                return False
            value = assignment[name]
            if value < variable.lower - tolerance or value > variable.upper + tolerance:
                return False
            if variable.integer and abs(value - round(value)) > tolerance:
                return False
        return all(c.satisfied_by(assignment, tolerance) for c in self.constraints)

    def objective_value(self, assignment: Mapping[str, float]) -> float:
        return self.objective.evaluate(assignment)

    # -- matrix form (consumed by the LP relaxation) --------------------------------

    def matrix_form(self) -> dict:
        """Return numpy arrays in the form expected by ``scipy.optimize.linprog``."""
        order = self.variable_names
        index = {name: i for i, name in enumerate(order)}
        c = np.zeros(len(order))
        for variable, coefficient in self.objective.coefficients.items():
            c[index[variable]] = coefficient
        a_ub_rows, b_ub, a_eq_rows, b_eq = [], [], [], []
        for constraint in self.constraints:
            row = np.zeros(len(order))
            for variable, coefficient in constraint.expression.coefficients.items():
                row[index[variable]] = coefficient
            rhs = constraint.rhs - constraint.expression.constant
            if constraint.sense == "<=":
                a_ub_rows.append(row)
                b_ub.append(rhs)
            elif constraint.sense == ">=":
                a_ub_rows.append(-row)
                b_ub.append(-rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(rhs)
        bounds = [(self._variables[name].lower, self._variables[name].upper) for name in order]
        return {
            "order": order,
            "c": c,
            "A_ub": np.array(a_ub_rows) if a_ub_rows else None,
            "b_ub": np.array(b_ub) if b_ub else None,
            "A_eq": np.array(a_eq_rows) if a_eq_rows else None,
            "b_eq": np.array(b_eq) if b_eq else None,
            "bounds": bounds,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IntegerProgram({self.name!r}, {self.n_variables} vars, "
            f"{self.n_constraints} constraints, {'max' if self.maximize else 'min'})"
        )
