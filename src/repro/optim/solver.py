"""Integer-program solvers: branch-and-bound over LP relaxations, plus exhaustive.

The paper hands its how-to IP to "existing IP solvers"; this module is the
from-scratch stand-in.  :class:`BranchAndBoundSolver` solves the LP relaxation
with scipy's HiGHS backend and branches on fractional integer variables;
:class:`ExhaustiveSolver` enumerates every 0/1 assignment and is both the
correctness oracle for the branch-and-bound in the tests and the Opt-HowTo
baseline building block in the experiments.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..exceptions import ConvergenceError, OptimizationError
from .model import IntegerProgram
from .solution import Solution, SolveStatus

__all__ = ["BranchAndBoundSolver", "ExhaustiveSolver", "solve_integer_program"]


@dataclass
class _LPResult:
    feasible: bool
    objective: float = float("inf")
    values: np.ndarray | None = None


@dataclass
class BranchAndBoundSolver:
    """Best-first branch-and-bound for (mixed) 0/1 integer programs.

    ``max_nodes`` bounds the search; exceeding it raises
    :class:`ConvergenceError` unless an incumbent exists, in which case the
    incumbent is returned with status ``FEASIBLE``.
    """

    max_nodes: int = 10_000
    tolerance: float = 1e-6

    def solve(self, program: IntegerProgram) -> Solution:
        matrices = program.matrix_form()
        order = matrices["order"]
        if not order:
            return Solution(status=SolveStatus.OPTIMAL, objective=program.objective.constant, assignment={})
        sign = -1.0 if program.maximize else 1.0
        c = sign * matrices["c"]
        integer_mask = np.array([program.variables[name].integer for name in order])

        incumbent_value = math.inf
        incumbent_values: np.ndarray | None = None
        nodes_explored = 0

        def lp_relaxation(bounds: list[tuple[float, float]]) -> _LPResult:
            result = linprog(
                c,
                A_ub=matrices["A_ub"],
                b_ub=matrices["b_ub"],
                A_eq=matrices["A_eq"],
                b_eq=matrices["b_eq"],
                bounds=bounds,
                method="highs",
            )
            if not result.success:
                return _LPResult(feasible=False)
            return _LPResult(feasible=True, objective=float(result.fun), values=result.x)

        # Best-first search keyed by the LP bound.
        root_bounds = list(matrices["bounds"])
        root = lp_relaxation(root_bounds)
        if not root.feasible:
            return Solution(status=SolveStatus.INFEASIBLE)
        frontier: list[tuple[float, int, list[tuple[float, float]], _LPResult]] = [
            (root.objective, 0, root_bounds, root)
        ]
        counter = itertools.count(1)

        while frontier:
            frontier.sort(key=lambda item: item[0])
            bound, _, bounds, relaxed = frontier.pop(0)
            nodes_explored += 1
            if nodes_explored > self.max_nodes:
                if incumbent_values is not None:
                    break
                raise ConvergenceError(
                    f"branch-and-bound exceeded max_nodes={self.max_nodes} with no incumbent"
                )
            if bound >= incumbent_value - self.tolerance:
                continue  # cannot improve on the incumbent
            assert relaxed.values is not None
            fractional = self._most_fractional(relaxed.values, integer_mask)
            if fractional is None:
                # Integral solution: candidate incumbent.
                if relaxed.objective < incumbent_value - self.tolerance:
                    incumbent_value = relaxed.objective
                    incumbent_values = relaxed.values.copy()
                continue
            index, value = fractional
            for low, high in (
                (bounds[index][0], math.floor(value)),
                (math.ceil(value), bounds[index][1]),
            ):
                if low > high:
                    continue
                child_bounds = list(bounds)
                child_bounds[index] = (low, high)
                child = lp_relaxation(child_bounds)
                if child.feasible and child.objective < incumbent_value - self.tolerance:
                    frontier.append((child.objective, next(counter), child_bounds, child))

        if incumbent_values is None:
            return Solution(status=SolveStatus.INFEASIBLE, n_nodes_explored=nodes_explored)
        assignment = {
            name: (round(v) if integer_mask[i] else float(v))
            for i, (name, v) in enumerate(zip(order, incumbent_values))
        }
        objective = program.objective_value(assignment)
        status = (
            SolveStatus.OPTIMAL if nodes_explored <= self.max_nodes else SolveStatus.FEASIBLE
        )
        return Solution(
            status=status,
            objective=objective,
            assignment=assignment,
            n_nodes_explored=nodes_explored,
        )

    def _most_fractional(
        self, values: np.ndarray, integer_mask: np.ndarray
    ) -> tuple[int, float] | None:
        best_index = None
        best_distance = self.tolerance
        for i, value in enumerate(values):
            if not integer_mask[i]:
                continue
            distance = abs(value - round(value))
            if distance > best_distance:
                best_distance = distance
                best_index = i
        if best_index is None:
            return None
        return best_index, float(values[best_index])


@dataclass
class ExhaustiveSolver:
    """Brute-force enumeration of all integral assignments (small programs only)."""

    max_assignments: int = 2_000_000

    def solve(self, program: IntegerProgram) -> Solution:
        order = program.variable_names
        value_ranges: list[list[float]] = []
        total = 1
        for name in order:
            variable = program.variables[name]
            if not variable.integer:
                raise OptimizationError(
                    "ExhaustiveSolver only handles pure integer programs"
                )
            values = [float(v) for v in range(int(variable.lower), int(variable.upper) + 1)]
            value_ranges.append(values)
            total *= len(values)
            if total > self.max_assignments:
                raise OptimizationError(
                    f"exhaustive enumeration would visit {total}+ assignments "
                    f"(> {self.max_assignments})"
                )
        best_value = -math.inf if program.maximize else math.inf
        best_assignment: dict[str, float] | None = None
        explored = 0
        for combo in itertools.product(*value_ranges) if order else [()]:
            explored += 1
            assignment = dict(zip(order, combo))
            if not program.is_feasible(assignment):
                continue
            value = program.objective_value(assignment)
            better = value > best_value if program.maximize else value < best_value
            if better:
                best_value = value
                best_assignment = assignment
        if best_assignment is None:
            return Solution(status=SolveStatus.INFEASIBLE, n_nodes_explored=explored)
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=best_value,
            assignment=best_assignment,
            n_nodes_explored=explored,
        )


def solve_integer_program(
    program: IntegerProgram, *, method: str = "branch-and-bound", **kwargs
) -> Solution:
    """Convenience front-end choosing a solver by name."""
    if method in ("branch-and-bound", "bnb"):
        return BranchAndBoundSolver(**kwargs).solve(program)
    if method in ("exhaustive", "enumerate"):
        return ExhaustiveSolver(**kwargs).solve(program)
    raise OptimizationError(f"unknown solve method {method!r}")
