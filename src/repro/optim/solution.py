"""Solver results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(Enum):
    """Terminal state of a solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # a feasible incumbent was found but optimality is unproven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class Solution:
    """Result of solving an integer program."""

    status: SolveStatus
    objective: float = float("nan")
    assignment: Mapping[str, float] = field(default_factory=dict)
    n_nodes_explored: int = 0
    gap: float = 0.0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, variable: str) -> float:
        return float(self.assignment[variable])

    def selected(self, threshold: float = 0.5) -> list[str]:
        """Names of binary variables set to 1 (useful for indicator formulations)."""
        return [name for name, value in self.assignment.items() if value > threshold]
