"""A persistent multiprocessing pool of shard workers (stdlib only).

Each worker process owns one :class:`~repro.shard.partition.Shard` for the
pool's whole lifetime — the shard (including the full database snapshot) is
transferred **once** at start-up (by copy-on-write under the ``fork`` start
method, by pickle under ``spawn``), never per query.  Queries travel to every
worker as small pickled task messages; per-row contribution partials travel
back and are folded by the merge protocol (:mod:`repro.shard.merge`).
Database commits move the running workers forward *in place*
(:meth:`ShardPool.apply_update`): only the changed relations and re-shaped
ownership masks cross the process boundary, and the workers' plan caches for
untouched relations stay warm — the pool is never restarted for an update.

Inside a worker, a :class:`ShardWorkerRuntime` keeps the same kind of
plan-level caches the thread-mode service keeps in-process: materialised
relevant views, fitted estimators (each with its internal regressor cache) and
how-to candidate enumerations, keyed by plan fingerprints.  Repeated-template
workloads therefore pay the estimator fit once *per worker* and pure
prediction afterwards — CPU-bound fits run truly in parallel across processes,
which is the scaling step the GIL denies the thread-pool executor.

When worker processes cannot be started (no usable ``multiprocessing`` start
method, sandboxed semaphores, pickling failure), the pool degrades to an
*inline* mode that runs the identical shard protocol sequentially in-process;
``mode`` reports which one is active, and answers are bitwise identical either
way.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import threading
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..causal.dag import CausalDAG
from ..core.config import EngineConfig, Variant
from ..core.howto import HowToEngine
from ..core.queries import HowToQuery, WhatIfQuery
from ..core.whatif import WhatIfEngine
from ..exceptions import HypeRError
from ..obs import trace as obs_trace
from ..relational.aggregates import get_aggregate
from ..relational.columnar import (
    Column,
    ColumnStore,
    KernelCache,
    store_from_buffers,
    store_to_buffers,
)
from ..relational.database import Database
from ..relational.predicates import evaluate_mask
from ..relational.relation import Relation
from ..service.fingerprint import dag_key, fingerprint_query, use_relations
from .merge import (
    HowToShardPartial,
    WhatIfShardPartial,
    merge_how_to,
    merge_what_if,
    solve_merged_how_to,
)
from .partition import Shard, ShardPlan
from .shm import (
    SegmentAttachment,
    SegmentManager,
    decode_database,
    encode_database,
    resolve_buffers,
    ship_buffers,
    shm_available,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import HowToResult, WhatIfResult

__all__ = ["ShardPool", "ShardPoolError", "ShardWorkerRuntime"]

_JOIN_TIMEOUT_SECONDS = 5.0
_POLL_SECONDS = 0.2


class ShardPoolError(HypeRError):
    """A shard worker failed or the pool is not in a runnable state."""


class ShardWorkerRuntime:
    """Per-shard evaluation engine with plan-level caches (runs inside a worker).

    The runtime is deliberately free of any parent-process state: it is
    constructed from ``(shard, causal_dag, config)`` alone, so the same class
    backs both real worker processes and the inline fallback.
    """

    def __init__(
        self,
        shard: Shard,
        causal_dag: CausalDAG | None,
        config: EngineConfig,
        *,
        attachment: SegmentAttachment | None = None,
    ) -> None:
        self.shard = shard
        self.config = config
        self.causal_dag = causal_dag
        self.attachment = attachment
        self.whatif = WhatIfEngine(shard.database, causal_dag, config)
        # Share the (possibly backend-converted) database between both engines.
        self.howto = HowToEngine(self.whatif.database, causal_dag, config)
        self._dag_identity = dag_key(causal_dag)
        # Bounded like the parent-side QueryCaches: a persistent worker
        # serving many distinct plans must not grow without limit.
        from ..service.cache import LRUCache

        self._views = LRUCache(16, "worker-views")
        self._local_views = LRUCache(16, "worker-local-views")
        self._block_assignments = LRUCache(16, "worker-blocks")
        self._estimators = LRUCache(64, "worker-estimators")
        self._candidates = LRUCache(64, "worker-candidates")
        # Per-plan fused-kernel caches (repro.relational.columnar.KernelCache):
        # every deterministic intermediate that parameter variants of one plan
        # share — masks, output columns, index sets, encoded design blocks.
        self._kernels = LRUCache(16, "worker-kernels")
        self.n_tasks = 0
        self.n_estimator_builds = 0

    # -- cached plan components ---------------------------------------------------------

    def _fingerprint(self, query: WhatIfQuery | HowToQuery):
        return fingerprint_query(
            query, self.config, generation=0, dag_identity=self._dag_identity
        )

    def _view(self, query: WhatIfQuery | HowToQuery) -> tuple:
        from ..core.estimator import build_view_dag
        from ..service.fingerprint import use_key

        return self._views.get_or_create(
            use_key(query.use),
            lambda: (
                query.use.build(self.whatif.database),
                build_view_dag(self.causal_dag, query.use, self.whatif.database),
            ),
            tags=use_relations(query.use),
        )

    def _estimator(
        self, key: Any, build: Callable[[], Any], tags: Sequence[Any] = ()
    ) -> Any:
        def counted_build():
            self.n_estimator_builds += 1
            return build()

        return self._estimators.get_or_create(key, counted_build, tags=tags)

    def _row_mask(self, query: WhatIfQuery | HowToQuery, view) -> np.ndarray:
        mask = self.shard.own_rows(query.use.base_relation)
        if len(mask) != len(view):
            raise ShardPoolError(
                f"shard row mask over {query.use.base_relation!r} has {len(mask)} rows "
                f"but the relevant view has {len(view)} — the shard snapshot is stale"
            )
        return mask

    def _local_view(self, query: WhatIfQuery | HowToQuery, view) -> Relation:
        """The full view filtered to this shard's rows (cached per plan)."""
        from ..service.fingerprint import use_key

        return self._local_views.get_or_create(
            use_key(query.use), lambda: view.filter(self._row_mask(query, view))
        )

    def _block_assignment(
        self, query: WhatIfQuery, view
    ) -> tuple[np.ndarray, int]:
        """Full-view block labels for shard-0 carriers (cached per plan).

        Returning the *same* cached array for every query of a plan lets
        pickle's memoizer serialise it once per batch message.
        """
        from ..service.fingerprint import use_key

        return self._block_assignments.get_or_create(
            use_key(query.use),
            lambda: self.whatif._block_assignment(
                query, view, (self.shard.block_labels, self.shard.n_blocks)
            ),
        )

    # -- task handlers ------------------------------------------------------------------

    def handle(self, kind: str, payload: Any) -> Any:
        """Serve one task, stamping a worker span onto the outgoing payload.

        The span is a plain dict inside the partial's ``meta`` (or a result's
        ``metadata``), so it crosses the pickling boundary with the payload it
        times; the parent pool pops it back out — *always*, traced or not, so
        merged answers stay bitwise identical to the unsharded path — and
        re-attaches it to the live trace via :func:`repro.obs.trace.add_span`.
        """
        self.n_tasks += 1
        builds_before = self.n_estimator_builds
        started = time.perf_counter()
        out = self._dispatch(kind, payload)
        elapsed = time.perf_counter() - started
        meta = getattr(out, "meta", None)
        if not isinstance(meta, dict):
            meta = getattr(out, "metadata", None)
        if isinstance(meta, dict):
            meta["worker_span"] = {
                "name": f"shard-worker[{self.shard.index}]",
                "duration_ms": round(elapsed * 1000.0, 6),
                "meta": {
                    "shard": self.shard.index,
                    "kind": kind,
                    "estimator_builds": self.n_estimator_builds - builds_before,
                },
                "children": [],
            }
        return out

    def _dispatch(self, kind: str, payload: Any) -> Any:
        if kind == "whatif":
            return self.what_if_partial(payload)
        if kind == "howto":
            return self.how_to_partial(payload)
        if kind == "howto_verify":
            query, chosen_indices = payload
            return self.how_to_verify(query, chosen_indices)
        if kind == "full":
            query, exhaustive = payload
            return self.run_full(query, exhaustive)
        if kind == "batch":
            out = []
            for sub_kind, sub_payload in payload:
                try:
                    out.append((True, self.handle(sub_kind, sub_payload)))
                except Exception as error:  # noqa: BLE001 - per-subtask capture
                    out.append((False, _describe_error(error)))
            return out
        if kind == "update":
            return self.apply_update(payload)
        if kind == "ping":
            return {"shard": self.shard.index, "n_tasks": self.n_tasks}
        raise ShardPoolError(f"unknown shard task kind {kind!r}")

    def apply_update(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Move this worker's shard snapshot to a new generation in place.

        ``payload`` carries only the delta the parent diffed for this shard:
        the changed/added relations, removed relation names, the new relation
        order and foreign keys, and whichever row masks / block labels
        actually differ.  Unchanged relations are reused from the current
        snapshot, so the rebuilt engines see value-identical training data
        and merged answers stay bitwise equal to the unsharded path.  Plan
        caches tagged with a changed relation are evicted; the row-geometry
        caches (local views, block assignments) are dropped wholesale because
        a commit can re-shape ownership masks even over unchanged relations.

        Two optional keys extend the delta beyond relation data:
        ``replace_dag``/``causal_dag`` swap the worker's causal background
        knowledge in place (engines are rebuilt against it), and
        ``clear_caches`` drops every plan cache regardless of tags — together
        they let a full invalidation or a DAG swap move the pool forward
        without restarting worker processes.
        """
        old_database = self.whatif.database
        changed_relations: dict[str, Relation] = dict(payload["changed"])
        for delta in payload.get("deltas", ()):
            changed_relations[delta["name"]] = self._apply_relation_delta(
                old_database[delta["name"]], delta
            )
        removed: set[str] = set(payload["removed"])
        relations = [
            changed_relations[name] if name in changed_relations else old_database[name]
            for name in payload["relation_names"]
        ]
        database = Database(relations, foreign_keys=payload["foreign_keys"])
        row_masks = {
            name: mask
            for name, mask in self.shard.row_masks.items()
            if name not in removed
        }
        row_masks.update(payload["row_masks"])
        labels = {
            name: arr
            for name, arr in self.shard.block_labels.items()
            if name not in removed
        }
        labels.update(payload["block_labels"])
        shard_of_block = payload["shard_of_block"]
        if shard_of_block is None:
            shard_of_block = self.shard.shard_of_block
        self.shard = Shard(
            index=self.shard.index,
            n_shards=self.shard.n_shards,
            database=database,
            row_masks=row_masks,
            block_labels=labels,
            n_blocks=payload["n_blocks"],
            shard_of_block=shard_of_block,
        )
        if payload.get("replace_dag"):
            self.causal_dag = payload["causal_dag"]
            self._dag_identity = dag_key(self.causal_dag)
        self.whatif = WhatIfEngine(database, self.causal_dag, self.config)
        self.howto = HowToEngine(self.whatif.database, self.causal_dag, self.config)
        if payload.get("clear_caches"):
            evicted = len(self._views) + len(self._estimators) + len(self._candidates)
            self._views.clear()
            self._estimators.clear()
            self._candidates.clear()
        else:
            dirty = set(changed_relations) | removed
            evicted = self._views.evict_tagged(dirty)
            evicted += self._estimators.evict_tagged(dirty)
            evicted += self._candidates.evict_tagged(dirty)
        self._local_views.clear()
        self._block_assignments.clear()
        # Kernel caches hold row-geometry-dependent arrays (masks, index sets)
        # even for plans over untouched relations; drop them wholesale like
        # the local views.
        self._kernels.clear()
        return {"shard": self.shard.index, "evicted": evicted}

    def _apply_relation_delta(self, old: Relation, delta: dict[str, Any]) -> Relation:
        """Rebuild a relation from its previous generation plus a block patch.

        ``delta`` carries the new values of the changed rows only (every
        column, rows in ascending index order) plus the indices to splice them
        at; the result is value-identical to the full relation the parent
        diffed, so merged answers cannot drift from the unsharded path.
        """
        indices = delta["indices"]
        patch = store_from_buffers(
            delta["header"], resolve_buffers(delta["descriptor"], self.attachment)
        )
        old_store = old.columnar_store()
        columns: dict[str, Column] = {}
        for name, column in old_store.columns.items():
            patch_column = patch.columns[name]
            data = np.array(column.data, copy=True)
            null = np.array(column.null, copy=True)
            data[indices] = patch_column.data
            null[indices] = patch_column.null
            columns[name] = Column(data, null, column.is_numeric)
        return Relation.from_colstore(
            old.schema, ColumnStore(columns, old_store.length), old.backend
        )

    def what_if_partial(self, query: WhatIfQuery) -> WhatIfShardPartial:
        """Contributions of this shard's rows, via the shard-local kernels.

        Per-query vectorized work (masks, post-update columns, predictions)
        runs on the local view only — ``n / n_shards`` rows; the full view is
        touched solely by lazy regressor-fit targets (once per plan) and by
        shard 0's merge carriers (:mod:`repro.shard.local`).
        """
        from ..service.fingerprint import use_key
        from .local import local_indep_contributions, local_what_if_contributions

        fingerprint = self._fingerprint(query)
        view, view_dag = self._view(query)
        # Same validation the unsharded prepare() runs (cheap, schema-level).
        self.whatif._check_attributes(query, view)
        self.whatif._check_update_independence(query, view_dag)
        disjuncts = self.whatif._normalise_for_clause(query.for_clause)
        local_view = self._local_view(query, view)
        kernels: KernelCache | None = None
        if self.config.fused_kernels:
            kernels = self._kernels.get_or_create(
                use_key(query.use), KernelCache, tags=use_relations(query.use)
            )
        if self.config.ignores_dependencies:
            count, sum_ = local_indep_contributions(query, local_view)
            meta: dict[str, Any] = {
                "variant": Variant.INDEP,
                "backdoor_set": (),
                "n_disjuncts": len(disjuncts),
            }
        else:
            estimator = self._estimator(
                fingerprint.estimator_key,
                lambda: self.whatif.build_estimator(query, view=view, view_dag=view_dag),
                tags=use_relations(query.use),
            )
            count, sum_ = local_what_if_contributions(
                query, view, local_view, disjuncts, estimator, kernels=kernels
            )
            meta = {
                "variant": self.config.variant,
                "backdoor_set": tuple(estimator.backdoor_set),
                "n_training_rows": estimator.n_training_rows,
                "n_disjuncts": len(disjuncts),
                "feature_attributes": list(estimator.feature_attributes),
            }
        needs_sum = get_aggregate(query.output_aggregate).needs_output_value

        def _derived(key: Any, build: Callable[[], Any]) -> Any:
            # Cache hits return the *same* array object for every query of a
            # plan, so pickle's memo table ships one copy per batch message.
            return build() if kernels is None else kernels.get(key, build)

        partial = WhatIfShardPartial(
            shard_index=self.shard.index,
            n_shards=self.shard.n_shards,
            n_rows=len(view),
            row_indices=_derived(
                ("row_indices",), lambda: np.flatnonzero(self._row_mask(query, view))
            ),
            count=count,
            sum=sum_ if needs_sum else None,
            meta=meta,
        )
        if self.shard.index == 0:
            # Merge carriers: full-view context the finalizer needs exactly once.
            partial.scope_mask = _derived(
                ("full_scope_mask", query.when.canonical()),
                lambda: evaluate_mask(query.when, view),
            )
            partial.block_of_row, partial.n_blocks = self._block_assignment(query, view)
        return partial

    def _how_to_shared(self, query: HowToQuery):
        fingerprint = self._fingerprint(query)
        view, view_dag = self._view(query)
        deps = use_relations(query.use)
        estimator = self._estimator(
            fingerprint.estimator_key,
            lambda: self.howto.build_estimator(query, view=view, view_dag=view_dag),
            tags=deps,
        )
        shared = self.howto.prepare(
            query, view=view, estimator=estimator, view_dag=view_dag
        )
        candidates = self._candidates.get_or_create(
            ("candidates", fingerprint.query_key),
            lambda: self.howto.enumerate_candidates(
                query, shared.view, shared.scope_mask
            ),
            tags=deps,
        )
        return shared, candidates, estimator

    def _how_to_local(self, query: HowToQuery):
        """The shard-local candidate evaluator plus its prepared/cached context.

        The :class:`~repro.shard.local.LocalHowTo` runs every per-candidate
        vectorized step on the local view — ``n / n_shards`` rows, exactly
        like :meth:`what_if_partial` — while regressor fits keep their
        full-view targets (from the prepared full-view masks), so merged
        answers stay bitwise equal to the unsharded path.
        """
        from ..service.fingerprint import use_key
        from .local import LocalHowTo

        shared, candidates, estimator = self._how_to_shared(query)
        own = np.flatnonzero(self._row_mask(query, shared.view))
        local_view = self._local_view(query, shared.view)
        kernels: KernelCache | None = None
        if self.config.fused_kernels:
            kernels = self._kernels.get_or_create(
                use_key(query.use), KernelCache, tags=use_relations(query.use)
            )
        local = LocalHowTo(query, shared, local_view, kernels=kernels)
        return shared, candidates, estimator, own, local

    def how_to_partial(self, query: HowToQuery) -> HowToShardPartial:
        shared, candidates, estimator, own, local = self._how_to_local(query)
        baseline_count, baseline_sum = local.contributions(local.post_values([]))
        candidate_count = np.empty((len(candidates), own.size))
        candidate_sum = np.empty((len(candidates), own.size))
        for i, candidate in enumerate(candidates):
            count, sum_ = local.contributions(
                local.post_values([candidate.as_attribute_update()])
            )
            candidate_count[i] = count
            candidate_sum[i] = sum_
        return HowToShardPartial(
            shard_index=self.shard.index,
            n_shards=self.shard.n_shards,
            n_rows=len(shared.view),
            row_indices=own,
            baseline_count=baseline_count,
            baseline_sum=baseline_sum,
            candidate_count=candidate_count,
            candidate_sum=candidate_sum,
            signature=tuple((c.attribute, c.label) for c in candidates),
            meta={
                "aggregate_name": shared.aggregate_name,
                "backdoor_set": list(estimator.backdoor_set),
            },
            candidates=list(candidates) if self.shard.index == 0 else None,
        )

    def how_to_verify(
        self, query: HowToQuery, chosen_indices: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        _shared, candidates, _estimator, own, local = self._how_to_local(query)
        updates = [candidates[i].as_attribute_update() for i in chosen_indices]
        count, sum_ = local.contributions(local.post_values(updates))
        return own, count, sum_

    def run_full(self, query: WhatIfQuery | HowToQuery, exhaustive: bool) -> Any:
        """Run a query unsharded inside this worker (exhaustive how-to et al.).

        The what-if branch runs through this worker's plan caches (view,
        estimator, fused kernels), so parameter variants of one plan pay pure
        prediction — it is the per-query engine of the pool's query-scatter
        batch mode, and its answers are the unsharded engine's answers by
        construction.
        """
        if isinstance(query, HowToQuery):
            if exhaustive:
                return self.howto.evaluate_exhaustive(query)
            return self.howto.evaluate(query)
        from ..service.fingerprint import use_key

        fingerprint = self._fingerprint(query)
        view, view_dag = self._view(query)
        kernels: KernelCache | None = None
        if self.config.fused_kernels:
            # Distinct cache from what_if_partial's: that one holds arrays
            # sized to the shard-local view, this one full-view arrays.
            kernels = self._kernels.get_or_create(
                ("full", use_key(query.use)),
                KernelCache,
                tags=use_relations(query.use),
            )
        prepared = self.whatif.prepare(
            query,
            view=view,
            view_dag=view_dag,
            blocks=(self.shard.block_labels, self.shard.n_blocks),
            kernels=kernels,
        )
        estimator = None
        if not self.config.ignores_dependencies:
            estimator = self._estimator(
                fingerprint.estimator_key,
                lambda: self.whatif.build_estimator(query, view=view, view_dag=view_dag),
                tags=use_relations(query.use),
            )
        return self.whatif.evaluate(query, prepared=prepared, estimator=estimator)


def _relation_delta(
    old: Relation, new: Relation, labels: np.ndarray | None
) -> tuple[np.ndarray, Relation] | None:
    """Diff two generations of a relation into a block-granular patch.

    Returns ``(indices, patch)`` — ascending row indices whose values differ
    (expanded to whole blocks when a block assignment is known, so co-located
    rows travel together) and the new relation restricted to those rows — or
    ``None`` when a patch cannot represent the change (schema or length
    changed, column types flipped) or would not be smaller (most rows
    modified).
    """
    if old.schema != new.schema or len(old) != len(new) or len(old) == 0:
        return None
    try:
        old_store, new_store = old.columnar_store(), new.columnar_store()
        changed = np.zeros(len(old), dtype=bool)
        for name, old_column in old_store.columns.items():
            new_column = new_store.columns[name]
            if old_column.is_numeric != new_column.is_numeric:
                return None
            if old_column.is_numeric:
                both_nan = np.isnan(old_column.data) & np.isnan(new_column.data)
                diff = ((old_column.data != new_column.data) & ~both_nan) | (
                    old_column.null != new_column.null
                )
            else:
                diff = np.asarray(
                    old_column.data != new_column.data, dtype=bool
                ) | (old_column.null != new_column.null)
            changed |= diff
    except Exception:  # noqa: BLE001 - exotic values; ship the whole relation
        return None
    if labels is not None and changed.any():
        changed = np.isin(labels, np.unique(labels[changed]))
    if 2 * int(changed.sum()) >= len(old):
        return None
    indices = np.flatnonzero(changed)
    return indices, new.take(indices)


def _describe_error(error: BaseException) -> tuple[str, str, str]:
    return (type(error).__name__, str(error), traceback.format_exc())


def _raise_worker_error(shard_index: int, described: tuple[str, str, str]) -> None:
    error_type, message, trace = described
    raise ShardPoolError(
        f"shard worker {shard_index} failed with {error_type}: {message}\n{trace}"
    )


def _build_shard(spec: Any, attachment: SegmentAttachment) -> Shard:
    """Materialise a worker's shard from its start-up spec.

    A plain :class:`Shard` passes through (the no-shm path); a spec dict
    carries the database as a shared-memory descriptor instead — the worker
    attaches the parent's segment and decodes relations whose numeric columns
    are zero-copy views over the shared pages.
    """
    if isinstance(spec, Shard):
        return spec
    transport = spec["database"]
    database = decode_database(
        transport["manifest"], resolve_buffers(transport["descriptor"], attachment)
    )
    return Shard(
        index=spec["index"],
        n_shards=spec["n_shards"],
        database=database,
        row_masks=spec["row_masks"],
        block_labels=spec["block_labels"],
        n_blocks=spec["n_blocks"],
        shard_of_block=spec["shard_of_block"],
    )


def _shard_worker_main(spec, causal_dag, config, task_queue, result_queue) -> None:
    """Worker process entry point: build the runtime once, then serve tasks.

    Tasks and results cross the queues as pre-pickled ``bytes`` blobs
    (protocol :data:`pickle.HIGHEST_PROTOCOL`): the parent gets exact wire
    byte counts for instrumentation, and one pickling pass with a shared memo
    table per message deduplicates arrays referenced by several sub-payloads.
    """
    attachment = SegmentAttachment()
    shard = _build_shard(spec, attachment)
    runtime = ShardWorkerRuntime(shard, causal_dag, config, attachment=attachment)
    while True:
        task = task_queue.get()
        if task is None:
            break
        if isinstance(task, (bytes, bytearray)):
            task = pickle.loads(task)
        task_id, kind, payload = task
        try:
            out = (task_id, shard.index, True, runtime.handle(kind, payload))
        except BaseException as error:  # noqa: BLE001 - worker must survive any task
            out = (task_id, shard.index, False, _describe_error(error))
        result_queue.put(pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL))
    # Unmap (or disarm, while decoded columns still hold views) before the
    # interpreter's shutdown GC reaches the segments — never unlink: the
    # parent's SegmentManager owns the names.
    attachment.close()


class ShardPool:
    """Persistent shard workers answering queries via broadcast-and-merge.

    Parameters
    ----------
    plan:
        The :class:`~repro.shard.partition.ShardPlan` to execute (one worker
        per shard).
    causal_dag / config:
        As for the engines; every worker builds its own engines from these.
    inline:
        Force the in-process fallback (no subprocesses).  ``None`` tries real
        processes first and degrades automatically.
    start_method:
        ``multiprocessing`` start method preference; ``fork`` (where
        available) maps the shard data into workers without pickling.
    """

    def __init__(
        self,
        plan: ShardPlan,
        causal_dag: CausalDAG | None,
        config: EngineConfig,
        *,
        inline: bool | None = None,
        start_method: str | None = None,
        generation: int = 0,
    ) -> None:
        self.plan = plan
        self.causal_dag = causal_dag
        self.config = config
        self.generation = generation
        self._force_inline = bool(inline)
        self._start_method = start_method
        self._io_lock = threading.Lock()
        self._task_counter = 0
        self.n_broadcasts = 0
        self.n_updates = 0
        self.bytes_to_workers = 0
        self.bytes_from_workers = 0
        self.update_bytes_last = 0
        self.mode: str = "unstarted"
        self.fallback_reason: str | None = None
        self._processes: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._inline_workers: list[ShardWorkerRuntime] | None = None
        self._shm_manager: SegmentManager | None = None
        self._closed = False

    @property
    def n_shards(self) -> int:
        return len(self.plan)

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "ShardPool":
        """Start the workers (idempotent); falls back to inline mode on failure."""
        if self.mode != "unstarted":
            return self
        if self._force_inline:
            self._start_inline("requested")
            return self
        try:
            self._start_processes()
            self.mode = "processes"
            # Handshake: block until every worker has decoded its snapshot
            # (and mapped the shm segments).  After this returns, unlinking a
            # segment early is safe — the workers' mappings persist — and a
            # broken transport degrades to inline here instead of failing on
            # the first real query.
            self._broadcast("ping", None)
        except Exception as error:  # noqa: BLE001 - degrade, never fail to start
            self._teardown_processes()
            self._release_segments()
            self._start_inline(f"{type(error).__name__}: {error}")
        return self

    def _start_processes(self) -> None:
        import multiprocessing as mp

        method = self._start_method
        if method is None:
            # fork maps the shard data into workers for free (copy-on-write),
            # but forking a *multithreaded* parent can clone locks in their
            # held state and deadlock the child.  When other threads are
            # already running (e.g. the pool starts lazily inside an HTTP
            # handler thread), fall back to a pickling start method; callers
            # that want the cheap fork should start the pool before spawning
            # threads (HypeRService.start_pool, done by `repro serve`).
            available = mp.get_all_start_methods()
            if "fork" in available and threading.active_count() == 1:
                method = "fork"
            elif "forkserver" in available:
                method = "forkserver"
            else:
                method = None
        ctx = mp.get_context(method)
        specs: list[Any] = list(self.plan)
        if shm_available():
            # Encode the full database ONCE into one shared-memory segment;
            # every worker rebuilds its shard from the same mapping (the
            # snapshot is the full database plus per-shard ownership masks),
            # so start-up ships descriptor-sized messages and the host holds
            # one copy of the column data regardless of worker count.
            self._shm_manager = SegmentManager()
            manifest, buffers = encode_database(self.plan[0].database)
            descriptor = self._shm_manager.put(self.generation, buffers)
            transport = {"manifest": manifest, "descriptor": descriptor}
            specs = [
                {
                    "index": shard.index,
                    "n_shards": shard.n_shards,
                    "row_masks": shard.row_masks,
                    "block_labels": shard.block_labels,
                    "n_blocks": shard.n_blocks,
                    "shard_of_block": shard.shard_of_block,
                    "database": transport,
                }
                for shard in self.plan
            ]
        self._result_queue = ctx.Queue()
        for shard, spec in zip(self.plan, specs):
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_shard_worker_main,
                args=(spec, self.causal_dag, self.config, task_queue, self._result_queue),
                daemon=True,
                name=f"repro-shard-{shard.index}",
            )
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)

    def _start_inline(self, reason: str) -> None:
        self._inline_workers = [
            ShardWorkerRuntime(shard, self.causal_dag, self.config)
            for shard in self.plan
        ]
        self.mode = "inline"
        self.fallback_reason = reason

    def close(self) -> None:
        """Stop the workers; the pool cannot be restarted afterwards.

        Takes the broadcast lock first, so a query crossing the pool when
        close() is called finishes and gets its answers before the workers
        are told to exit — readers never observe a mid-query teardown.
        """
        if self._closed:
            return
        with self._io_lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_processes()
            self._release_segments()
            self._inline_workers = None
            self.mode = "closed"

    def _release_segments(self) -> None:
        if self._shm_manager is not None:
            self._shm_manager.close_all()
            self._shm_manager = None

    def release_snapshot(self, generation: int) -> int:
        """Unlink the shm segments of a retired database generation.

        Called from the service's MVCC retire hook once no reader can reach
        ``generation`` any more.  Safe there: it only touches the segment
        manager's own leaf-level lock (never the broadcast lock), workers keep
        their existing mappings (unlink removes the name, not the memory), and
        unknown generations — or a pool without shared memory — are a no-op.
        Returns the number of segments unlinked.
        """
        if self._shm_manager is None:
            return 0
        return self._shm_manager.release(generation)

    def _teardown_processes(self) -> None:
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT_SECONDS
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for task_queue in self._task_queues:
            try:
                task_queue.close()
            except Exception:  # noqa: BLE001
                pass
        if self._result_queue is not None:
            try:
                self._result_queue.close()
            except Exception:  # noqa: BLE001
                pass
        self._processes = []
        self._task_queues = []
        self._result_queue = None

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown guard
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass

    # -- broadcast plumbing ------------------------------------------------------------

    def _ensure_running(self) -> None:
        if self.mode == "unstarted":
            self.start()
        if self.mode == "closed":
            raise ShardPoolError("the shard pool has been closed")

    def _broadcast(self, kind: str, payload: Any) -> list[Any]:
        """Send one task to every worker; return per-shard payloads in shard order.

        Raises :class:`ShardPoolError` if any worker reports a failure (for
        ``batch`` tasks, per-subtask failures are embedded in the payloads and
        handled by the caller instead).
        """
        return self._scatter(kind, [payload] * self.n_shards)

    def _scatter(self, kind: str, payloads: Sequence[Any]) -> list[Any]:
        """Send one task *per worker* (distinct payloads); collect in shard order.

        The broadcast lock makes each scatter atomic with respect to every
        other crossing: an ``update`` scatter never interleaves with a query
        broadcast, so a query's per-shard partials always come from one
        database generation.
        """
        self._ensure_running()
        if len(payloads) != self.n_shards:
            raise ShardPoolError(
                f"scatter needs {self.n_shards} payloads, got {len(payloads)}"
            )
        with self._io_lock:
            self.n_broadcasts += 1
            if self.mode == "inline":
                assert self._inline_workers is not None
                outs = []
                for worker, payload in zip(self._inline_workers, payloads):
                    try:
                        outs.append(worker.handle(kind, payload))
                    except ShardPoolError:
                        raise
                    except Exception as error:  # noqa: BLE001 - uniform report
                        _raise_worker_error(worker.shard.index, _describe_error(error))
                return outs
            self._task_counter += 1
            task_id = self._task_counter
            with obs_trace.span(
                "shard.scatter", kind=kind, shards=self.n_shards
            ) as sspan:
                bytes_out = 0
                for task_queue, payload in zip(self._task_queues, payloads):
                    blob = pickle.dumps(
                        (task_id, kind, payload), protocol=pickle.HIGHEST_PROTOCOL
                    )
                    bytes_out += len(blob)
                    task_queue.put(blob)
                self.bytes_to_workers += bytes_out
                by_shard: dict[int, Any] = {}
                failures: list[tuple[int, tuple[str, str, str]]] = []
                bytes_in = 0
                while len(by_shard) < self.n_shards:
                    try:
                        raw = self._result_queue.get(timeout=_POLL_SECONDS)
                    except queue_module.Empty:
                        self._check_workers_alive()
                        continue
                    if isinstance(raw, (bytes, bytearray)):
                        bytes_in += len(raw)
                        raw = pickle.loads(raw)
                    received_id, shard_index, ok, out = raw
                    if received_id != task_id:
                        continue  # stale result from an abandoned broadcast
                    if ok:
                        by_shard[shard_index] = out
                    else:
                        failures.append((shard_index, out))
                        by_shard[shard_index] = None
                self.bytes_from_workers += bytes_in
                if sspan is not None:
                    sspan.meta["bytes_out"] = bytes_out
                    sspan.meta["bytes_in"] = bytes_in
            if failures:
                _raise_worker_error(failures[0][0], failures[0][1])
            return [by_shard[i] for i in range(self.n_shards)]

    def _check_workers_alive(self) -> None:
        for process in self._processes:
            if not process.is_alive():
                raise ShardPoolError(
                    f"shard worker {process.name!r} died with exit code "
                    f"{process.exitcode}; the pool must be recreated"
                )

    def _run_on_one(self, kind: str, payload: Any, shard_index: int = 0) -> Any:
        """Run one task on a single worker (used for unsharded fallbacks)."""
        self._ensure_running()
        with self._io_lock:
            self.n_broadcasts += 1
            if self.mode == "inline":
                assert self._inline_workers is not None
                return self._inline_workers[shard_index].handle(kind, payload)
            self._task_counter += 1
            task_id = self._task_counter
            blob = pickle.dumps((task_id, kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
            self.bytes_to_workers += len(blob)
            self._task_queues[shard_index].put(blob)
            while True:
                try:
                    raw = self._result_queue.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    self._check_workers_alive()
                    continue
                if isinstance(raw, (bytes, bytearray)):
                    self.bytes_from_workers += len(raw)
                    raw = pickle.loads(raw)
                received_id, shard, ok, out = raw
                if received_id != task_id:
                    continue
                if not ok:
                    _raise_worker_error(shard, out)
                return out

    # -- live updates ------------------------------------------------------------------

    def apply_update(
        self,
        plan: ShardPlan,
        changed: Sequence[str] | frozenset[str],
        *,
        generation: int | None = None,
        causal_dag: Any = None,
        replace_dag: bool = False,
        clear_caches: bool = False,
    ) -> None:
        """Move the running workers to ``plan``'s database generation in place.

        Ships each worker a delta, not the world: changed relations travel as
        *block patches* — the new values of just the rows whose blocks hold a
        modified value, spliced in worker-side over the previous generation's
        columns — through shared memory when available (relations that change
        shape, schema, or most of their rows fall back to whole-relation
        pickles).  Alongside ride the new relation order and foreign keys,
        and only those row masks / block labels that actually differ from the
        worker's current shard (``np.array_equal`` diff).  Workers stay alive
        across the update — their fitted estimators and views for untouched
        relations stay warm — and the broadcast lock serialises the update
        against in-flight query crossings, so every query's partials come
        from exactly one generation (tracked by ``generation``, defaulting to
        the next one up; retired generations' segments are dropped via
        :meth:`release_snapshot`).

        ``replace_dag=True`` ships ``causal_dag`` as the workers' new causal
        background knowledge (engines rebuild against it in place), and
        ``clear_caches=True`` drops every worker plan cache regardless of
        tags — the in-place forms of ``update_causal_dag`` and
        ``invalidate``, which used to tear the pool down.
        """
        self._ensure_running()
        if len(plan) != self.n_shards:
            raise ShardPoolError(
                f"cannot apply an update with {len(plan)} shards to a pool of "
                f"{self.n_shards}; recreate the pool instead"
            )
        if generation is None:
            generation = self.generation + 1
        old_plan = self.plan
        new_database = plan[0].database
        old_database = old_plan[0].database
        changed_relations: dict[str, Relation] = {}
        deltas: list[dict[str, Any]] = []
        for name in changed:
            if name not in new_database:
                continue
            delta = None
            if name in old_database:
                delta = _relation_delta(
                    old_database[name],
                    new_database[name],
                    old_plan[0].block_labels.get(name),
                )
            if delta is None:
                changed_relations[name] = new_database[name]
                continue
            indices, patch = delta
            header, buffers = store_to_buffers(patch.columnar_store())
            deltas.append(
                {
                    "name": name,
                    "indices": indices,
                    "header": header,
                    "descriptor": ship_buffers(buffers, self._shm_manager, generation),
                }
            )
        removed = [
            name for name in old_database.relation_names if name not in new_database
        ]
        label_delta = {
            name: arr
            for name, arr in plan[0].block_labels.items()
            if name not in old_plan[0].block_labels
            or not np.array_equal(old_plan[0].block_labels[name], arr)
        }
        shard_of_block = plan[0].shard_of_block
        if old_plan[0].shard_of_block is not None and np.array_equal(
            old_plan[0].shard_of_block, shard_of_block
        ):
            shard_of_block = None  # unchanged: don't re-ship it
        payloads = []
        for old_shard, new_shard in zip(old_plan, plan):
            mask_delta = {
                name: mask
                for name, mask in new_shard.row_masks.items()
                if name not in old_shard.row_masks
                or not np.array_equal(old_shard.row_masks[name], mask)
            }
            payload: dict[str, Any] = {
                "changed": changed_relations,
                "deltas": deltas,
                "removed": removed,
                "relation_names": list(new_database.relation_names),
                "foreign_keys": list(new_database.foreign_keys),
                "row_masks": mask_delta,
                "block_labels": label_delta,
                "n_blocks": new_shard.n_blocks,
                "shard_of_block": shard_of_block,
            }
            if replace_dag:
                payload["replace_dag"] = True
                payload["causal_dag"] = causal_dag
            if clear_caches:
                payload["clear_caches"] = True
            payloads.append(payload)
        bytes_before = self.bytes_to_workers
        with obs_trace.span("shard.update", shards=self.n_shards, generation=generation):
            self._scatter("update", payloads)
        if self.mode == "inline":
            # Inline workers receive the payloads by reference; measure what a
            # process pool would have shipped so the commit-payload accounting
            # (and the tests asserting on it) hold in either mode.
            self.update_bytes_last = sum(
                len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL)) for p in payloads
            )
            self.bytes_to_workers += self.update_bytes_last
        else:
            self.update_bytes_last = self.bytes_to_workers - bytes_before
        if replace_dag:
            self.causal_dag = causal_dag
        self.plan = plan
        self.generation = generation
        self.n_updates += 1

    # -- query execution ---------------------------------------------------------------

    @staticmethod
    def _pop_worker_span(out: Any) -> dict[str, Any] | None:
        """Remove the worker-span stamp from a shipped payload (always).

        Popping unconditionally — not only when a trace is active — keeps the
        payload's ``meta`` identical to what the unsharded path produces.
        """
        meta = getattr(out, "meta", None)
        if not isinstance(meta, dict):
            meta = getattr(out, "metadata", None)
        if isinstance(meta, dict):
            return meta.pop("worker_span", None)
        return None

    @classmethod
    def _attach_worker_spans(cls, outs: Sequence[Any]) -> None:
        """Re-attach shipped worker spans under the current (broadcast) span."""
        for out in outs:
            raw = cls._pop_worker_span(out)
            if raw is not None:
                obs_trace.add_span(
                    raw["name"],
                    float(raw.get("duration_ms", 0.0)) / 1000.0,
                    meta=raw.get("meta"),
                    children=raw.get("children"),
                )

    def run_what_if(self, query: WhatIfQuery) -> "WhatIfResult":
        """Answer one what-if query: broadcast, collect partials, merge exactly."""
        started = time.perf_counter()
        with obs_trace.span("shard.broadcast", shards=self.n_shards) as bspan:
            partials = self._broadcast("whatif", query)
            if bspan is not None:
                bspan.meta["mode"] = self.mode
            self._attach_worker_spans(partials)
        with obs_trace.span("shard.merge"):
            result = merge_what_if(query, partials)
        result.runtime_seconds = time.perf_counter() - started
        return result

    def run_how_to(self, query: HowToQuery, *, exhaustive: bool = False) -> "HowToResult":
        """Answer one how-to query (two broadcast rounds when verification is on)."""
        started = time.perf_counter()
        if exhaustive:
            # Opt-HowTo enumerates full update combinations; run it unsharded
            # on one worker rather than shipping every combination's partials.
            with obs_trace.span("shard.broadcast", shards=1) as bspan:
                result = self._run_on_one("full", (query, True))
                if bspan is not None:
                    bspan.meta["mode"] = self.mode
                self._attach_worker_spans([result])
            return result
        with obs_trace.span("shard.broadcast", shards=self.n_shards) as bspan:
            partials = self._broadcast("howto", query)
            if bspan is not None:
                bspan.meta["mode"] = self.mode
            self._attach_worker_spans(partials)
        with obs_trace.span("shard.merge"):
            merged = merge_how_to(query, partials)
            verify = self._verifier(query, len(merged.baseline_count))
            return solve_merged_how_to(
                query,
                merged,
                verify=verify,
                runtime_seconds=time.perf_counter() - started,
            )

    def _verifier(self, query: HowToQuery, n_rows: int):
        if not self.config.verify_howto_with_whatif:
            return None

        def verify(chosen_indices: list[int]) -> tuple[np.ndarray, np.ndarray]:
            outs = self._broadcast("howto_verify", (query, list(chosen_indices)))
            count = np.zeros(n_rows)
            sum_ = np.zeros(n_rows)
            for own, shard_count, shard_sum in outs:
                count[own] = shard_count
                sum_[own] = shard_sum
            return count, sum_

        return verify

    def run_query(
        self, query: WhatIfQuery | HowToQuery, *, exhaustive: bool = False
    ) -> Any:
        if isinstance(query, HowToQuery):
            return self.run_how_to(query, exhaustive=exhaustive)
        return self.run_what_if(query)

    def run_batch(
        self,
        queries: Sequence[WhatIfQuery | HowToQuery | Exception],
        *,
        return_errors: bool = False,
    ) -> list[Any]:
        """Answer a batch with one scatter round-trip for all what-if work.

        What-if queries are **query-scattered**: whole queries are dealt
        round-robin across the workers, and each worker answers its share
        unsharded from the full zero-copy snapshot it already holds, through
        its warm plan caches (:meth:`ShardWorkerRuntime.run_full`).  One task
        message and one result message per worker cover the whole suite, each
        query's fixed dispatch cost is paid once instead of once per shard,
        and the answers are the unsharded engine's answers by construction —
        no merge step, nothing to drift.  (Single-query ``run_what_if`` keeps
        the row-scatter path, which has lower latency for one answer.)

        How-to queries still broadcast to every worker and merge partials,
        because their candidate scoring scans dominate and genuinely shard by
        rows; their verification rounds then run individually.  Entries that
        are already exceptions pass through; failures are captured per query
        with ``return_errors=True``, else the first one is raised.
        """
        results: list[Any] = list(queries)
        whatif_entries = [
            (index, query)
            for index, query in enumerate(queries)
            if isinstance(query, WhatIfQuery)
        ]
        howto_entries = [
            (index, query)
            for index, query in enumerate(queries)
            if isinstance(query, HowToQuery)
        ]
        if whatif_entries:
            per_worker_tasks: list[list[tuple[str, Any]]] = [
                [] for _ in range(self.n_shards)
            ]
            per_worker_slots: list[list[int]] = [[] for _ in range(self.n_shards)]
            for position, (index, query) in enumerate(whatif_entries):
                worker = position % self.n_shards
                per_worker_tasks[worker].append(("full", (query, False)))
                per_worker_slots[worker].append(index)
            with obs_trace.span(
                "shard.scatter_batch",
                shards=self.n_shards,
                batch=len(whatif_entries),
            ) as bspan:
                per_worker = self._scatter("batch", per_worker_tasks)
                if bspan is not None:
                    bspan.meta["mode"] = self.mode
                self._attach_worker_spans(
                    [out for worker_out in per_worker for ok, out in worker_out if ok]
                )
            for worker_out, slots in zip(per_worker, per_worker_slots):
                for index, (ok, out) in zip(slots, worker_out):
                    if ok:
                        results[index] = out
                    else:
                        try:
                            _raise_worker_error(0, out)
                        except ShardPoolError as error:
                            results[index] = error
        if howto_entries:
            subtasks = [("howto", query) for _index, query in howto_entries]
            with obs_trace.span(
                "shard.broadcast", shards=self.n_shards, batch=len(subtasks)
            ) as bspan:
                per_shard = self._broadcast("batch", subtasks)
                if bspan is not None:
                    bspan.meta["mode"] = self.mode
                # Strip (and, when traced, re-attach) every subtask's worker
                # span before any merge sees the partials.
                self._attach_worker_spans(
                    [out for shard_result in per_shard for ok, out in shard_result if ok]
                )
            with obs_trace.span("shard.merge", batch=len(subtasks)):
                for sub_position, (index, query) in enumerate(howto_entries):
                    shard_outs = [
                        shard_result[sub_position] for shard_result in per_shard
                    ]
                    failed = next((out for ok, out in shard_outs if not ok), None)
                    if failed is not None:
                        try:
                            _raise_worker_error(0, failed)
                        except ShardPoolError as error:
                            results[index] = error
                        continue
                    partials = [out for _ok, out in shard_outs]
                    try:
                        merged = merge_how_to(query, partials)
                        results[index] = solve_merged_how_to(
                            query,
                            merged,
                            verify=self._verifier(query, len(merged.baseline_count)),
                        )
                    except Exception as error:  # noqa: BLE001 - captured per query
                        results[index] = error
        if not return_errors:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    # -- instrumentation ---------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        manager = self._shm_manager
        return {
            "mode": self.mode,
            "n_shards": self.n_shards,
            "n_blocks": self.plan.n_blocks,
            "n_broadcasts": self.n_broadcasts,
            "n_updates": self.n_updates,
            "generation": self.generation,
            "bytes_to_workers": self.bytes_to_workers,
            "bytes_from_workers": self.bytes_from_workers,
            "update_bytes_last": self.update_bytes_last,
            "shm": manager.stats() if manager is not None else None,
            "fallback_reason": self.fallback_reason,
        }
