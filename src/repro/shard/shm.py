"""Zero-copy shared-memory transport for columnar shard snapshots.

The shard pool ships database snapshots to worker processes.  Pickling them
copies every column twice (serialize + deserialize) per worker; this module
instead places the buffer-protocol serialization of every relation
(:func:`repro.relational.columnar.store_to_buffers`) into one
``multiprocessing.shared_memory`` segment and ships only *segment names and
offsets*.  Workers map the segment and rebuild relations whose numeric
columns are read-only views over shared pages — one copy of the data per
host, whatever the worker count.

Three pieces:

* :func:`encode_database` / :func:`decode_database` — database ⇄ (small
  picklable manifest, flat list of contiguous buffers);
* :class:`SegmentManager` — parent-side owner of the segments, keyed by MVCC
  generation: segments are created on pool start / ``apply_update`` and
  unlinked when the service's :class:`~repro.service.versions.VersionStore`
  retires the generation (or when the pool closes).  On Linux an early unlink
  is safe: workers keep their mappings, only the name disappears, so a
  retired generation's memory is reclaimed exactly when the last worker
  drops its reference;
* :class:`SegmentAttachment` — worker-side registry keeping mapped segments
  alive.  Workers share the parent's ``resource_tracker`` process (fork,
  forkserver and spawn children all inherit its pipe), so the attach-side
  re-registration Python <= 3.12 performs is an idempotent set-add there —
  no explicit unregister dance is needed, and a crashed parent still gets
  its segments reaped by the tracker at exit.

Transport descriptors are self-describing: :func:`ship_buffers` degrades to
an inline (in-message) representation when shared memory is unavailable —
same decode path, pickle pays the copy, answers are identical.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Sequence

import numpy as np

from ..relational.columnar import store_from_buffers, store_to_buffers
from ..relational.database import Database
from ..relational.relation import Relation

__all__ = [
    "SegmentAttachment",
    "SegmentManager",
    "decode_database",
    "decode_relations",
    "encode_database",
    "encode_relations",
    "resolve_buffers",
    "ship_buffers",
    "shm_available",
]

_ALIGNMENT = 64  # cache-line align every buffer inside a segment

_shm_probe: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory is usable in this process (probed once)."""
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _shm_probe = True
        except Exception:  # noqa: BLE001 - sandboxed /dev/shm, missing _posixshmem
            _shm_probe = False
    return _shm_probe


def _disarm(segment: Any) -> None:
    """Neutralise a segment whose mapping is still viewed by live arrays.

    ``mmap.close`` raises :class:`BufferError` while exported pointers exist,
    and ``SharedMemory.__del__`` would retry it noisily at GC time.  Dropping
    the handle's references instead leaves the mapping to die with the last
    array view (or the process) — which is the semantics we want anyway.
    """
    segment._buf = None
    segment._mmap = None


# -- database ⇄ buffers ----------------------------------------------------------------


def encode_relations(
    relations: Mapping[str, Relation]
) -> tuple[list[dict[str, Any]], list[np.ndarray]]:
    """Serialize relations to (per-relation manifests, flat buffer list)."""
    manifests: list[dict[str, Any]] = []
    buffers: list[np.ndarray] = []
    for name, relation in relations.items():
        header, rel_buffers = store_to_buffers(relation.columnar_store())
        manifests.append(
            {
                "name": name,
                "schema": relation.schema,
                "backend": relation.backend,
                "header": header,
                "n_buffers": len(rel_buffers),
            }
        )
        buffers.extend(rel_buffers)
    return manifests, buffers


def decode_relations(
    manifests: Sequence[Mapping[str, Any]], buffers: Sequence[np.ndarray]
) -> dict[str, Relation]:
    """Inverse of :func:`encode_relations` (numeric columns stay zero-copy)."""
    out: dict[str, Relation] = {}
    cursor = 0
    for manifest in manifests:
        n_buffers = int(manifest["n_buffers"])
        store = store_from_buffers(
            manifest["header"], buffers[cursor : cursor + n_buffers]
        )
        cursor += n_buffers
        out[manifest["name"]] = Relation.from_colstore(
            manifest["schema"], store, manifest["backend"]
        )
    return out


def encode_database(database: Database) -> tuple[dict[str, Any], list[np.ndarray]]:
    """Serialize a whole database to (manifest, flat buffer list)."""
    manifests, buffers = encode_relations(
        {relation.name: relation for relation in database}
    )
    return (
        {"relations": manifests, "foreign_keys": list(database.foreign_keys)},
        buffers,
    )


def decode_database(
    manifest: Mapping[str, Any], buffers: Sequence[np.ndarray]
) -> Database:
    """Inverse of :func:`encode_database`."""
    relations = decode_relations(manifest["relations"], buffers)
    return Database(relations.values(), foreign_keys=manifest["foreign_keys"])


# -- transport descriptors -------------------------------------------------------------


def _layout(buffers: Sequence[np.ndarray]) -> tuple[list[tuple[int, str, int]], int]:
    """Aligned (offset, dtype, count) slot per buffer, plus the total size."""
    slots: list[tuple[int, str, int]] = []
    offset = 0
    for buffer in buffers:
        offset = (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        slots.append((offset, buffer.dtype.str, int(buffer.size)))
        offset += buffer.nbytes
    return slots, max(offset, 1)


def ship_buffers(
    buffers: list[np.ndarray],
    manager: "SegmentManager | None",
    generation: int,
) -> dict[str, Any]:
    """Place ``buffers`` for transport; returns a self-describing descriptor.

    With a :class:`SegmentManager` the bytes go into one shared-memory
    segment registered under ``generation`` and the descriptor carries only
    the segment name and offsets; without one (inline pool mode, platforms
    with no ``/dev/shm``) the buffers ride along in the descriptor and
    pickle pays the copy.
    """
    if manager is None:
        return {"kind": "inline", "buffers": buffers}
    return manager.put(generation, buffers)


def resolve_buffers(
    descriptor: Mapping[str, Any], attachment: "SegmentAttachment | None" = None
) -> list[np.ndarray]:
    """Materialise the buffer list a descriptor points at (worker side)."""
    if descriptor["kind"] == "inline":
        return descriptor["buffers"]
    if attachment is None:
        raise ValueError("a shm descriptor needs a SegmentAttachment to resolve")
    return attachment.buffers(descriptor)


class SegmentManager:
    """Parent-side owner of shared-memory segments, keyed by MVCC generation.

    ``put`` copies a buffer list into one fresh segment; ``release`` unlinks
    every segment of a generation (idempotent); ``close_all`` unlinks
    everything.  Thread-safe: ``release`` is called from the version store's
    retire hook (under the store lock) while ``put`` runs under the pool's
    broadcast lock — the manager's own lock is leaf-level and never calls
    back into either.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_generation: dict[int, list[Any]] = {}
        self.n_created = 0
        self.n_unlinked = 0
        self.bytes_created = 0

    def put(self, generation: int, buffers: list[np.ndarray]) -> dict[str, Any]:
        from multiprocessing import shared_memory

        slots, total = _layout(buffers)
        segment = shared_memory.SharedMemory(create=True, size=total)
        for buffer, (offset, dtype, count) in zip(buffers, slots):
            view = np.frombuffer(segment.buf, dtype=np.dtype(dtype), count=count, offset=offset)
            view[:] = buffer.reshape(-1)
        with self._lock:
            self._by_generation.setdefault(generation, []).append(segment)
            self.n_created += 1
            self.bytes_created += total
        return {
            "kind": "shm",
            "segment": segment.name,
            "slots": slots,
            "nbytes": total,
        }

    def release(self, generation: int) -> int:
        """Unlink every segment registered under ``generation`` (idempotent)."""
        with self._lock:
            segments = self._by_generation.pop(generation, [])
        for segment in segments:
            self._unlink(segment)
        return len(segments)

    def close_all(self) -> None:
        with self._lock:
            segments = [s for group in self._by_generation.values() for s in group]
            self._by_generation.clear()
        for segment in segments:
            self._unlink(segment)

    def _unlink(self, segment: Any) -> None:
        try:
            segment.close()
        except BufferError:
            _disarm(segment)
        except Exception:  # noqa: BLE001 - never fail a retire over cleanup
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        except Exception:  # noqa: BLE001 - never fail a retire over cleanup
            pass
        with self._lock:
            self.n_unlinked += 1

    def stats(self) -> dict[str, Any]:
        with self._lock:
            live = sum(
                segment.size
                for group in self._by_generation.values()
                for segment in group
            )
            return {
                "live_bytes": live,
                "live_segments": sum(len(g) for g in self._by_generation.values()),
                "segments_created": self.n_created,
                "segments_unlinked": self.n_unlinked,
                "bytes_created": self.bytes_created,
            }


class SegmentAttachment:
    """Worker-side registry of mapped segments (keeps their buffers alive).

    Numeric columns decoded from a segment are views into its mapping; the
    attachment therefore lives as long as the worker runtime.  ``close``
    unmaps without unlinking — the parent's :class:`SegmentManager` is the
    only unlinker.
    """

    def __init__(self) -> None:
        self._segments: dict[str, Any] = {}

    def attach(self, name: str) -> Any:
        segment = self._segments.get(name)
        if segment is None:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=name)
            self._segments[name] = segment
        return segment

    def buffers(self, descriptor: Mapping[str, Any]) -> list[np.ndarray]:
        segment = self.attach(descriptor["segment"])
        out: list[np.ndarray] = []
        for offset, dtype, count in descriptor["slots"]:
            view = np.frombuffer(
                segment.buf, dtype=np.dtype(dtype), count=count, offset=offset
            )
            view.flags.writeable = False
            out.append(view)
        return out

    def close(self) -> None:
        segments, self._segments = list(self._segments.values()), {}
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                _disarm(segment)
            except Exception:  # noqa: BLE001 - best-effort unmap
                pass
