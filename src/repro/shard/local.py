"""Shard-local what-if evaluation: per-query work proportional to owned rows.

:func:`repro.core.whatif.causal_contribution_rows` with a ``row_mask``
restricts estimator *prediction* to a shard's rows but still evaluates scope /
``For`` masks and post-update columns over the full view — work every worker
would duplicate.  The kernels here evaluate those per-query vectorized pieces
on the shard's **local view** (the full view filtered to owned rows), so a
query's marginal cost in a worker scales with ``n / n_shards``.

The bitwise-exactness contract survives because the two remaining full-view
dependencies are handled explicitly:

* **Training targets** — regressors must be fitted on full-view targets (every
  shard fits the identical model).  :class:`FullViewTargets` computes the
  full-view mask bundle *lazily*, inside
  :meth:`~repro.core.estimator.PostUpdateEstimator.regressor_for`'s target
  factory, so it is only ever evaluated on a regressor-cache miss — once per
  plan per worker, amortised to zero across a suite.
* **Row-stable kernels** — predicate masks, update functions, encoders and
  regressor predictions are all elementwise / per-row deterministic (see the
  einsum note in :mod:`repro.ml.linear`), so evaluating them on a filtered
  view produces bit-identical values to slicing a full-view evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..core.estimator import PostUpdateEstimator
from ..core.queries import HowToQuery, WhatIfQuery
from ..core.updates import AttributeUpdate, apply_update_column
from ..core.whatif import (
    _subset_index_list,
    numeric_output_column,
    regressor_cache_key,
)
from ..relational.aggregates import get_aggregate
from ..relational.columnar import KernelCache
from ..relational.predicates import Conjunction, evaluate_mask, split_pre_post, to_dnf
from ..relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.howto import PreparedHowTo

__all__ = [
    "FullViewTargets",
    "LocalHowTo",
    "local_indep_contributions",
    "local_what_if_contributions",
]


class FullViewTargets:
    """Lazily-built full-view training targets of one what-if query.

    Nothing is computed until a regressor-cache miss asks for a target; the
    full-view ``For`` masks and output column are then materialised once and
    reused for every subset/kind of the same query.
    """

    def __init__(
        self, query: WhatIfQuery, view: Relation, disjuncts: Sequence[Conjunction]
    ) -> None:
        self._query = query
        self._view = view
        self._disjuncts = disjuncts
        self._post_masks: list[np.ndarray] | None = None
        self._output: np.ndarray | None = None

    def _masks(self) -> list[np.ndarray]:
        if self._post_masks is None:
            self._post_masks = [
                evaluate_mask(d.post, self._view) for d in self._disjuncts
            ]
        return self._post_masks

    def _joint_post(self, subset: tuple[int, ...]) -> np.ndarray:
        post_masks = self._masks()
        joint = np.ones(len(self._view), dtype=bool)
        for k in subset:
            joint &= post_masks[k]
        return joint

    def count_target(self, subset: tuple[int, ...]) -> np.ndarray:
        return self._joint_post(subset).astype(float)

    def sum_target(self, subset: tuple[int, ...]) -> np.ndarray:
        if self._output is None:
            self._output = numeric_output_column(
                self._view, self._query.output_attribute
            )
        return self._output * self._joint_post(subset).astype(float)


def _predict_local(
    estimator: PostUpdateEstimator,
    regressor,
    local_view: Relation,
    post_values: dict[str, Sequence[Any]],
    idx: np.ndarray,
    n_local: int,
    *,
    kernels: KernelCache | None = None,
    idx_token: Any = None,
) -> np.ndarray:
    """Row-stable prediction at the local rows ``idx`` (full-length-local array).

    With ``kernels`` the backdoor covariates' encoded design blocks — constant
    for a given row set, whatever the query's update constants — are built
    once per ``(attribute, idx_token)`` and reused by every parameter variant
    of the plan; only the update attributes are re-encoded per query.  Block
    stacking reproduces ``predict_columns`` exactly (same order, same hstack),
    so the fused path is bitwise identical.
    """
    update_attrs = set(estimator.update_attributes)
    if kernels is not None and idx_token is not None and regressor.feature_order:

        def _backdoor_block(attribute: str) -> np.ndarray:
            return regressor.attribute_block(
                attribute, local_view.column_view(attribute)[idx]
            )

        blocks = []
        for attribute in regressor.feature_order:
            if attribute in update_attrs:
                post_column = post_values[attribute]
                if not isinstance(post_column, np.ndarray):
                    post_column = np.asarray(post_column, dtype=object)
                blocks.append(regressor.attribute_block(attribute, post_column[idx]))
            else:
                blocks.append(
                    kernels.get(
                        ("backdoor_block", attribute, idx_token),
                        lambda a=attribute: _backdoor_block(a),
                    )
                )
        out = np.zeros(n_local)
        out[idx] = regressor.predict_blocks(blocks, len(idx))
        return out
    columns: dict[str, Any] = {}
    for attribute in estimator.update_attributes:
        post_column = post_values[attribute]
        if not isinstance(post_column, np.ndarray):
            post_column = np.asarray(post_column, dtype=object)
        columns[attribute] = post_column[idx]
    for attribute in estimator.backdoor_set:
        columns[attribute] = local_view.column_view(attribute)[idx]
    out = np.zeros(n_local)
    out[idx] = regressor.predict_columns(columns)
    return out


def local_what_if_contributions(
    query: WhatIfQuery,
    full_view: Relation,
    local_view: Relation,
    disjuncts: Sequence[Conjunction],
    estimator: PostUpdateEstimator,
    *,
    kernels: KernelCache | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-owned-row (count, sum) contributions of the causal variants.

    Mirrors :func:`repro.core.whatif.causal_contribution_rows` operation for
    operation, with every per-query vectorized step evaluated on
    ``local_view`` only; the returned arrays align with the local view's rows
    and are bitwise equal to the same rows of an unsharded evaluation.

    ``kernels`` (per plan, owned by the worker runtime) memoises every
    deterministic piece that parameter variants of one plan share: scope /
    pre / post masks, the output column, applicable-row index sets, and the
    encoded backdoor design blocks.  Only update-dependent values (post
    columns, predictions) are computed per query.
    """
    aggregate = get_aggregate(query.output_aggregate)
    n_local = len(local_view)
    for_key = query.for_clause.canonical()
    when_key = query.when.canonical()

    def _derived(key: Any, build: Any) -> np.ndarray:
        return build() if kernels is None else kernels.get(key, build)

    scope = _derived(("scope_mask", when_key), lambda: evaluate_mask(query.when, local_view))
    update = query.hypothetical_update
    post_values: dict[str, Sequence[Any]] = {
        attribute: update.updated_values(
            attribute, local_view.column_view(attribute), scope
        )
        for attribute in query.update_attributes
    }
    output_values = _derived(
        ("output_values", query.output_attribute),
        lambda: numeric_output_column(local_view, query.output_attribute),
    )
    pre_masks = [
        _derived(("pre_mask", i, for_key), lambda d=d: evaluate_mask(d.pre, local_view))
        for i, d in enumerate(disjuncts)
    ]
    post_masks = [
        _derived(("post_mask", i, for_key), lambda d=d: evaluate_mask(d.post, local_view))
        for i, d in enumerate(disjuncts)
    ]

    def _build_qualifies_pre() -> np.ndarray:
        out = np.zeros(n_local, dtype=bool)
        for pre_mask, post_mask in zip(pre_masks, post_masks):
            out |= pre_mask & post_mask
        return out

    qualifies_pre = _derived(("qualifies_pre", for_key), _build_qualifies_pre)

    unaffected = ~scope
    count_contrib = np.where(unaffected, qualifies_pre.astype(float), 0.0)
    sum_contrib = np.where(unaffected & qualifies_pre, output_values, 0.0)

    if scope.any():
        targets = FullViewTargets(query, full_view, disjuncts)
        for subset in _subset_index_list(len(disjuncts)):
            sign = 1.0 if len(subset) % 2 == 1 else -1.0

            def _applicable() -> np.ndarray:
                out = scope.copy()
                for k in subset:
                    out &= pre_masks[k]
                return out

            applicable = _derived(("applicable", when_key, for_key, subset), _applicable)
            if not applicable.any():
                continue
            idx_token = ("idx", when_key, for_key, subset)
            idx = _derived(idx_token, lambda: np.flatnonzero(applicable))
            regressor = estimator.regressor_for(
                regressor_cache_key("count", subset, for_key),
                lambda s=subset: targets.count_target(s),
            )
            prob = _predict_local(
                estimator,
                regressor,
                local_view,
                post_values,
                idx,
                n_local,
                kernels=kernels,
                idx_token=idx_token,
            )
            prob = np.clip(prob, 0.0, 1.0)
            count_contrib[applicable] += sign * prob[applicable]
            if aggregate.needs_output_value:
                regressor = estimator.regressor_for(
                    regressor_cache_key(
                        "sum", subset, for_key, query.output_attribute
                    ),
                    lambda s=subset: targets.sum_target(s),
                )
                expected_value = _predict_local(
                    estimator,
                    regressor,
                    local_view,
                    post_values,
                    idx,
                    n_local,
                    kernels=kernels,
                    idx_token=idx_token,
                )
                sum_contrib[applicable] += sign * expected_value[applicable]
        count_contrib = np.clip(count_contrib, 0.0, 1.0)
    return count_contrib, sum_contrib


class _HowToTargets:
    """Full-view fit targets of one how-to query, from the prepared state.

    The prepared masks already live on ``shared`` (the full-view
    :class:`~repro.core.howto.PreparedHowTo`), so "building" a target is one
    AND-fold over them; it still only runs inside
    :meth:`~repro.core.estimator.PostUpdateEstimator.regressor_for`'s factory,
    i.e. once per (kind, subset) per worker.
    """

    def __init__(self, shared: "PreparedHowTo") -> None:
        self._shared = shared

    def _joint_post(self, subset: tuple[int, ...]) -> np.ndarray:
        joint = np.ones(len(self._shared.view), dtype=bool)
        for k in subset:
            joint &= self._shared.post_masks[k]
        return joint

    def count_target(self, subset: tuple[int, ...]) -> np.ndarray:
        return self._joint_post(subset).astype(float)

    def sum_target(self, subset: tuple[int, ...]) -> np.ndarray:
        return self._shared.output_values * self._joint_post(subset).astype(float)


class LocalHowTo:
    """Shard-local candidate evaluation of one how-to query.

    Mirrors :func:`repro.core.howto.candidate_contribution_rows` operation for
    operation, with every per-candidate vectorized step (post-update columns,
    mask folds, predictions) evaluated on the shard's **local view** only — a
    candidate's marginal cost scales with ``n / n_shards``, like what-if.
    The exactness contract is the same as :func:`local_what_if_contributions`:
    regressors are fitted on full-view targets derived from the prepared
    full-view masks (every shard fits the identical model), and every local
    step is row-stable, so the returned per-owned-row contributions are
    bitwise equal to the same rows of an unsharded candidate evaluation.

    ``kernels`` memoises the candidate-independent pieces across parameter
    variants of one plan (scope / pre / post masks, output column, applicable
    index sets, encoded backdoor blocks) under the same keys the what-if
    kernels use — the masks are literally the same arrays when a what-if query
    of the same shape shares the plan cache.
    """

    def __init__(
        self,
        query: HowToQuery,
        shared: "PreparedHowTo",
        local_view: Relation,
        *,
        kernels: KernelCache | None = None,
    ) -> None:
        self.query = query
        self.shared = shared
        self.local_view = local_view
        self.kernels = kernels
        self._n_local = len(local_view)
        self._when_key = query.when.canonical()
        self._for_key = shared.for_key
        disjuncts = [split_pre_post(atoms) for atoms in to_dnf(query.for_clause)]
        self.scope = self._derived(
            ("scope_mask", self._when_key),
            lambda: evaluate_mask(query.when, local_view),
        )
        self._pre_masks = [
            self._derived(
                ("pre_mask", i, self._for_key),
                lambda d=d: evaluate_mask(d.pre, local_view),
            )
            for i, d in enumerate(disjuncts)
        ]
        self._post_masks = [
            self._derived(
                ("post_mask", i, self._for_key),
                lambda d=d: evaluate_mask(d.post, local_view),
            )
            for i, d in enumerate(disjuncts)
        ]
        self._output_values = self._derived(
            ("output_values", query.objective_attribute),
            lambda: numeric_output_column(local_view, query.objective_attribute),
        )

        def _build_qualifies_pre() -> np.ndarray:
            out = np.zeros(self._n_local, dtype=bool)
            for pre_mask, post_mask in zip(self._pre_masks, self._post_masks):
                out |= pre_mask & post_mask
            return out

        self._qualifies_pre = self._derived(
            ("qualifies_pre", self._for_key), _build_qualifies_pre
        )
        self._targets = _HowToTargets(shared)

    def _derived(self, key: Any, build: Any) -> np.ndarray:
        return build() if self.kernels is None else self.kernels.get(key, build)

    def post_values(
        self, updates: Sequence[AttributeUpdate]
    ) -> dict[str, Sequence[Any]]:
        """Local post-update columns for one (possibly empty) update choice."""
        post_values: dict[str, Sequence[Any]] = {}
        by_attribute = {u.attribute: u.function for u in updates}
        for attribute in self.query.update_attributes:
            pre = self.local_view.column_view(attribute)
            if attribute in by_attribute:
                post_values[attribute] = apply_update_column(
                    by_attribute[attribute], pre, self.scope
                )
            else:
                post_values[attribute] = pre
        return post_values

    def contributions(
        self, post_values: dict[str, Sequence[Any]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-owned-row (count, sum) contributions of one candidate choice."""
        estimator = self.shared.estimator
        count_contrib = np.zeros(self._n_local)
        sum_contrib = np.zeros(self._n_local)
        unaffected = ~self.scope
        count_contrib[unaffected] = self._qualifies_pre[unaffected].astype(float)
        sum_contrib[unaffected] = np.where(
            self._qualifies_pre[unaffected], self._output_values[unaffected], 0.0
        )
        if self.scope.any():
            for subset in _subset_index_list(len(self._pre_masks)):
                sign = 1.0 if len(subset) % 2 == 1 else -1.0

                def _applicable() -> np.ndarray:
                    out = self.scope.copy()
                    for k in subset:
                        out &= self._pre_masks[k]
                    return out

                applicable = self._derived(
                    ("applicable", self._when_key, self._for_key, subset), _applicable
                )
                if not applicable.any():
                    continue
                idx_token = ("idx", self._when_key, self._for_key, subset)
                idx = self._derived(idx_token, lambda: np.flatnonzero(applicable))
                regressor = estimator.regressor_for(
                    regressor_cache_key("count", subset, self._for_key),
                    lambda s=subset: self._targets.count_target(s),
                )
                prob = _predict_local(
                    estimator,
                    regressor,
                    self.local_view,
                    post_values,
                    idx,
                    self._n_local,
                    kernels=self.kernels,
                    idx_token=idx_token,
                )
                prob = np.clip(prob, 0.0, 1.0)
                count_contrib[applicable] += sign * prob[applicable]
                if self.shared.aggregate_name in ("sum", "avg"):
                    regressor = estimator.regressor_for(
                        regressor_cache_key(
                            "sum",
                            subset,
                            self._for_key,
                            self.query.objective_attribute,
                        ),
                        lambda s=subset: self._targets.sum_target(s),
                    )
                    expected = _predict_local(
                        estimator,
                        regressor,
                        self.local_view,
                        post_values,
                        idx,
                        self._n_local,
                        kernels=self.kernels,
                        idx_token=idx_token,
                    )
                    sum_contrib[applicable] += sign * expected[applicable]
        return count_contrib, sum_contrib


def local_indep_contributions(
    query: WhatIfQuery, local_view: Relation
) -> tuple[np.ndarray, np.ndarray]:
    """Per-owned-row contributions of the Indep baseline on the local view."""
    scope = evaluate_mask(query.when, local_view)
    update = query.hypothetical_update
    post_view = local_view
    for attribute in query.update_attributes:
        post_view = post_view.with_column(
            attribute,
            update.updated_values(
                attribute, local_view.column_view(attribute), scope
            ),
        )
    qualify = evaluate_mask(query.for_clause, local_view, post_view)
    output_values = numeric_output_column(post_view, query.output_attribute)
    count_contrib = qualify.astype(float)
    sum_contrib = np.where(qualify, output_values, 0.0)
    return count_contrib, sum_contrib
