"""The associative merge protocol for per-shard partial results.

Every shard evaluates the *same* query over its own rows and emits a partial
carrying ``(row_indices, per-row contribution arrays)`` plus scalar metadata.
Partials form a commutative monoid under :meth:`merge` — merging is
concatenation of disjoint row sets — so any merge tree (sequential fold,
pairwise reduction, out-of-order arrival from a worker pool) produces the same
final answer.

Exactness: the finishers scatter merged per-row contributions back into
full-view-length arrays by global row position and then run the *same*
reduction as the unsharded engines (:func:`repro.core.whatif.finalize_what_if`
/ :func:`repro.core.howto.combine_candidate_value`).  Because scattering
restores the original row order, the floating-point fold is identical
operation for operation, and the merged answer is bitwise equal to the
unsharded one — the property ``merge(shards(Q)) == unsharded(Q)`` the shard
tests assert.

Carrier fields (``scope_mask``, ``block_of_row``, ``candidates``) are
full-view context needed only once per query; by convention shard 0 populates
them and :meth:`merge` propagates whichever side has them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..core.howto import (
    CandidateUpdate,
    build_howto_program,
    combine_candidate_value,
)
from ..core.queries import HowToQuery, WhatIfQuery
from ..core.results import HowToResult, WhatIfResult
from ..core.whatif import finalize_what_if
from ..exceptions import HypeRError
from ..optim.solver import BranchAndBoundSolver

__all__ = [
    "HowToShardPartial",
    "MergedHowTo",
    "ShardMergeError",
    "WhatIfShardPartial",
    "merge_how_to",
    "merge_what_if",
    "solve_merged_how_to",
]


class ShardMergeError(HypeRError):
    """A set of shard partials does not form an exact cover of the view."""


def _scatter(n_rows: int, row_indices: np.ndarray, values: np.ndarray) -> np.ndarray:
    out = np.zeros(n_rows)
    out[row_indices] = values
    return out


def _concat_optional(
    left: np.ndarray | None, right: np.ndarray | None, n_left: int, n_right: int
) -> np.ndarray | None:
    """Concatenate elidable (all-zero) arrays; ``None`` stands for zeros."""
    if left is None and right is None:
        return None
    if left is None:
        left = np.zeros(n_left)
    if right is None:
        right = np.zeros(n_right)
    return np.concatenate([left, right])


def _check_cover(n_rows: int, row_indices: np.ndarray) -> None:
    owners = np.bincount(row_indices, minlength=n_rows)
    if len(owners) > n_rows or (n_rows and (owners.min() != 1 or owners.max() != 1)):
        raise ShardMergeError(
            "shard partials do not partition the view rows exactly "
            f"(ownership counts range {owners.min() if len(owners) else 0}.."
            f"{owners.max() if len(owners) else 0})"
        )


@dataclass
class WhatIfShardPartial:
    """Per-shard what-if contributions over the shard's own view rows.

    ``sum`` may be ``None`` when the query's aggregate needs no output values
    (``count``): the merged sum column is identically zero, so shipping it
    across the process boundary would be wasted IPC.
    """

    shard_index: int
    n_shards: int
    n_rows: int
    row_indices: np.ndarray
    count: np.ndarray
    sum: np.ndarray | None
    meta: dict[str, Any] = field(default_factory=dict)
    #: carrier fields — full-view context sent by one shard (shard 0)
    scope_mask: np.ndarray | None = None
    block_of_row: np.ndarray | None = None
    n_blocks: int | None = None

    def merge(self, other: "WhatIfShardPartial") -> "WhatIfShardPartial":
        """Associative combination: the partial covering both row sets."""
        if self.n_rows != other.n_rows:
            raise ShardMergeError(
                f"cannot merge partials over views of {self.n_rows} and {other.n_rows} rows"
            )
        return replace(
            self,
            shard_index=min(self.shard_index, other.shard_index),
            row_indices=np.concatenate([self.row_indices, other.row_indices]),
            count=np.concatenate([self.count, other.count]),
            sum=_concat_optional(
                self.sum, other.sum, len(self.row_indices), len(other.row_indices)
            ),
            meta=self.meta or other.meta,
            scope_mask=self.scope_mask if self.scope_mask is not None else other.scope_mask,
            block_of_row=(
                self.block_of_row if self.block_of_row is not None else other.block_of_row
            ),
            n_blocks=self.n_blocks if self.n_blocks is not None else other.n_blocks,
        )


def merge_what_if(
    query: WhatIfQuery, partials: Sequence[WhatIfShardPartial]
) -> WhatIfResult:
    """Fold shard partials into the exact :class:`WhatIfResult`."""
    if not partials:
        raise ShardMergeError("merge_what_if needs at least one shard partial")
    merged = partials[0]
    for partial in partials[1:]:
        merged = merged.merge(partial)
    _check_cover(merged.n_rows, merged.row_indices)
    if merged.scope_mask is None or merged.block_of_row is None or merged.n_blocks is None:
        raise ShardMergeError(
            "no shard partial carried the full-view context "
            "(scope_mask / block_of_row / n_blocks)"
        )
    count = _scatter(merged.n_rows, merged.row_indices, merged.count)
    sum_ = (
        np.zeros(merged.n_rows)
        if merged.sum is None
        else _scatter(merged.n_rows, merged.row_indices, merged.sum)
    )
    meta = dict(merged.meta)
    return finalize_what_if(
        query,
        count,
        sum_,
        scope_mask=merged.scope_mask,
        block_of_row=merged.block_of_row,
        n_blocks=merged.n_blocks,
        backdoor_set=tuple(meta.pop("backdoor_set", ())),
        variant=meta.pop("variant", "hyper"),
        metadata=meta,
    )


@dataclass
class HowToShardPartial:
    """Per-shard baseline and per-candidate contributions (one row block each)."""

    shard_index: int
    n_shards: int
    n_rows: int
    row_indices: np.ndarray
    baseline_count: np.ndarray
    baseline_sum: np.ndarray
    candidate_count: np.ndarray  # shape (n_candidates, n_own_rows)
    candidate_sum: np.ndarray  # shape (n_candidates, n_own_rows)
    signature: tuple  # (attribute, label) per candidate — must agree across shards
    meta: dict[str, Any] = field(default_factory=dict)
    #: carrier field — the concrete candidate objects (shard 0)
    candidates: list[CandidateUpdate] | None = None

    def merge(self, other: "HowToShardPartial") -> "HowToShardPartial":
        if self.n_rows != other.n_rows:
            raise ShardMergeError(
                f"cannot merge partials over views of {self.n_rows} and {other.n_rows} rows"
            )
        if self.signature != other.signature:
            raise ShardMergeError(
                "shards enumerated different candidate sets; the enumeration must be "
                "deterministic over the shared view"
            )
        return replace(
            self,
            shard_index=min(self.shard_index, other.shard_index),
            row_indices=np.concatenate([self.row_indices, other.row_indices]),
            baseline_count=np.concatenate([self.baseline_count, other.baseline_count]),
            baseline_sum=np.concatenate([self.baseline_sum, other.baseline_sum]),
            candidate_count=np.concatenate(
                [self.candidate_count, other.candidate_count], axis=1
            ),
            candidate_sum=np.concatenate(
                [self.candidate_sum, other.candidate_sum], axis=1
            ),
            meta=self.meta or other.meta,
            candidates=self.candidates if self.candidates is not None else other.candidates,
        )


@dataclass
class MergedHowTo:
    """Full-view contribution arrays of every candidate, ready for the IP."""

    candidates: list[CandidateUpdate]
    baseline_count: np.ndarray
    baseline_sum: np.ndarray
    candidate_count: np.ndarray  # shape (n_candidates, n_rows)
    candidate_sum: np.ndarray
    aggregate_name: str
    meta: dict[str, Any] = field(default_factory=dict)


def merge_how_to(
    query: HowToQuery, partials: Sequence[HowToShardPartial]
) -> MergedHowTo:
    """Fold shard partials into full-view candidate contribution arrays."""
    if not partials:
        raise ShardMergeError("merge_how_to needs at least one shard partial")
    merged = partials[0]
    for partial in partials[1:]:
        merged = merged.merge(partial)
    _check_cover(merged.n_rows, merged.row_indices)
    if merged.candidates is None:
        raise ShardMergeError("no shard partial carried the candidate list")
    n = merged.n_rows
    n_candidates = len(merged.candidates)
    candidate_count = np.zeros((n_candidates, n))
    candidate_sum = np.zeros((n_candidates, n))
    candidate_count[:, merged.row_indices] = merged.candidate_count
    candidate_sum[:, merged.row_indices] = merged.candidate_sum
    meta = dict(merged.meta)
    return MergedHowTo(
        candidates=list(merged.candidates),
        baseline_count=_scatter(n, merged.row_indices, merged.baseline_count),
        baseline_sum=_scatter(n, merged.row_indices, merged.baseline_sum),
        candidate_count=candidate_count,
        candidate_sum=candidate_sum,
        aggregate_name=meta.pop("aggregate_name", query.objective_aggregate),
        meta=meta,
    )


def solve_merged_how_to(
    query: HowToQuery,
    merged: MergedHowTo,
    *,
    verify: Callable[[list[int]], tuple[np.ndarray, np.ndarray]] | None = None,
    runtime_seconds: float = 0.0,
) -> HowToResult:
    """Run the Section 4.3 integer program over merged shard contributions.

    ``verify`` re-evaluates the *combined* chosen updates (the what-if
    verification step of the unsharded engine): it receives the chosen
    candidate indices and must return merged full-view ``(count, sum)``
    contribution arrays for that combination — typically a second round
    through the shard pool.  ``None`` skips verification.
    """
    candidates = merged.candidates
    baseline = combine_candidate_value(
        merged.aggregate_name, merged.baseline_count, merged.baseline_sum
    )
    coefficients = {
        candidate: combine_candidate_value(
            merged.aggregate_name, merged.candidate_count[i], merged.candidate_sum[i]
        )
        - baseline
        for i, candidate in enumerate(candidates)
    }
    program, variable_of = build_howto_program(query, candidates, coefficients, baseline)
    solution = BranchAndBoundSolver().solve(program)
    if not solution.is_feasible:
        raise HypeRError("the how-to integer program is infeasible")
    chosen_indices = [
        i
        for i, candidate in enumerate(candidates)
        if solution.assignment.get(variable_of[candidate], 0.0) > 0.5
    ]
    chosen = [candidates[i] for i in chosen_indices]
    recommended = [c.as_attribute_update() for c in chosen]
    verified = None
    if verify is not None and recommended:
        count, sum_ = verify(chosen_indices)
        verified = combine_candidate_value(merged.aggregate_name, count, sum_)
    per_attribute = {attribute: "no change" for attribute in query.update_attributes}
    for candidate in chosen:
        per_attribute[candidate.attribute] = candidate.label
    metadata = {"n_nodes_explored": solution.n_nodes_explored}
    metadata.update(merged.meta)
    return HowToResult(
        recommended_updates=recommended,
        objective_value=float(solution.objective),
        baseline_value=baseline,
        maximize=query.maximize,
        verified_value=verified,
        per_attribute_choices=per_attribute,
        n_candidates=len(candidates),
        n_ip_variables=program.n_variables,
        n_ip_constraints=program.n_constraints,
        solver_status=solution.status.value,
        runtime_seconds=runtime_seconds,
        metadata=metadata,
    )
