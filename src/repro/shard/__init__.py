"""Shard-parallel execution core: block-decomposition sharding (Proposition 1).

The paper's decomposability result makes what-if / how-to answers exact
aggregates of independent per-block contributions.  This package turns that
into an execution architecture:

* :mod:`~repro.shard.partition` — split a database into N self-contained
  :class:`Shard` snapshots along block-independent boundaries;
* :mod:`~repro.shard.pool` — a persistent ``multiprocessing`` worker pool
  (stdlib only) with the shard data mapped once per worker, running per-shard
  estimator fits and block-contribution computation off the GIL;
* :mod:`~repro.shard.merge` — the associative merge protocol folding
  per-shard partials into answers **bitwise equal** to the unsharded path.

The service layer (:mod:`repro.service`) drives this stack through
``HypeRService(execution="processes", n_shards=...)``; see
``docs/service.md`` for the shard lifecycle and the pickling boundary.
"""

from .merge import (
    HowToShardPartial,
    MergedHowTo,
    ShardMergeError,
    WhatIfShardPartial,
    merge_how_to,
    merge_what_if,
    solve_merged_how_to,
)
from .partition import Shard, ShardPlan, partition_database
from .pool import ShardPool, ShardPoolError, ShardWorkerRuntime

__all__ = [
    "HowToShardPartial",
    "MergedHowTo",
    "Shard",
    "ShardMergeError",
    "ShardPlan",
    "ShardPool",
    "ShardPoolError",
    "ShardWorkerRuntime",
    "WhatIfShardPartial",
    "merge_how_to",
    "merge_what_if",
    "partition_database",
    "solve_merged_how_to",
]
