"""Partitioning a database into shard snapshots along block boundaries.

Proposition 1 makes what-if answers exact aggregates of independent per-block
contributions, so the block-independent decomposition
(:mod:`repro.probdb.blocks`) is a natural *execution* boundary: a
:class:`Shard` owns a subset of blocks — and therefore a disjoint set of rows
of every relation — and can compute the contributions of exactly those rows
with no coordination beyond the final merge (:mod:`repro.shard.merge`).

Exactness contract
------------------
A shard snapshot deliberately carries the **full** database alongside its
row-ownership masks.  Estimator fitting must see the same training rows in the
same order as an unsharded evaluation, otherwise the fitted regressors (and
with them every prediction) drift numerically; replicating the deterministic
fit per worker is what makes shard-merged answers *bitwise* equal to the
unsharded path.  Only prediction and contribution accumulation are restricted
to the shard's own rows — that is the parallel fraction, and for repeated-plan
workloads the (cached) fits amortise to zero.

The pickling boundary is the :class:`Shard` itself: everything it holds —
relations (lock-free via ``Relation.__getstate__``), block labels, masks — is
picklable, so a shard can be shipped to a spawned worker process; under the
``fork`` start method it transfers by copy-on-write without serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..causal.dag import CausalDAG
from ..exceptions import CausalModelError
from ..probdb.blocks import assign_blocks_to_shards, block_labels, shard_row_masks
from ..relational.database import Database

__all__ = ["Shard", "ShardPlan", "partition_database"]


@dataclass
class Shard:
    """One self-contained unit of a block-decomposition partition.

    Parameters
    ----------
    index / n_shards:
        Position of this shard within its :class:`ShardPlan`.
    database:
        The full database snapshot (shared training data — see the module
        docstring for why this is not a row subset).
    row_masks:
        Boolean mask per relation marking the rows this shard *owns*: the rows
        whose per-row contributions it computes.  Masks of the same relation
        across a plan's shards partition the relation exactly.
    block_labels / n_blocks:
        The block assignment of :func:`repro.probdb.blocks.block_labels` the
        partition was derived from (workers inject it into query preparation
        so every shard reports identical block metadata).
    shard_of_block:
        The stable block-to-shard assignment (``assign_blocks_to_shards``).
    """

    index: int
    n_shards: int
    database: Database
    row_masks: dict[str, np.ndarray]
    block_labels: dict[str, np.ndarray] = field(repr=False)
    n_blocks: int = 1
    shard_of_block: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def own_rows(self, relation: str) -> np.ndarray:
        """Boolean ownership mask over ``relation``'s rows."""
        try:
            return self.row_masks[relation]
        except KeyError as exc:
            raise CausalModelError(
                f"shard {self.index} has no row mask for relation {relation!r}"
            ) from exc

    def n_own_rows(self, relation: str | None = None) -> int:
        if relation is not None:
            return int(self.own_rows(relation).sum())
        return sum(int(mask.sum()) for mask in self.row_masks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {rel: int(mask.sum()) for rel, mask in self.row_masks.items()}
        return f"Shard({self.index}/{self.n_shards}, rows={sizes})"


@dataclass
class ShardPlan:
    """The full partition: ``n_shards`` shards covering every tuple exactly once."""

    shards: list[Shard]
    n_blocks: int

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __getitem__(self, index: int) -> Shard:
        return self.shards[index]

    def validate_cover(self) -> None:
        """Check the partition property: each row is owned by exactly one shard."""
        if not self.shards:
            raise CausalModelError("a shard plan needs at least one shard")
        for relation in self.shards[0].row_masks:
            owners = np.zeros(len(self.shards[0].row_masks[relation]), dtype=int)
            for shard in self.shards:
                owners += shard.own_rows(relation).astype(int)
            if owners.size and (owners.min() != 1 or owners.max() != 1):
                raise CausalModelError(
                    f"rows of relation {relation!r} are not partitioned exactly "
                    f"(ownership counts range {owners.min()}..{owners.max()})"
                )


def partition_database(
    database: Database,
    causal_dag: CausalDAG | None,
    n_shards: int,
    *,
    blocks: tuple[dict[str, np.ndarray], int] | None = None,
) -> ShardPlan:
    """Partition ``database`` into ``n_shards`` shards along block boundaries.

    ``blocks`` may inject a pre-computed ``(labels, n_blocks)`` pair from
    :func:`repro.probdb.blocks.block_labels` (the service layer caches it).
    With ``causal_dag=None`` every tuple is its own block — the paper's
    tuple-independence default — so the partition degenerates to balanced row
    chunks.  When there are fewer blocks than shards, trailing shards own no
    rows (the single-block edge case leaves one working shard).
    """
    if n_shards < 1:
        raise CausalModelError(f"n_shards must be at least 1, got {n_shards}")
    labels, n_blocks = blocks if blocks is not None else block_labels(database, causal_dag)
    block_sizes = np.zeros(n_blocks, dtype=np.int64)
    for relation_labels in labels.values():
        block_sizes += np.bincount(relation_labels, minlength=n_blocks)
    shard_of_block = assign_blocks_to_shards(block_sizes, n_shards)
    masks = shard_row_masks(labels, shard_of_block, n_shards)
    shards = [
        Shard(
            index=i,
            n_shards=n_shards,
            database=database,
            row_masks=masks[i],
            block_labels=labels,
            n_blocks=n_blocks,
            shard_of_block=shard_of_block,
        )
        for i in range(n_shards)
    ]
    return ShardPlan(shards=shards, n_blocks=n_blocks)
