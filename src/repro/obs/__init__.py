"""Observability: trace contexts, a metrics registry, and a slow-query log.

The package is dependency-free and importable from every layer:

* :mod:`repro.obs.trace` — request ids and hierarchical spans with
  monotonic timings.  Spans are recorded only while a trace is *active*
  (``activate(ctx)``); otherwise ``span(...)`` is a no-op, so untraced
  requests pay a single context-variable read per instrumentation point.
* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  log-bucketed histograms with Prometheus text exposition.  Derived
  values (cache stats, MVCC stats, pool stats) are registered as
  *callback collectors* evaluated only at scrape time.
* :mod:`repro.obs.slowlog` — a bounded slow-query log keyed by plan
  fingerprint, served by ``GET /v1/slow``.
"""

from .metrics import (
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    validate_exposition,
)
from .slowlog import SlowQueryLog
from .trace import (
    Span,
    TraceContext,
    activate,
    add_span,
    current_trace,
    format_span_tree,
    new_request_id,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "TraceContext",
    "activate",
    "add_span",
    "current_trace",
    "exponential_buckets",
    "format_span_tree",
    "new_request_id",
    "span",
    "validate_exposition",
]
