"""Request ids and hierarchical trace spans with monotonic timings.

A :class:`TraceContext` is created at a front door (or by the CLI) per
traced request — its id comes from a client-sent ``X-Request-Id`` header
or is generated.  Code *anywhere* below records spans with the module
level :func:`span` context manager::

    with obs.activate(trace):          # front door / service entry
        ...
        with obs.span("estimator.fit", plan=digest):   # any layer
            ...

``span`` is a strict no-op (one context-variable read) when no trace is
active, which is what keeps tracing overhead out of untraced requests.
The active trace propagates through a :class:`contextvars.ContextVar`,
so nested layers (``VersionStore.commit``, cache factories) need no
signature changes — but it does **not** cross threads or processes:

* thread/executor hops pass the ``TraceContext`` explicitly (e.g.
  ``HypeRService.execute(..., trace=ctx)`` re-activates it);
* shard workers measure their own spans as plain dicts shipped back
  inside partial ``meta`` across the pickling boundary, re-attached
  under the broadcast span by :func:`add_span`.

Durations are measured with ``time.perf_counter`` and serialized in
milliseconds; worker clocks never mix with coordinator clocks because
the wire form carries durations, not absolute timestamps.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping

__all__ = [
    "Span",
    "TraceContext",
    "activate",
    "add_span",
    "current_trace",
    "format_span_tree",
    "new_request_id",
    "span",
]


def new_request_id() -> str:
    """A fresh 16-hex-char request id (also used by the client SDK)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed region; children are spans opened while it was current."""

    __slots__ = ("name", "meta", "children", "duration_seconds")

    def __init__(self, name: str, meta: dict[str, Any] | None = None):
        self.name = name
        self.meta: dict[str, Any] = meta or {}
        self.children: list[Span] = []
        self.duration_seconds: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict wire form (the shape of the v1 ``TraceSpan`` schema)."""
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(1000.0 * (self.duration_seconds or 0.0), 6),
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {len(self.children)} children)"


class TraceContext:
    """A request id plus the root span of one request's span tree."""

    def __init__(self, request_id: str | None = None, *, root_name: str = "request"):
        self.request_id = request_id or new_request_id()
        self.root = Span(root_name, {"request_id": self.request_id})
        self._lock = threading.RLock()
        self._started = time.perf_counter()

    def finish(self) -> None:
        """Close the root span (idempotent — keeps the first duration)."""
        if self.root.duration_seconds is None:
            self.root.duration_seconds = time.perf_counter() - self._started

    def to_wire(self) -> dict[str, Any]:
        """Finalize and serialize the span tree for an answer payload."""
        self.finish()
        with self._lock:
            return self.root.to_dict()


# the (context, current-parent-span) pair for the executing logical context
_ACTIVE: ContextVar[tuple[TraceContext, Span] | None] = ContextVar(
    "repro_obs_active_trace", default=None
)


def current_trace() -> TraceContext | None:
    """The active trace context, if any (e.g. for slow-log request ids)."""
    active = _ACTIVE.get()
    return active[0] if active is not None else None


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``ctx`` the active trace; ``activate(None)`` is a no-op."""
    if ctx is None:
        yield None
        return
    token = _ACTIVE.set((ctx, ctx.root))
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **meta: Any) -> Iterator[Span | None]:
    """Record a timed child span under the current parent; no-op untraced."""
    active = _ACTIVE.get()
    if active is None:
        yield None
        return
    ctx, parent = active
    child = Span(name, dict(meta) if meta else None)
    with ctx._lock:
        parent.children.append(child)
    token = _ACTIVE.set((ctx, child))
    started = time.perf_counter()
    try:
        yield child
    finally:
        child.duration_seconds = time.perf_counter() - started
        _ACTIVE.reset(token)


def add_span(
    name: str,
    duration_seconds: float,
    *,
    meta: Mapping[str, Any] | None = None,
    children: list[dict[str, Any]] | None = None,
) -> None:
    """Attach a pre-measured span (e.g. shipped from a shard worker) under
    the current parent.  No-op when no trace is active."""
    active = _ACTIVE.get()
    if active is None:
        return
    ctx, parent = active
    child = Span(name, dict(meta) if meta else None)
    child.duration_seconds = float(duration_seconds)
    for raw in children or ():
        child.children.append(_span_from_dict(raw))
    with ctx._lock:
        parent.children.append(child)


def _span_from_dict(raw: Mapping[str, Any]) -> Span:
    out = Span(str(raw.get("name", "?")), dict(raw.get("meta") or {}) or None)
    out.duration_seconds = float(raw.get("duration_ms", 0.0)) / 1000.0
    for child in raw.get("children") or ():
        out.children.append(_span_from_dict(child))
    return out


def format_span_tree(tree: Mapping[str, Any], *, _indent: int = 0) -> str:
    """Pretty-print a wire-form span tree (``repro query --trace``)."""
    lines: list[str] = []
    _format_into(tree, 0, lines)
    return "\n".join(lines)


def _format_into(node: Mapping[str, Any], depth: int, lines: list[str]) -> None:
    duration = float(node.get("duration_ms", 0.0))
    meta = node.get("meta") or {}
    extras = " ".join(f"{key}={value}" for key, value in meta.items())
    prefix = "  " * depth + ("- " if depth else "")
    lines.append(
        f"{prefix}{node.get('name', '?')}  {duration:.3f} ms" + (f"  [{extras}]" if extras else "")
    )
    for child in node.get("children") or ():
        _format_into(child, depth + 1, lines)
