"""Thread-safe metrics instruments with Prometheus text exposition.

Three instrument kinds — :class:`Counter`, :class:`Gauge`, and a
log-bucketed :class:`Histogram` — are *declared* on a
:class:`MetricsRegistry` and updated on the hot path with a single
fine-grained lock per instrument.  Everything derived (cache hit rates,
MVCC snapshot counts, pool stats) is registered as a **callback
collector**: a function evaluated only when ``render()`` is called, so
an unscraped metric costs nothing in steady state.

``render()`` produces the Prometheus text exposition format
(``text/plain; version=0.0.4``) and :func:`validate_exposition` is a
line-syntax validator shared by the tests and the CI metrics-smoke
step.  ``snapshot()`` returns a flat ``{series: value}`` dict the
benchmarks use to record before/after metric deltas.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Iterator, Mapping

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "validate_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: content type both front doors send for ``GET /v1/metrics``
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced bucket upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: default latency buckets: 0.5 ms .. ~262 s, doubling
DEFAULT_BUCKETS = exponential_buckets(0.0005, 2.0, 20)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: tuple[str, ...]) -> tuple[str, ...]:
    for label in labelnames:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    return labelnames


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """One named instrument; labeled instruments hold per-labelset children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(tuple(labelnames))
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: str):
        """The child instrument for one label combination (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self):
        raise NotImplementedError

    def _child_items(self) -> list[tuple[Mapping[str, str], Any]]:
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in sorted(self._children.items())
            ]

    def samples(self) -> Iterator[tuple[str, Mapping[str, str], float]]:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def per_label(self) -> dict[str, float]:
        """``{first-label-value: count}`` for single-label counters."""
        return {labels[self.labelnames[0]]: child.value for labels, child in self._child_items()}

    def samples(self) -> Iterator[tuple[str, Mapping[str, str], float]]:
        if self.labelnames:
            for labels, child in self._child_items():
                yield self.name, labels, child.value
        else:
            yield self.name, {}, self.value


class Gauge(_Instrument):
    """A value that can go up and down; tracks its high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0
        self._peak = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._peak:
                self._peak = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._peak:
                self._peak = self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        with self._lock:
            return self._peak

    def samples(self) -> Iterator[tuple[str, Mapping[str, str], float]]:
        if self.labelnames:
            for labels, child in self._child_items():
                yield self.name, labels, child.value
        else:
            yield self.name, {}, self.value


class Histogram(_Instrument):
    """A log-bucketed histogram of observations (seconds by convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.bounds)

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def per_label(self) -> dict[str, "Histogram"]:
        """``{first-label-value: child}`` for single-label histograms."""
        return {labels[self.labelnames[0]]: child for labels, child in self._child_items()}

    def samples(self) -> Iterator[tuple[str, Mapping[str, str], float]]:
        if self.labelnames:
            items = self._child_items()
        else:
            items = [({}, self)]
        for labels, child in items:
            with child._lock:
                counts = list(child._counts)
                total, summed = child._count, child._sum
            cumulative = 0
            for bound, count in zip(child.bounds, counts):
                cumulative += count
                yield (
                    f"{self.name}_bucket",
                    {**labels, "le": _format_value(bound)},
                    float(cumulative),
                )
            yield f"{self.name}_bucket", {**labels, "le": "+Inf"}, float(total)
            yield f"{self.name}_sum", dict(labels), summed
            yield f"{self.name}_count", dict(labels), float(total)


class _Collector:
    """A scrape-time callback: ``fn()`` returns a value or (labels, value) pairs."""

    def __init__(self, name: str, help: str, kind: str, fn: Callable[[], Any]):
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        self.fn = fn

    def samples(self) -> Iterator[tuple[str, Mapping[str, str], float]]:
        try:
            produced = self.fn()
        except Exception:  # a broken collector must not take down the scrape
            return
        if produced is None:
            return
        if isinstance(produced, (int, float)):
            yield self.name, {}, float(produced)
            return
        for labels, value in produced:
            yield self.name, dict(labels), float(value)


class MetricsRegistry:
    """A named set of instruments plus scrape-time collectors.

    Redeclaring a name returns the existing instrument if the kind
    matches (so modules can declare idempotently) and raises otherwise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Any] = {}

    def _declare(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames=labelnames, buckets=buckets)

    def register_callback(
        self, name: str, help: str, fn: Callable[[], Any], *, kind: str = "gauge"
    ) -> None:
        """Register a scrape-time collector; replaces a previous callback of
        the same name (services re-register on pool rebuilds)."""
        if kind not in ("gauge", "counter"):
            raise ValueError(f"callback kind must be gauge or counter, not {kind!r}")
        collector = _Collector(name, help, kind, fn)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None and not isinstance(existing, _Collector):
                raise ValueError(f"metric {name!r} already registered as {existing.kind}")
            self._metrics[name] = collector

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def _ordered(self) -> list[Any]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render(self) -> str:
        """Prometheus text exposition format for every instrument."""
        lines: list[str] = []
        for metric in self._ordered():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, labels, value in metric.samples():
                lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, float]:
        """Flat ``{'name{label="v"}': value}`` map (benchmark deltas)."""
        flat: dict[str, float] = {}
        for metric in self._ordered():
            for name, labels, value in metric.samples():
                flat[f"{name}{_format_labels(labels)}"] = value
        return flat


#: process-wide default registry for code without a service-scoped one
DEFAULT_REGISTRY = MetricsRegistry()


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\")*,?\})?"  # more labels
    r" [-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)"  # value
    r"( [-+]?[0-9]+)?$"  # optional timestamp
)
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$"
)


def validate_exposition(text: str) -> int:
    """Check Prometheus text exposition line syntax; returns the sample count.

    Raises ``ValueError`` naming every malformed line.  This is the
    validator behind the tests and the CI ``metrics-smoke`` step.
    """
    bad: list[str] = []
    n_samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not (_HELP_RE.match(line) or _TYPE_RE.match(line) or line.startswith("# ")):
                bad.append(f"line {lineno}: malformed comment {line!r}")
            continue
        if _SAMPLE_RE.match(line):
            n_samples += 1
        else:
            bad.append(f"line {lineno}: malformed sample {line!r}")
    if bad:
        raise ValueError("invalid exposition format:\n" + "\n".join(bad))
    if n_samples == 0:
        raise ValueError("exposition contains no samples")
    return n_samples
