"""A bounded slow-query log keyed by plan fingerprint.

The service records every query completion; entries at or above the
threshold are aggregated per plan-fingerprint digest (count, worst and
latest duration, the request id that last tripped it).  The log is
bounded: when full, the least-recently-updated fingerprint is evicted.
``GET /v1/slow`` serves :meth:`SlowQueryLog.snapshot`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    def __init__(self, capacity: int = 64, threshold_seconds: float = 0.1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.threshold_seconds = float(threshold_seconds)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._n_recorded = 0
        self._n_evicted = 0

    def record(
        self,
        fingerprint: str,
        duration_seconds: float,
        *,
        query: str = "",
        request_id: str = "",
        kind: str = "",
    ) -> bool:
        """Record one completion; returns True if it entered the log."""
        if duration_seconds < self.threshold_seconds:
            return False
        with self._lock:
            self._n_recorded += 1
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = {
                    "fingerprint": fingerprint,
                    "kind": kind,
                    "query": query,
                    "count": 0,
                    "max_seconds": 0.0,
                    "last_seconds": 0.0,
                    "last_request_id": "",
                    "last_seen": 0.0,
                }
                self._entries[fingerprint] = entry
            entry["count"] += 1
            entry["last_seconds"] = float(duration_seconds)
            entry["max_seconds"] = max(entry["max_seconds"], float(duration_seconds))
            if request_id:
                entry["last_request_id"] = request_id
            if query:
                entry["query"] = query
            if kind:
                entry["kind"] = kind
            entry["last_seen"] = time.time()
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._n_evicted += 1
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view, slowest-by-max first."""
        with self._lock:
            entries = [dict(entry) for entry in self._entries.values()]
            recorded, evicted = self._n_recorded, self._n_evicted
        entries.sort(key=lambda entry: entry["max_seconds"], reverse=True)
        return {
            "capacity": self.capacity,
            "threshold_seconds": self.threshold_seconds,
            "recorded": recorded,
            "evicted": evicted,
            "entries": entries,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
