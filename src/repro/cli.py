"""Command-line interface for HypeR.

Lets a user run what-if / how-to queries written in the SQL extension against
either one of the bundled synthetic datasets or a directory of CSV files, and
inspect the available datasets, without writing any Python::

    python -m repro datasets
    python -m repro describe --dataset german-syn
    python -m repro query --dataset german-syn \
        "USE Credit UPDATE(Status) = 4 OUTPUT COUNT(POST(Credit)) FOR POST(Credit) = 1"
    python -m repro query --csv-dir data/ --base-relation Orders --key OrderID "..."
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from .core.config import EngineConfig, Variant
from .core.engine import HypeR
from .datasets import available_datasets, make_dataset
from .exceptions import HypeRError, QuerySyntaxError
from .relational.csvio import read_csv
from .relational.database import Database

__all__ = ["main", "build_parser", "format_syntax_error"]


def format_syntax_error(text: str, error: QuerySyntaxError) -> str:
    """A caret-positioned diagnostic for a query that failed to parse.

    Shows the offending source line with a ``^`` under the exact character
    the parser rejected (the lexer stamps every token with its offset)::

        syntax error: expected keyword 'OUTPUT', found 'OUTPT'
          USE Credit UPDATE(Status) = 4 OUTPT AVG(POST(Credit))
                                        ^
    """
    message = f"syntax error: {error}"
    if error.position is None or not (0 <= error.position <= len(text)):
        return message
    line_start = text.rfind("\n", 0, error.position) + 1
    line_end = text.find("\n", error.position)
    if line_end == -1:
        line_end = len(text)
    column = error.position - line_start
    lines = [message]
    if error.line is not None and "\n" in text:
        lines.append(f"  (line {error.line})")
    lines.append("  " + text[line_start:line_end])
    lines.append("  " + " " * column + "^")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HypeR: probabilistic causal what-if and how-to queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the bundled synthetic datasets")

    describe = sub.add_parser("describe", help="describe a dataset (relations, causal graph)")
    describe.add_argument("--dataset", required=True, choices=available_datasets())
    describe.add_argument("--rows", type=int, default=1_000, help="rows to generate")
    describe.add_argument("--seed", type=int, default=0)

    query = sub.add_parser("query", help="run a what-if or how-to query")
    query.add_argument("text", help="the query in the HypeR SQL extension")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=available_datasets(), help="bundled dataset")
    source.add_argument("--csv", help="path to a single CSV file to query")
    query.add_argument("--rows", type=int, default=1_000, help="rows to generate (datasets)")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--key", nargs="+", help="key attribute(s) of the CSV relation")
    query.add_argument("--relation-name", default=None, help="relation name for the CSV data")
    query.add_argument(
        "--variant",
        default=Variant.HYPER,
        choices=list(Variant.ALL),
        help="engine variant (hyper, hyper-nb, hyper-sampled, indep)",
    )
    query.add_argument("--sample-size", type=int, default=None)
    query.add_argument("--regressor", default="forest", choices=["forest", "linear", "ridge"])
    query.add_argument(
        "--backend",
        default=None,
        choices=["rows", "columnar"],
        help="relational execution backend (default: columnar, or $REPRO_BACKEND)",
    )
    query.add_argument("--exhaustive", action="store_true", help="use Opt-HowTo for how-to queries")
    query.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    query.add_argument(
        "--trace",
        action="store_true",
        help="print the query's span tree (parse, cache, execute, shard workers)",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=None,
        help="evaluate through a pool of N shard worker processes "
        "(block-decomposition sharding; answers are identical)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve queries over HTTP (GET /health, GET /stats, POST /query, POST /batch)",
    )
    serve.add_argument("--dataset", required=True, choices=available_datasets())
    serve.add_argument("--rows", type=int, default=1_000, help="rows to generate")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--variant",
        default=Variant.HYPER,
        choices=list(Variant.ALL),
        help="engine variant (hyper, hyper-nb, hyper-sampled, indep)",
    )
    serve.add_argument("--sample-size", type=int, default=None)
    serve.add_argument("--regressor", default="forest", choices=["forest", "linear", "ridge"])
    serve.add_argument(
        "--backend",
        default=None,
        choices=["rows", "columnar"],
        help="relational execution backend (default: columnar, or $REPRO_BACKEND)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="worker count for POST /batch"
    )
    serve.add_argument(
        "--execution",
        default="threads",
        choices=["threads", "processes"],
        help="batch execution mode: in-process threads (default) or a "
        "persistent pool of shard worker processes",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of shards/worker processes with --execution processes "
        "(default: --workers, else CPU count capped at 8)",
    )
    serve.add_argument(
        "--async",
        dest="async_server",
        action="store_true",
        help="serve through the asyncio front-end with admission control "
        "(keep-alive, bounded queueing, 429 on overload, streaming /batch)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="async front-end: concurrent query executions admitted "
        "(default: --workers, else CPU count capped at 8)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="async front-end: bounded admission queue beyond --max-inflight; "
        "excess requests get 429 + Retry-After (default: 2x max-inflight)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="async front-end: seconds to wait for in-flight requests on "
        "SIGTERM/SIGINT before giving up",
    )
    serve.add_argument(
        "--warm-query",
        action="append",
        default=None,
        metavar="TEXT",
        help="async front-end: query text to prepare() at startup so the "
        "first request hits warm caches (repeatable)",
    )
    serve.add_argument(
        "--jobs-dir",
        default=None,
        metavar="DIR",
        help="enable the durable async job service (POST /v1/jobs): directory "
        "holding the crash-safe job journal, replayed on restart (single and "
        "coordinator roles)",
    )
    serve.add_argument(
        "--jobs-workers",
        type=int,
        default=1,
        help="background job executor threads (with --jobs-dir; default 1)",
    )
    serve.add_argument(
        "--role",
        default="single",
        choices=["single", "coordinator", "shard"],
        help="cluster role: single (default) serves the whole database "
        "locally; shard serves one partition slice's internal /v1/partial; "
        "coordinator scatter-gathers the shards behind the unchanged public "
        "API (answers are bitwise-identical to single)",
    )
    serve.add_argument(
        "--cluster-config",
        default=None,
        metavar="PATH",
        help="cluster topology JSON (n_shards, nodes, coordinator — see "
        "repro.cluster.topology); required for --role coordinator/shard",
    )
    serve.add_argument(
        "--node-index",
        type=int,
        default=None,
        help="with --role shard: this node's index into the topology's "
        "nodes list (determines the owned shard and the bind address)",
    )

    jobs = sub.add_parser(
        "jobs",
        help="submit and manage durable server-side jobs (/v1/jobs)",
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def _jobs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8000)
        p.add_argument(
            "--client-id",
            default="",
            help="X-Client-Id for job ownership and quotas "
            "(default: server-assigned anonymous id)",
        )
        p.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    submit = jobs_sub.add_parser(
        "submit", help="enqueue one query (or several, as a batch job)"
    )
    submit.add_argument("text", nargs="+", help="query text(s) in the SQL extension")
    submit.add_argument("--priority", default="normal", choices=["high", "normal", "low"])
    submit.add_argument(
        "--run-at-generation",
        type=int,
        default=None,
        help="defer execution until the store has committed this generation",
    )
    submit.add_argument("--exhaustive", action="store_true", help="Opt-HowTo for how-to queries")
    submit.add_argument(
        "--wait",
        action="store_true",
        help="follow the job's event stream and exit when it finishes",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="with --wait: seconds to wait for the job to finish",
    )
    _jobs_common(submit)

    status = jobs_sub.add_parser("status", help="show a job's current status")
    status.add_argument("job_id")
    _jobs_common(status)

    result = jobs_sub.add_parser("result", help="fetch a finished job's result document")
    result.add_argument("job_id")
    _jobs_common(result)

    cancel = jobs_sub.add_parser("cancel", help="request cancellation (idempotent)")
    cancel.add_argument("job_id")
    _jobs_common(cancel)

    listing = jobs_sub.add_parser("list", help="list this client's jobs")
    _jobs_common(listing)
    return parser


def _load_session(args: argparse.Namespace) -> HypeR:
    config = EngineConfig(
        variant=args.variant,
        regressor=args.regressor,
        sample_size=args.sample_size,
        backend=args.backend,
    )
    if args.dataset:
        dataset = make_dataset(args.dataset, **_generator_kwargs(args))
        return HypeR(dataset.database, dataset.causal_dag, config)
    if not args.key:
        raise HypeRError("--key is required when querying a CSV file")
    name = args.relation_name or "Data"
    relation = read_csv(args.csv, name, key=tuple(args.key))
    return HypeR(Database([relation]), None, config)


def _generator_kwargs(args: argparse.Namespace) -> dict:
    if args.dataset == "student-syn":
        return {"n_students": args.rows, "seed": args.seed}
    if args.dataset == "amazon-syn":
        return {"n_products": args.rows, "seed": args.seed}
    return {"n_rows": args.rows, "seed": args.seed}


def _attach_jobs(service, args: argparse.Namespace) -> None:
    """Wire the durable job service onto a serving store (``--jobs-dir``)."""
    import os

    from .jobs.manager import attach_jobs

    os.makedirs(args.jobs_dir, exist_ok=True)
    manager = attach_jobs(
        service,
        os.path.join(args.jobs_dir, "jobs.journal.jsonl"),
        n_workers=max(1, args.jobs_workers),
    )
    print(
        f"jobs: journal {manager.journal.path} "
        f"({len(manager.queue)} queued after replay, "
        f"{args.jobs_workers} worker(s))",
        flush=True,
    )


def _format_job(status) -> str:
    line = (
        f"{status.job_id}  {status.state:<9}  {status.kind:<5}  "
        f"priority={status.priority}  progress={status.completed}/{status.total}  "
        f"attempts={status.attempts}/{status.max_attempts}"
    )
    if status.error is not None:
        line += f"  error[{status.error_code}]: {status.error}"
    return line


def _jobs_command(args: argparse.Namespace) -> int:
    """``repro jobs submit|status|result|cancel|list`` against a running server."""
    from .api import HypeRClient

    with HypeRClient(args.host, args.port, client_id=args.client_id) as client:
        if args.jobs_command == "submit":
            texts = list(args.text)
            status = client.submit_job(
                texts[0] if len(texts) == 1 else None,
                queries=texts if len(texts) > 1 else None,
                priority=args.priority,
                run_at_generation=args.run_at_generation,
                exhaustive=args.exhaustive,
            )
            if not args.wait:
                if args.json:
                    print(json.dumps(status.to_json(), indent=2))
                else:
                    print(_format_job(status))
                return 0
            for event in client.job_events(status.job_id, timeout_s=args.timeout):
                if args.json:
                    print(json.dumps(event))
                elif not event.get("done"):
                    state = event.get("state", "?")
                    progress = event.get("progress") or {}
                    extra = (
                        f"  {progress.get('completed')}/{progress.get('total')}"
                        if progress
                        else ""
                    )
                    print(f"{status.job_id}  {state}{extra}", flush=True)
            final = client.job(status.job_id)
            if args.json:
                print(json.dumps(final.to_json(), indent=2))
            else:
                print(_format_job(final))
            return 0 if final.state == "succeeded" else 1
        if args.jobs_command == "status":
            status = client.job(args.job_id)
            if args.json:
                print(json.dumps(status.to_json(), indent=2))
            else:
                print(_format_job(status))
            return 0
        if args.jobs_command == "result":
            print(json.dumps(client.job_result(args.job_id), indent=2))
            return 0
        if args.jobs_command == "cancel":
            status = client.cancel_job(args.job_id)
            if args.json:
                print(json.dumps(status.to_json(), indent=2))
            else:
                print(_format_job(status))
            return 0
        # list
        listing = client.jobs()
        if args.json:
            print(json.dumps(listing.to_json(), indent=2))
        else:
            for status in listing.jobs:
                print(_format_job(status))
            print(f"{len(listing.jobs)} job(s)")
        return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --role coordinator|shard``: one node of a cluster.

    Every node regenerates the same dataset deterministically (same
    ``--dataset/--rows/--seed``), so all replicas of a shard materialise the
    identical slice and the coordinator's merged answers are bitwise equal
    to a single-node deployment.
    """
    from .aserve import run_async_server
    from .cluster import ClusterCoordinator, ClusterTopology, ShardServer

    if not args.cluster_config:
        raise HypeRError(f"--role {args.role} requires --cluster-config")
    topology = ClusterTopology.load(args.cluster_config)
    config = EngineConfig(
        variant=args.variant,
        regressor=args.regressor,
        sample_size=args.sample_size,
        backend=args.backend,
    )
    if args.role == "coordinator":
        address = topology.coordinator
        host = address.host if address is not None else args.host
        port = address.port if address is not None else args.port
        coordinator = ClusterCoordinator(topology, config, max_workers=args.workers)
        print(
            f"cluster coordinator: {topology.n_shards} shards over "
            f"{topology.n_nodes} nodes",
            flush=True,
        )
        if args.jobs_dir:
            _attach_jobs(coordinator, args)
        try:
            run_async_server(
                coordinator,
                host=host,
                port=port,
                max_inflight=args.max_inflight,
                queue_depth=args.queue_depth,
                drain_timeout=args.drain_timeout,
                warm_queries=args.warm_query or (),
            )
        finally:
            coordinator.close()
        return 0
    # shard
    if args.node_index is None:
        raise HypeRError("--role shard requires --node-index")
    if not 0 <= args.node_index < topology.n_nodes:
        raise HypeRError(
            f"--node-index {args.node_index} out of range for a "
            f"{topology.n_nodes}-node topology"
        )
    dataset = make_dataset(args.dataset, **_generator_kwargs(args))
    address = topology.nodes[args.node_index]
    shard = ShardServer(
        dataset.database,
        dataset.causal_dag,
        config,
        shard_index=topology.shard_of_node(args.node_index),
        n_shards=topology.n_shards,
        max_workers=args.workers,
    )
    print(
        f"cluster shard node {args.node_index} (shard "
        f"{shard.shard_index}/{topology.n_shards}) over dataset "
        f"{args.dataset!r} ({dataset.database.total_rows} rows)",
        flush=True,
    )
    try:
        run_async_server(
            shard.service,
            host=address.host,
            port=address.port,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            drain_timeout=args.drain_timeout,
            warm_queries=args.warm_query or (),
            app_factory=shard.app_factory,
        )
    finally:
        shard.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # stdout was closed by a downstream reader (e.g. ``repro ... | head``);
        # devnull the fd so the interpreter's final flush can't raise again
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the conventional exit code


def _dispatch(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            for name in available_datasets():
                print(name)
            return 0
        if args.command == "describe":
            dataset = make_dataset(args.dataset, **_generator_kwargs(args))
            print(dataset.summary())
            print(dataset.description)
            print()
            print(dataset.database.describe())
            print()
            print("Causal edges:")
            for edge in dataset.causal_dag.edges:
                marker = " (cross-tuple)" if edge.cross_tuple else ""
                print(f"  {edge.source} -> {edge.target}{marker}")
            return 0
        if args.command == "jobs":
            return _jobs_command(args)
        if args.command == "serve":
            if args.role != "single":
                return _serve_cluster(args)
            from .service import HypeRService, serve as run_server

            dataset = make_dataset(args.dataset, **_generator_kwargs(args))
            config = EngineConfig(
                variant=args.variant,
                regressor=args.regressor,
                sample_size=args.sample_size,
                backend=args.backend,
            )
            service = HypeRService(
                dataset.database,
                dataset.causal_dag,
                config,
                max_workers=args.workers,
                execution=args.execution,
                n_shards=args.shards,
            )
            print(
                f"serving dataset {args.dataset!r} ({dataset.database.total_rows} rows)",
                flush=True,
            )
            if args.async_server:
                from .aserve import run_async_server

                if args.jobs_dir:
                    _attach_jobs(service, args)
                # warm-up (start_pool + prepare) happens inside the runner,
                # before any executor thread exists
                try:
                    run_async_server(
                        service,
                        host=args.host,
                        port=args.port,
                        max_inflight=args.max_inflight,
                        queue_depth=args.queue_depth,
                        drain_timeout=args.drain_timeout,
                        warm_queries=args.warm_query or (),
                    )
                finally:
                    service.close()  # idempotent; covers startup failures
                return 0
            if args.execution == "processes":
                # start workers before the threading HTTP server exists so
                # the pool can fork from a single-threaded parent (job
                # executor threads start after, for the same reason)
                service.start_pool()
                print(f"execution: {service.n_shards} shard worker processes", flush=True)
            if args.jobs_dir:
                _attach_jobs(service, args)
            try:
                run_server(service, host=args.host, port=args.port)
            finally:
                service.close()
            return 0
        # query
        session = _load_session(args)
        parsed = session.parse(args.text)
        from .core.queries import HowToQuery

        exhaustive = isinstance(parsed, HowToQuery) and args.exhaustive
        trace_ctx = None
        if args.trace:
            from .obs.trace import TraceContext

            trace_ctx = TraceContext()
        if args.shards is not None:
            with session.service(execution="processes", n_shards=args.shards) as service:
                result = service.execute(parsed, exhaustive=exhaustive, trace=trace_ctx)
        elif trace_ctx is not None:
            # tracing spans live in the service layer; run the query through
            # an in-process service so the tree is populated
            with session.service() as service:
                result = service.execute(parsed, exhaustive=exhaustive, trace=trace_ctx)
        elif exhaustive:
            result = session.how_to(parsed, exhaustive=True)
        else:
            result = session.execute(args.text)
        if args.json:
            # result.payload() serializes through the v1 wire schemas, so
            # --json output and the HTTP API emit the identical shape
            payload = result.payload()
            if trace_ctx is not None:
                payload["trace"] = trace_ctx.to_wire()
            print(json.dumps(payload, indent=2, default=str))
        else:
            print(result.summary())
            if trace_ctx is not None:
                from .obs.trace import format_span_tree

                print()
                print(format_span_tree(trace_ctx.to_wire()))
        return 0
    except QuerySyntaxError as error:
        print(format_syntax_error(getattr(args, "text", ""), error), file=sys.stderr)
        return 2
    except HypeRError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
