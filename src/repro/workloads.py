"""Random query workloads for benchmarking.

The paper's scaling experiments (Figure 12) average runtimes "over five
different queries".  This module provides that workload machinery: a
:class:`WorkloadGenerator` that draws random — but always semantically valid —
what-if and how-to queries against a :class:`~repro.datasets.base.SyntheticDataset`
(or any database + UseSpec pair), varying the updated attribute, the update
function, the When/For selectivity and the output aggregate.

The generator is deterministic given its seed so benchmark workloads are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from .core.queries import HowToQuery, LimitConstraint, WhatIfQuery
from .core.updates import AddConstant, AttributeUpdate, MultiplyBy, SetTo, UpdateFunction
from .exceptions import HypeRError
from .relational.database import Database
from .relational.expressions import Expr, post, pre
from .relational.predicates import TRUE
from .relational.relation import Relation
from .relational.view import UseSpec

__all__ = ["WorkloadGenerator"]


@dataclass
class WorkloadGenerator:
    """Draws random valid what-if / how-to queries over a relevant view.

    Parameters
    ----------
    database / use:
        The database and ``Use`` specification defining the relevant view the
        queries will run against.
    output_attribute:
        The attribute whose post-update value queries aggregate (must be a
        numeric view column).
    update_candidates:
        The mutable view attributes the generator may pick as update attributes.
        Defaults to every mutable numeric attribute except the output.
    seed:
        Seed of the internal random generator.
    """

    database: Database
    use: UseSpec
    output_attribute: str
    update_candidates: Sequence[str] | None = None
    seed: int = 0
    _view: Relation = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._view = self.use.build(self.database)
        self._rng = np.random.default_rng(self.seed)
        if self.output_attribute not in self._view.schema:
            raise HypeRError(
                f"output attribute {self.output_attribute!r} is not a view column"
            )
        if self.update_candidates is None:
            self.update_candidates = [
                name
                for name in self._view.attribute_names
                if name != self.output_attribute
                and self._view.schema.is_mutable(name)
                and self._view.schema.domain(name).is_numeric
            ]
        missing = [a for a in self.update_candidates if a not in self._view.schema]
        if missing:
            raise HypeRError(f"update candidates {missing} are not view columns")
        if not self.update_candidates:
            raise HypeRError("no usable update attributes for the workload generator")

    # -- helpers -------------------------------------------------------------------

    @classmethod
    def for_dataset(cls, dataset, output_attribute: str, **kwargs) -> "WorkloadGenerator":
        """Convenience constructor from a :class:`SyntheticDataset`."""
        return cls(
            database=dataset.database,
            use=dataset.default_use,
            output_attribute=output_attribute,
            **kwargs,
        )

    def _observed(self, attribute: str) -> np.ndarray:
        values = [v for v in self._view.column_view(attribute) if v is not None]
        return np.asarray(values, dtype=float)

    def _random_update_function(self, attribute: str) -> UpdateFunction:
        observed = self._observed(attribute)
        if observed.size == 0:
            return MultiplyBy(1.1)
        kind = self._rng.choice(["set", "multiply", "add"])
        if kind == "set":
            quantile = float(self._rng.uniform(0.1, 0.9))
            return SetTo(float(np.quantile(observed, quantile)))
        if kind == "multiply":
            return MultiplyBy(float(self._rng.uniform(0.7, 1.3)))
        spread = float(observed.std()) or 1.0
        return AddConstant(float(self._rng.uniform(-spread, spread)))

    def _random_selection(self, attribute: str, selectivity: float) -> Expr:
        """A Pre predicate on ``attribute`` keeping roughly ``selectivity`` of tuples."""
        observed = self._observed(attribute)
        if observed.size == 0:
            return TRUE
        threshold = float(np.quantile(observed, 1.0 - selectivity))
        return pre(attribute) >= threshold

    def _pick_attribute(self, exclude: Sequence[str] = ()) -> str:
        options = [a for a in self.update_candidates if a not in exclude]
        if not options:
            options = list(self.update_candidates)
        return str(self._rng.choice(options))

    # -- query generation -----------------------------------------------------------

    def what_if(
        self,
        *,
        aggregate: str | None = None,
        when_selectivity: float | None = None,
        with_post_condition: bool = False,
    ) -> WhatIfQuery:
        """Draw one random what-if query."""
        attribute = self._pick_attribute()
        aggregate = aggregate or str(self._rng.choice(["avg", "sum", "count"]))
        when = TRUE
        if when_selectivity is not None:
            when = self._random_selection(attribute, when_selectivity)
        for_clause: Expr = TRUE
        if with_post_condition:
            observed = self._observed(self.output_attribute)
            threshold = float(np.quantile(observed, 0.5)) if observed.size else 0.0
            for_clause = post(self.output_attribute) > threshold
        return WhatIfQuery(
            use=self.use,
            updates=[AttributeUpdate(attribute, self._random_update_function(attribute))],
            output_attribute=self.output_attribute,
            output_aggregate=aggregate,
            when=when,
            for_clause=for_clause,
            name=f"workload-whatif-{attribute}",
        )

    def how_to(
        self,
        *,
        n_attributes: int = 1,
        aggregate: str = "avg",
        maximize: bool = True,
        candidate_buckets: int = 3,
    ) -> HowToQuery:
        """Draw one random how-to query over ``n_attributes`` update attributes."""
        n_attributes = max(1, min(n_attributes, len(self.update_candidates)))
        chosen: list[str] = []
        while len(chosen) < n_attributes:
            chosen.append(self._pick_attribute(exclude=chosen))
        limits = []
        for attribute in chosen:
            observed = self._observed(attribute)
            if observed.size:
                limits.append(
                    LimitConstraint(
                        attribute,
                        lower=float(observed.min()),
                        upper=float(observed.max()),
                    )
                )
        return HowToQuery(
            use=self.use,
            update_attributes=chosen,
            objective_attribute=self.output_attribute,
            objective_aggregate=aggregate,
            maximize=maximize,
            limits=limits,
            candidate_buckets=candidate_buckets,
            candidate_multipliers=(),
            name=f"workload-howto-{'-'.join(chosen)}",
        )

    def what_if_batch(self, n_queries: int, **kwargs) -> list[WhatIfQuery]:
        """A reproducible batch of what-if queries (e.g. the paper's "five queries")."""
        return [self.what_if(**kwargs) for _ in range(n_queries)]

    def what_if_template_batch(
        self,
        n_queries: int,
        *,
        factor_range: tuple[float, float] = (0.8, 1.3),
        **kwargs,
    ) -> list[WhatIfQuery]:
        """``n_queries`` parameter variants of *one* what-if template.

        Unlike :meth:`what_if_batch` (independent random queries), every
        query here shares one logical plan — same view, update attribute and
        clause structure — and differs only in the multiplicative update
        constant, evenly spread over ``factor_range``.  This is the
        repeated-template suite shape the service layer's fingerprint-keyed
        caches (:mod:`repro.service`) are built for, and what a dashboard
        sweeping one knob sends.
        """
        template = self.what_if(**kwargs)
        attribute = template.update_attributes[0]
        low, high = factor_range
        queries = []
        for i in range(n_queries):
            fraction = i / max(1, n_queries - 1)
            factor = low + (high - low) * fraction
            queries.append(
                template.with_updates([AttributeUpdate(attribute, MultiplyBy(factor))])
            )
        return queries

    def how_to_batch(self, n_queries: int, **kwargs) -> list[HowToQuery]:
        return [self.how_to(**kwargs) for _ in range(n_queries)]
