"""Per-client weighted fair priority queue with quotas.

Scheduling order is ``(priority, client virtual time, submit seq)``:

- **priority** — three levels (``high=0, normal=1, low=2``); a queued
  high-priority job always leases before any normal one.
- **client virtual time** — start-time weighted fair queuing *within* a
  priority level.  Each lease advances the leasing client's virtual clock by
  ``1 / weight`` from the global virtual floor, so a client that just got a
  slot moves behind clients that have been waiting — no single client can
  monopolise the executor by submitting in bulk, and a client with weight 2
  drains twice as fast as one with weight 1.
- **submit seq** — FIFO tie-break, so scheduling is deterministic.

Quotas are enforced per client id at two points: **submit** rejects when the
client is over its queued-job or queued-payload-bytes budget
(:class:`QuotaExceeded` → HTTP 429), and **lease** skips clients already at
their running-lease cap (their jobs stay queued; others proceed).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["ClientQuotas", "Job", "JobQueue", "QuotaExceeded", "PRIORITIES"]

#: wire name → scheduling level (lower leases first)
PRIORITIES = {"high": 0, "normal": 1, "low": 2}
PRIORITY_NAMES = {level: name for name, level in PRIORITIES.items()}

#: job lifecycle states (terminal: succeeded / failed / cancelled)
STATES = ("queued", "running", "succeeded", "failed", "cancelled")
TERMINAL_STATES = frozenset({"succeeded", "failed", "cancelled"})


class QuotaExceeded(RuntimeError):
    """A submit would push the client past one of its quotas."""

    def __init__(self, message: str, *, quota: str, limit: int):
        super().__init__(message)
        self.quota = quota
        self.limit = limit


@dataclass(frozen=True)
class ClientQuotas:
    """Per-client budgets (every client gets the same ones)."""

    max_queued: int = 64
    max_running: int = 2
    max_queued_bytes: int = 8 * 1024 * 1024
    weight: float = 1.0


@dataclass
class Job:
    """One submitted job — scheduling fields plus execution bookkeeping."""

    job_id: str
    client_id: str
    kind: str  # "query" | "batch"
    queries: list[str]
    exhaustive: bool = False
    priority: int = PRIORITIES["normal"]
    run_at_generation: int | None = None
    payload_bytes: int = 0
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = 3
    completed: int = 0
    created_unix: float = 0.0
    finished_unix: float | None = None
    error: str | None = None
    error_code: str | None = None
    generation: int | None = None
    submit_seq: int = 0
    cancel_requested: bool = False
    #: monotonic gate for retry backoff (not journaled; recomputed on replay)
    not_before: float = 0.0
    #: weighted-fair virtual finish time, assigned at enqueue
    vtime: float = field(default=0.0, repr=False)

    @property
    def total(self) -> int:
        return len(self.queries)

    @property
    def priority_name(self) -> str:
        return PRIORITY_NAMES[self.priority]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobQueue:
    """The queued-job set, fair scheduler, and quota ledger.

    Thread-safe; the owning :class:`~repro.jobs.manager.JobManager` holds
    its own lock around compound operations, so this class only guards its
    internal counters.
    """

    def __init__(self, quotas: ClientQuotas | None = None):
        self.quotas = quotas or ClientQuotas()
        self._lock = threading.Lock()
        self._queued: dict[str, Job] = {}  # job_id → job, insertion-ordered
        self._queued_per_client: dict[str, int] = {}
        self._queued_bytes_per_client: dict[str, int] = {}
        self._running_per_client: dict[str, int] = {}
        self._client_vtime: dict[str, float] = {}
        self._global_vtime = 0.0

    # -- submit ------------------------------------------------------------------------

    def check_quota(self, client_id: str, payload_bytes: int) -> None:
        """Raise :class:`QuotaExceeded` if a submit would bust a budget."""
        quotas = self.quotas
        with self._lock:
            queued = self._queued_per_client.get(client_id, 0)
            if queued >= quotas.max_queued:
                raise QuotaExceeded(
                    f"client {client_id!r} already has {queued} queued job(s) "
                    f"(quota {quotas.max_queued})",
                    quota="max_queued",
                    limit=quotas.max_queued,
                )
            queued_bytes = self._queued_bytes_per_client.get(client_id, 0)
            if queued_bytes + payload_bytes > quotas.max_queued_bytes:
                raise QuotaExceeded(
                    f"client {client_id!r} has {queued_bytes} queued payload "
                    f"byte(s); {payload_bytes} more exceeds the quota "
                    f"{quotas.max_queued_bytes}",
                    quota="max_queued_bytes",
                    limit=quotas.max_queued_bytes,
                )

    def enqueue(self, job: Job, *, enforce_quota: bool = True) -> None:
        """Admit ``job`` to the queued set (quota-checked unless replaying)."""
        if enforce_quota:
            self.check_quota(job.client_id, job.payload_bytes)
        with self._lock:
            floor = max(
                self._global_vtime, self._client_vtime.get(job.client_id, 0.0)
            )
            weight = self.quotas.weight or 1.0
            job.vtime = floor + 1.0 / weight
            self._client_vtime[job.client_id] = job.vtime
            job.state = "queued"
            self._queued[job.job_id] = job
            self._queued_per_client[job.client_id] = (
                self._queued_per_client.get(job.client_id, 0) + 1
            )
            self._queued_bytes_per_client[job.client_id] = (
                self._queued_bytes_per_client.get(job.client_id, 0)
                + job.payload_bytes
            )

    # -- lease -------------------------------------------------------------------------

    def lease(self, *, generation: int, now: float) -> Job | None:
        """The next eligible job by ``(priority, vtime, seq)``, or ``None``.

        A job is eligible when its client is under the running cap, its
        retry backoff has elapsed, and the store has reached its
        ``run_at_generation`` (if any).  Leasing moves the job out of the
        queued set and counts a running lease against its client.
        """
        with self._lock:
            best: Job | None = None
            for job in self._queued.values():
                if job.not_before > now:
                    continue
                if (
                    job.run_at_generation is not None
                    and generation < job.run_at_generation
                ):
                    continue
                running = self._running_per_client.get(job.client_id, 0)
                if running >= self.quotas.max_running:
                    continue
                key = (job.priority, job.vtime, job.submit_seq)
                if best is None or key < (best.priority, best.vtime, best.submit_seq):
                    best = job
            if best is None:
                return None
            self._remove_queued(best)
            self._global_vtime = max(self._global_vtime, best.vtime)
            best.state = "running"
            self._running_per_client[best.client_id] = (
                self._running_per_client.get(best.client_id, 0) + 1
            )
            return best

    def requeue(self, job: Job) -> None:
        """Return a leased job to the queue (retry after a crash/failure)."""
        with self._lock:
            self._release_lease(job)
        self.enqueue(job, enforce_quota=False)

    def finish(self, job: Job) -> None:
        """Drop a leased job's running count (it reached a terminal state)."""
        with self._lock:
            self._release_lease(job)

    def remove(self, job: Job) -> bool:
        """Take a still-queued job out (cancellation). False if not queued."""
        with self._lock:
            if job.job_id not in self._queued:
                return False
            self._remove_queued(job)
            return True

    def _remove_queued(self, job: Job) -> None:
        del self._queued[job.job_id]
        client = job.client_id
        self._queued_per_client[client] = self._queued_per_client.get(client, 1) - 1
        if self._queued_per_client[client] <= 0:
            del self._queued_per_client[client]
        remaining = (
            self._queued_bytes_per_client.get(client, 0) - job.payload_bytes
        )
        if remaining > 0:
            self._queued_bytes_per_client[client] = remaining
        else:
            self._queued_bytes_per_client.pop(client, None)

    def _release_lease(self, job: Job) -> None:
        client = job.client_id
        count = self._running_per_client.get(client, 0) - 1
        if count > 0:
            self._running_per_client[client] = count
        else:
            self._running_per_client.pop(client, None)

    # -- introspection -----------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._queued)

    def queued_jobs(self) -> Iterator[Job]:
        with self._lock:
            return iter(list(self._queued.values()))

    @property
    def running_leases(self) -> int:
        with self._lock:
            return sum(self._running_per_client.values())

    def next_not_before(self) -> float | None:
        """The earliest backoff gate among queued jobs (executor sleep hint)."""
        with self._lock:
            gates = [job.not_before for job in self._queued.values() if job.not_before]
            return min(gates) if gates else None

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "queued": len(self._queued),
                "running": sum(self._running_per_client.values()),
                "clients_queued": dict(self._queued_per_client),
                "clients_running": dict(self._running_per_client),
                "queued_bytes": dict(self._queued_bytes_per_client),
            }
