"""Durable asynchronous job service (the CasJobs/MyDB batch-window pattern).

Heavy queries — Opt-HowTo sweeps, large batches — are the wrong fit for a
synchronous HTTP slot guarded by admission control.  This package moves them
to a durable queue with its own scheduler:

- :mod:`.journal` — append-only JSONL write-ahead journal (fsync group
  commit, per-record checksums, replay-on-restart, compaction);
- :mod:`.queue` — per-client weighted fair priority queue with quotas on
  queued jobs, running leases, and queued payload bytes;
- :mod:`.executor` — background workers that lease jobs, execute them
  against a :class:`~repro.service.session.HypeRService` or
  :class:`~repro.cluster.coordinator.ClusterCoordinator`, checkpoint
  progress, honor cancellation, and retry crashed leases with exponential
  backoff;
- :mod:`.results` — bounded per-client result store with TTL retention and
  a GC sweeper;
- :mod:`.manager` — :class:`JobManager`, the façade tying them together;
- :mod:`.api` — request/payload glue shared by both HTTP front doors.

The durability contract: once ``POST /v1/jobs`` has answered, the job
survives ``kill -9``.  On restart the journal replays to the exact same
terminal state, and results are bitwise-identical to a synchronous
``execute`` of the same queries.
"""

from .journal import Journal, JournalError, JournalRecord
from .manager import JobManager, attach_jobs
from .queue import ClientQuotas, JobQueue, QuotaExceeded
from .results import ResultStore

__all__ = [
    "ClientQuotas",
    "Journal",
    "JournalError",
    "JournalRecord",
    "JobManager",
    "JobQueue",
    "QuotaExceeded",
    "ResultStore",
    "attach_jobs",
]
