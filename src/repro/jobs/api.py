"""Front-door glue for the ``/v1/jobs`` surface.

Both HTTP servers (the threaded :mod:`repro.service.server` door and the
asyncio :mod:`repro.aserve` door) route job endpoints through these
helpers, so submit/status/result/cancel answer byte-identically on either.
Every helper raises :class:`~repro.api.endpoints.ApiError` for protocol
failures; the front doors already map those to envelopes.

The manager is discovered on ``service.jobs`` — a service started without
``--jobs-dir`` answers 503 ``unavailable`` on the whole surface rather
than 404, so clients can distinguish "not enabled here" from a typo'd
path.

**Ownership.** A job submitted with an explicit ``X-Client-Id`` is scoped
to that id: status/result/events/cancel from any other client id answer
404 ``not_found``, indistinguishable from an unknown id, exactly like
``GET /v1/jobs`` listing.  Jobs submitted *without* the header get a
per-connection ``anon-…`` owner; those stay **capability-based** — the
random job id is the credential — because the threaded door mints a fresh
anonymous id per connection, so an anonymous submitter could otherwise
never poll its own job.  Ids beginning with ``anon`` are reserved for
that fallback.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..api.endpoints import ApiError
from ..api.schemas import (
    ErrorEnvelope,
    JobListAnswer,
    JobStatus,
    JobSubmitRequest,
    WireFormatError,
)
from .manager import JobManager, JobNotFound
from .queue import QuotaExceeded

__all__ = [
    "manager_for",
    "parse_job_submit",
    "submit_job_payload",
    "job_status_payload",
    "job_result_payload",
    "cancel_job_payload",
    "list_jobs_payload",
    "job_events",
    "iter_job_events",
]


def manager_for(service: Any) -> JobManager:
    """The service's attached :class:`JobManager`, or 503 when jobs are off."""
    manager = getattr(service, "jobs", None)
    if manager is None:
        raise ApiError(
            503,
            ErrorEnvelope(
                "unavailable",
                "the job service is not enabled on this server "
                "(start it with --jobs-dir)",
            ),
        )
    return manager


def parse_job_submit(body: dict[str, Any]) -> JobSubmitRequest:
    """Decode and validate a ``POST /v1/jobs`` body (schema violations are 400)."""
    try:
        return JobSubmitRequest.from_json(body)
    except WireFormatError as error:
        raise ApiError(400, ErrorEnvelope("bad_request", str(error))) from None


def _status_payload(manager: JobManager, job: Any) -> dict[str, Any]:
    return JobStatus.from_job(
        job, result_available=job.job_id in manager.results
    ).to_json()


def submit_job_payload(
    service: Any, request: JobSubmitRequest, *, client_id: str
) -> dict[str, Any]:
    """Durably accept a job submit; the 202 body is the initial status.

    A per-client quota violation maps to 429 ``rate_limited`` with the
    violated quota named in the detail, mirroring the admission
    controller's interactive rejections.
    """
    manager = manager_for(service)
    try:
        job = manager.submit(
            client_id=client_id,
            kind=request.kind,
            queries=list(request.all_queries),
            priority=request.priority,
            run_at_generation=request.run_at_generation,
            exhaustive=request.exhaustive,
        )
    except QuotaExceeded as error:
        raise ApiError(
            429,
            ErrorEnvelope(
                "rate_limited",
                str(error),
                {"quota": error.quota, "limit": error.limit},
            ),
        ) from None
    return _status_payload(manager, job)


def _anonymous(owner: str) -> bool:
    """True for the doors' per-connection fallback ids (``anon``/``anon-…``)."""
    return owner == "anon" or owner.startswith("anon-")


def _get_job(manager: JobManager, job_id: str, client_id: str | None) -> Any:
    """Look up ``job_id`` and enforce ownership.

    An explicitly-owned job read with the wrong (or no) client id answers
    the same 404 as an unknown id, so probing cannot distinguish "not
    yours" from "never existed".  Anonymously-owned jobs skip the check
    (capability-based; see the module docstring).  ``client_id=None``
    bypasses enforcement for in-process callers.
    """
    try:
        job = manager.get(job_id)
    except JobNotFound:
        raise ApiError(
            404, ErrorEnvelope("not_found", f"unknown job {job_id!r}")
        ) from None
    if (
        client_id is not None
        and not _anonymous(job.client_id)
        and client_id != job.client_id
    ):
        raise ApiError(
            404, ErrorEnvelope("not_found", f"unknown job {job_id!r}")
        )
    return job


def job_status_payload(
    service: Any, job_id: str, *, client_id: str | None = None
) -> dict[str, Any]:
    """Answer ``GET /v1/jobs/{id}``; unknown, aged-out, or foreign ids are 404."""
    manager = manager_for(service)
    return _status_payload(manager, _get_job(manager, job_id, client_id))


def job_result_payload(
    service: Any, job_id: str, *, client_id: str | None = None
) -> dict[str, Any]:
    """Answer ``GET /v1/jobs/{id}/result``.

    A job that is still in flight answers 404 ``not_found``; a terminal job
    whose result was evicted or expired answers 404 with the distinct code
    ``result_expired`` so callers know re-submitting is the only way back.
    """
    manager = manager_for(service)
    job = _get_job(manager, job_id, client_id)
    payload = manager.results.get(job_id)
    if payload is not None:
        return payload
    if job.terminal:
        if job.state == "succeeded":
            raise ApiError(
                404,
                ErrorEnvelope(
                    "result_expired",
                    f"the result of job {job_id!r} is no longer retained",
                ),
            )
        detail: dict[str, Any] = {"state": job.state}
        if job.error_code is not None:
            detail["error_code"] = job.error_code
        raise ApiError(
            404,
            ErrorEnvelope(
                "not_found",
                f"job {job_id!r} finished {job.state!r} without a result"
                + (f": {job.error}" if job.error else ""),
                detail,
            ),
        )
    raise ApiError(
        404,
        ErrorEnvelope(
            "not_found",
            f"job {job_id!r} is still {job.state!r}; poll its status or "
            "stream its events",
            {"state": job.state},
        ),
    )


def cancel_job_payload(
    service: Any, job_id: str, *, client_id: str | None = None
) -> dict[str, Any]:
    """Answer ``POST /v1/jobs/{id}/cancel``: the post-cancel status.

    Cancelling a queued job is immediate, a running job cooperative, and a
    terminal job a no-op — the call is always safe to retry.
    """
    manager = manager_for(service)
    _get_job(manager, job_id, client_id)
    return _status_payload(manager, manager.cancel(job_id))


def list_jobs_payload(service: Any, *, client_id: str | None) -> dict[str, Any]:
    """Answer ``GET /v1/jobs``: the calling client's jobs, oldest first."""
    manager = manager_for(service)
    statuses = tuple(
        JobStatus.from_job(job, result_available=job.job_id in manager.results)
        for job in manager.list_jobs(client_id)
    )
    return JobListAnswer(jobs=statuses).to_json()


def job_events(
    service: Any, job_id: str, cursor: int = 0, *, client_id: str | None = None
) -> tuple[list[dict[str, Any]], bool]:
    """One non-blocking poll of a job's event log (the async door's unit)."""
    manager = manager_for(service)
    _get_job(manager, job_id, client_id)
    try:
        return manager.events_since(job_id, cursor)
    except JobNotFound:
        raise ApiError(
            404, ErrorEnvelope("not_found", f"unknown job {job_id!r}")
        ) from None


def iter_job_events(
    service: Any,
    job_id: str,
    *,
    client_id: str | None = None,
    timeout: float = 30.0,
    poll_seconds: float = 0.5,
) -> Iterator[dict[str, Any]]:
    """Blocking NDJSON event iterator for the threaded door.

    Yields every event from the start of the job's log, blocking for new
    ones until the job is terminal or ``timeout`` elapses without news; the
    stream always finishes with a ``{"done": true, "terminal": <state>}``
    line (``terminal`` is ``null`` when the stream timed out first).
    """
    import time as _time

    manager = manager_for(service)
    _get_job(manager, job_id, client_id)
    cursor = 0
    deadline = _time.monotonic() + timeout
    terminal = False
    while True:
        try:
            events, terminal = manager.wait_events(
                job_id, cursor, timeout=poll_seconds
            )
        except JobNotFound:
            break  # aged out mid-stream: finish the stream cleanly
        for event in events:
            yield event
        cursor += len(events)
        if terminal:
            break
        if _time.monotonic() >= deadline:
            break
    yield {"done": True, "job_id": job_id, "terminal": _terminal_state(manager, job_id)}


def _terminal_state(manager: Any, job_id: str) -> str | None:
    """The job's terminal state name for a stream's ``done`` line, if any."""
    try:
        job = manager.get(job_id)
    except JobNotFound:
        return None
    return job.state if job.terminal else None
