"""Bounded per-client result store with TTL retention.

Terminal job results live here until a client fetches them — or until
retention takes them: each client has a byte budget (oldest results evicted
first when a new one would bust it) and every result has a TTL.  The
:class:`~repro.jobs.manager.JobManager` runs :meth:`sweep` from its GC
thread and journals each eviction, so a replayed journal converges to the
same retained set.

Payload size is measured as the canonical JSON encoding — the same bytes a
``GET /v1/jobs/{id}/result`` response would carry.
"""

from __future__ import annotations

import json
import threading
from typing import Any

__all__ = ["ResultStore", "StoredResult"]


class StoredResult:
    __slots__ = ("job_id", "client_id", "payload", "nbytes", "stored_unix")

    def __init__(
        self,
        job_id: str,
        client_id: str,
        payload: dict[str, Any],
        nbytes: int,
        stored_unix: float,
    ):
        self.job_id = job_id
        self.client_id = client_id
        self.payload = payload
        self.nbytes = nbytes
        self.stored_unix = stored_unix


class ResultStore:
    """Retained terminal-job results, bounded per client and by TTL."""

    def __init__(
        self,
        *,
        max_bytes_per_client: int = 32 * 1024 * 1024,
        ttl_seconds: float = 3600.0,
    ):
        self.max_bytes_per_client = max_bytes_per_client
        self.ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        self._results: dict[str, StoredResult] = {}  # insertion-ordered
        self._bytes_per_client: dict[str, int] = {}
        self.evictions = 0
        self.expirations = 0

    @staticmethod
    def measure(payload: dict[str, Any]) -> int:
        return len(json.dumps(payload, separators=(",", ":")).encode("utf-8"))

    def put(
        self, job_id: str, client_id: str, payload: dict[str, Any], *, now: float
    ) -> list[str]:
        """Store a result; returns job ids evicted to fit the byte budget."""
        nbytes = self.measure(payload)
        evicted: list[str] = []
        with self._lock:
            used = self._bytes_per_client.get(client_id, 0)
            if nbytes <= self.max_bytes_per_client:
                # evict this client's oldest results until the new one fits
                for stored in list(self._results.values()):
                    if used + nbytes <= self.max_bytes_per_client:
                        break
                    if stored.client_id != client_id:
                        continue
                    self._drop(stored)
                    used = self._bytes_per_client.get(client_id, 0)
                    self.evictions += 1
                    evicted.append(stored.job_id)
            if used + nbytes > self.max_bytes_per_client:
                # the result alone busts the budget: store nothing, the job
                # status stays terminal with result_available=False
                self.evictions += 1
                evicted.append(job_id)
                return evicted
            self._results[job_id] = StoredResult(
                job_id, client_id, payload, nbytes, now
            )
            self._bytes_per_client[client_id] = used + nbytes
        return evicted

    def get(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            stored = self._results.get(job_id)
            return stored.payload if stored is not None else None

    def discard(self, job_id: str) -> bool:
        """Drop one result (replayed GC record or explicit cancel cleanup)."""
        with self._lock:
            stored = self._results.get(job_id)
            if stored is None:
                return False
            self._drop(stored)
            return True

    def sweep(self, *, now: float) -> list[str]:
        """Expire results past their TTL; returns the expired job ids."""
        expired: list[str] = []
        with self._lock:
            for stored in list(self._results.values()):
                if now - stored.stored_unix >= self.ttl_seconds:
                    self._drop(stored)
                    self.expirations += 1
                    expired.append(stored.job_id)
        return expired

    def _drop(self, stored: StoredResult) -> None:
        del self._results[stored.job_id]
        remaining = self._bytes_per_client.get(stored.client_id, 0) - stored.nbytes
        if remaining > 0:
            self._bytes_per_client[stored.client_id] = remaining
        else:
            self._bytes_per_client.pop(stored.client_id, None)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._results

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._bytes_per_client.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "results": len(self._results),
                "bytes": sum(self._bytes_per_client.values()),
                "bytes_per_client": dict(self._bytes_per_client),
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
