""":class:`JobManager` — journal + queue + executor + results, one façade.

The manager owns the durable job table.  Every externally visible state
transition is journaled *before* it is acknowledged:

========================  =========================================================
record                    meaning
========================  =========================================================
``submit``                the job exists (fsynced before ``POST /v1/jobs`` answers)
``lease``                 attempt *n* started (fsynced — crash ⇒ replay retries)
``progress``              checkpoint after each query (unsynced; loss = re-run)
``cancel_request``        cancellation asked while running
``finish``                terminal state + result payload (fsynced)
``result_gc``             a retained result expired or was evicted (unsynced)
``drop``                  a terminal job aged out of the status table
``snapshot``              compaction record: one live job's full state
========================  =========================================================

**Replay** (:meth:`JobManager.open`) folds the records back into the job
table: queued jobs re-enter the queue, running jobs become *crashed leases*
(requeued with exponential backoff while attempts remain, failed
otherwise), terminal jobs restore their retained results.  Because job
execution is deterministic, a re-executed crashed lease produces results
bitwise-identical to what the synchronous path would have answered.

The manager feeds interactive admission: `HypeRService.serving_signals()`
adds :meth:`background_load` — leases currently held minus leases actually
inside the engine (those already count as in-flight) — so a front door
sees queued-behind-jobs pressure before it over-admits.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Callable, Iterator

from contextlib import contextmanager

from .executor import JobExecutor
from .journal import Journal, JournalRecord
from .queue import (
    PRIORITIES,
    PRIORITY_NAMES,
    TERMINAL_STATES,
    ClientQuotas,
    Job,
    JobQueue,
    QuotaExceeded,
)
from .results import ResultStore

__all__ = ["JobManager", "JobNotFound", "attach_jobs"]


class JobNotFound(KeyError):
    """No job with the requested id (never existed, or aged out)."""

    def __init__(self, job_id: str):
        super().__init__(job_id)
        self.job_id = job_id


def _new_job_id() -> str:
    return "job-" + uuid.uuid4().hex[:16]


class JobManager:
    """The durable async job service for one serving store."""

    def __init__(
        self,
        service: Any,
        journal_path: str,
        *,
        quotas: ClientQuotas | None = None,
        n_workers: int = 1,
        retry_budget: int = 3,
        retry_base_seconds: float = 0.25,
        retry_cap_seconds: float = 30.0,
        result_ttl_seconds: float = 3600.0,
        result_max_bytes_per_client: int = 32 * 1024 * 1024,
        job_ttl_seconds: float | None = None,
        gc_interval_seconds: float = 5.0,
        compact_threshold: int = 4096,
        max_events_per_job: int = 512,
    ):
        self.service = service
        self.journal = Journal(journal_path)
        self.queue = JobQueue(quotas)
        self.results = ResultStore(
            max_bytes_per_client=result_max_bytes_per_client,
            ttl_seconds=result_ttl_seconds,
        )
        self.retry_budget = max(1, int(retry_budget))
        self.retry_base_seconds = retry_base_seconds
        self.retry_cap_seconds = retry_cap_seconds
        self.job_ttl_seconds = (
            job_ttl_seconds if job_ttl_seconds is not None else 4 * result_ttl_seconds
        )
        self.gc_interval_seconds = gc_interval_seconds
        self.compact_threshold = compact_threshold
        self.max_events_per_job = max_events_per_job
        self._jobs: dict[str, Job] = {}
        self._events: dict[str, list[dict[str, Any]]] = {}
        self._cond = threading.Condition()
        self._submit_seq = 0
        self._engine_active = 0
        self._engine_lock = threading.Lock()
        self._closed = False
        self.replayed_jobs = 0
        self.executor = JobExecutor(self, n_workers=n_workers)
        self._gc_stop = threading.Event()
        self._gc_thread: threading.Thread | None = None
        self._register_metrics()

    # -- metrics -----------------------------------------------------------------------

    def _register_metrics(self) -> None:
        from ..obs.metrics import MetricsRegistry

        registry = getattr(self.service, "metrics", None)
        if registry is None:
            registry = MetricsRegistry()
        self.metrics = registry
        self._m_submitted = registry.counter(
            "hyper_jobs_submitted_total",
            "Jobs accepted by POST /v1/jobs",
            labelnames=("priority",),
        )
        self._m_finished = registry.counter(
            "hyper_jobs_finished_total",
            "Jobs reaching a terminal state",
            labelnames=("state",),
        )
        self._m_retries = registry.counter(
            "hyper_jobs_retries_total",
            "Leases requeued after a transient failure or crash",
        )
        self._m_quota_rejections = registry.counter(
            "hyper_jobs_quota_rejections_total",
            "Submits rejected by a per-client quota",
            labelnames=("quota",),
        )
        self._m_exec_seconds = registry.histogram(
            "hyper_jobs_execution_seconds",
            "Wall-clock execution time of successful job attempts",
        )
        registry.register_callback(
            "hyper_jobs_queued",
            "Jobs currently queued",
            lambda: float(len(self.queue)),
        )
        registry.register_callback(
            "hyper_jobs_running",
            "Leases currently held by executor workers",
            lambda: float(self.queue.running_leases),
        )
        registry.register_callback(
            "hyper_jobs_result_bytes",
            "Bytes retained in the per-client result store",
            lambda: float(self.results.total_bytes),
        )
        registry.register_callback(
            "hyper_jobs_journal_records",
            "Live records in the job journal (compaction resets this)",
            lambda: float(self.journal.record_count),
        )

    # -- lifecycle ---------------------------------------------------------------------

    def open(self) -> "JobManager":
        """Replay the journal, requeue recovered work, start workers + GC."""
        records = self.journal.open()
        self._replay(records)
        self.executor.start()
        self._gc_stop.clear()
        self._gc_thread = threading.Thread(
            target=self._gc_loop, name="jobs-gc", daemon=True
        )
        self._gc_thread.start()
        return self

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop workers and the GC sweeper, flush and close the journal.

        A lease in flight when the executor stops is *not* awaited to
        completion beyond ``timeout``; its lease record stays un-finished in
        the journal, so the next :meth:`open` requeues it exactly like a
        crashed lease.
        """
        if self._closed:
            return
        self._closed = True
        self.executor.stop(timeout=timeout)
        self._gc_stop.set()
        if self._gc_thread is not None:
            self._gc_thread.join(timeout=timeout)
            self._gc_thread = None
        self.journal.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- replay ------------------------------------------------------------------------

    def _replay(self, records: list[JournalRecord]) -> None:
        now_unix = time.time()
        now_mono = time.monotonic()
        for record in records:
            data = record.data
            if record.type in ("submit", "snapshot"):
                job = Job(
                    job_id=record.job,
                    client_id=data["client"],
                    kind=data["kind"],
                    queries=list(data["queries"]),
                    exhaustive=bool(data.get("exhaustive", False)),
                    priority=int(data.get("priority", PRIORITIES["normal"])),
                    run_at_generation=data.get("run_at_generation"),
                    payload_bytes=int(data.get("payload_bytes", 0)),
                    max_attempts=int(data.get("max_attempts", self.retry_budget)),
                    created_unix=float(data.get("created_unix", now_unix)),
                    submit_seq=record.seq,
                )
                if record.type == "snapshot":
                    job.state = data.get("state", "queued")
                    job.attempts = int(data.get("attempts", 0))
                    job.completed = int(data.get("completed", 0))
                    job.finished_unix = data.get("finished_unix")
                    job.error = data.get("error")
                    job.error_code = data.get("error_code")
                    job.generation = data.get("generation")
                    job.cancel_requested = bool(data.get("cancel_requested", False))
                    result = data.get("result")
                    if result is not None:
                        self.results.put(
                            job.job_id,
                            job.client_id,
                            result,
                            now=float(data.get("result_stored_unix", now_unix)),
                        )
                self._jobs[job.job_id] = job
                self._events[job.job_id] = []
            elif record.job in self._jobs:
                job = self._jobs[record.job]
                if record.type == "lease":
                    job.attempts = int(data.get("attempt", job.attempts + 1))
                    job.state = "running"
                    job.completed = 0
                elif record.type == "progress":
                    job.completed = int(data.get("completed", job.completed))
                elif record.type == "cancel_request":
                    job.cancel_requested = True
                elif record.type == "finish":
                    job.state = data["state"]
                    job.finished_unix = float(data.get("finished_unix", now_unix))
                    job.error = data.get("error")
                    job.error_code = data.get("error_code")
                    job.generation = data.get("generation", job.generation)
                    job.completed = int(data.get("completed", job.completed))
                    result = data.get("result")
                    if result is not None:
                        self.results.put(
                            job.job_id, job.client_id, result, now=job.finished_unix
                        )
                elif record.type == "result_gc":
                    self.results.discard(record.job)
                elif record.type == "drop":
                    self._jobs.pop(record.job, None)
                    self._events.pop(record.job, None)
                    self.results.discard(record.job)
        self._submit_seq = records[-1].seq if records else 0
        # Fold recovered non-terminal work back into the scheduler.
        for job in self._jobs.values():
            if job.terminal:
                self._events[job.job_id] = [
                    self._event_dict(job, "replayed"),
                    self._event_dict(job, job.state),
                ]
                continue
            self.replayed_jobs += 1
            if job.state == "running":
                # crashed lease: the attempt counted but never finished
                if job.cancel_requested:
                    self._finish_replayed(job, "cancelled", now_unix)
                    continue
                if job.attempts >= job.max_attempts:
                    job.error = (
                        f"crashed lease: retry budget of {job.max_attempts} "
                        "attempt(s) exhausted"
                    )
                    job.error_code = "retry_budget_exhausted"
                    self._finish_replayed(job, "failed", now_unix)
                    continue
                self._m_retries.inc()
                job.completed = 0
                job.not_before = now_mono + self._backoff(job.attempts)
            elif job.cancel_requested:
                self._finish_replayed(job, "cancelled", now_unix)
                continue
            self.queue.enqueue(job, enforce_quota=False)
            self._events[job.job_id] = [
                self._event_dict(job, "replayed"),
                self._event_dict(job, "queued"),
            ]

    def _finish_replayed(self, job: Job, state: str, now_unix: float) -> None:
        job.state = state
        job.finished_unix = now_unix
        self.journal.append(
            "finish",
            job.job_id,
            {
                "state": state,
                "finished_unix": now_unix,
                "error": job.error,
                "error_code": job.error_code,
                "completed": job.completed,
            },
            sync=False,
        )
        self._m_finished.labels(state=state).inc()
        self._events[job.job_id] = [
            self._event_dict(job, "replayed"),
            self._event_dict(job, state),
        ]

    def _backoff(self, attempt: int) -> float:
        return min(
            self.retry_cap_seconds,
            self.retry_base_seconds * (2.0 ** max(0, attempt - 1)),
        )

    # -- submit / cancel / introspection ------------------------------------------------

    def submit(
        self,
        *,
        client_id: str,
        kind: str,
        queries: list[str],
        priority: str = "normal",
        run_at_generation: int | None = None,
        exhaustive: bool = False,
    ) -> Job:
        """Durably accept a job; it is journaled before this returns."""
        if self._closed:
            raise RuntimeError("job manager is closed")
        payload_bytes = sum(len(query.encode("utf-8")) for query in queries)
        try:
            self.queue.check_quota(client_id, payload_bytes)
        except QuotaExceeded as error:
            self._m_quota_rejections.labels(quota=error.quota).inc()
            raise
        now = time.time()
        job = Job(
            job_id=_new_job_id(),
            client_id=client_id,
            kind=kind,
            queries=list(queries),
            exhaustive=exhaustive,
            priority=PRIORITIES[priority],
            run_at_generation=run_at_generation,
            payload_bytes=payload_bytes,
            max_attempts=self.retry_budget,
            created_unix=now,
        )
        # The append happens under _cond so compaction (which snapshots
        # _jobs while holding _cond) can never rewrite the journal between
        # this record becoming durable and the job entering the table — a
        # crash after the 202 must always find the job on replay.
        with self._cond:
            job.submit_seq = self.journal.append(
                "submit",
                job.job_id,
                {
                    "client": client_id,
                    "kind": kind,
                    "queries": job.queries,
                    "exhaustive": exhaustive,
                    "priority": job.priority,
                    "run_at_generation": run_at_generation,
                    "payload_bytes": payload_bytes,
                    "max_attempts": job.max_attempts,
                    "created_unix": now,
                },
            )
            self._jobs[job.job_id] = job
            self._events[job.job_id] = []
            self.queue.enqueue(job, enforce_quota=False)
            self._emit_locked(job, "queued")
            self._cond.notify_all()
        self._m_submitted.labels(priority=job.priority_name).inc()
        return job

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(job_id)
        return job

    def list_jobs(self, client_id: str | None = None) -> list[Job]:
        jobs = list(self._jobs.values())
        if client_id is not None:
            jobs = [job for job in jobs if job.client_id == client_id]
        return sorted(jobs, key=lambda job: job.submit_seq)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate while queued, cooperative while running."""
        job = self.get(job_id)
        with self._cond:
            if job.terminal:
                return job  # idempotent
            if self.queue.remove(job):
                job.cancel_requested = True
                # never leased: there is no running-lease count to release
                self._finish_locked(
                    job, "cancelled", result=None, release_lease=False
                )
                return job
            if not job.cancel_requested:
                job.cancel_requested = True
                self.journal.append("cancel_request", job.job_id, {}, sync=True)
                self._emit_locked(job, "cancel_requested")
        return job

    def result_payload(self, job_id: str) -> dict[str, Any] | None:
        self.get(job_id)  # raises JobNotFound for unknown ids
        return self.results.get(job_id)

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until the job is terminal (test/CLI convenience)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                job = self.get(job_id)
                if job.terminal:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state!r} after {timeout}s"
                    )
                self._cond.wait(timeout=min(remaining, 0.5))

    # -- executor callbacks ------------------------------------------------------------

    def next_lease(self, timeout: float) -> Job | None:
        """Lease the next eligible job, waiting up to ``timeout`` for one."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    return None
                generation = int(self.service.generation)
                job = self.queue.lease(generation=generation, now=time.monotonic())
                if job is not None:
                    self.journal.append(
                        "lease", job.job_id, {"attempt": job.attempts + 1}
                    )
                    job.attempts += 1
                    job.completed = 0
                    self._emit_locked(job, "running")
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(timeout=remaining)

    def wake_workers(self) -> None:
        with self._cond:
            self._cond.notify_all()

    @contextmanager
    def track_engine(self) -> Iterator[None]:
        """Mark a lease as *inside the engine* (its in-flight slot counts there)."""
        with self._engine_lock:
            self._engine_active += 1
        try:
            yield
        finally:
            with self._engine_lock:
                self._engine_active -= 1

    def checkpoint(self, job: Job, *, completed: int) -> None:
        job.completed = completed
        self.journal.append(
            "progress", job.job_id, {"completed": completed}, sync=False
        )
        with self._cond:
            self._emit_locked(job, "progress")

    def on_job_success(
        self, job: Job, payload: dict[str, Any] | None, *, elapsed: float
    ) -> None:
        if payload is None:  # cancellation observed before the first query
            self.on_job_cancelled(job)
            return
        self._m_exec_seconds.observe(elapsed)
        with self._cond:
            self._finish_locked(job, "succeeded", result=payload)

    def on_job_cancelled(self, job: Job) -> None:
        with self._cond:
            self._finish_locked(job, "cancelled", result=None)

    def on_job_error(self, job: Job, error: Exception, *, retryable: bool) -> None:
        from ..api.endpoints import envelope_for

        _status, envelope = envelope_for(error)
        with self._cond:
            if job.cancel_requested:
                self._finish_locked(job, "cancelled", result=None)
                return
            if retryable and job.attempts < job.max_attempts:
                self._m_retries.inc()
                job.completed = 0
                job.not_before = time.monotonic() + self._backoff(job.attempts)
                self.queue.requeue(job)
                self._emit_locked(
                    job, "retry_scheduled", error=str(error)[:500]
                )
                self._cond.notify_all()
                return
            job.error = envelope.message
            job.error_code = envelope.code
            if retryable:
                job.error = (
                    f"{envelope.message} (retry budget of {job.max_attempts} "
                    "attempt(s) exhausted)"
                )
                job.error_code = "retry_budget_exhausted"
            self._finish_locked(job, "failed", result=None)

    def _finish_locked(
        self,
        job: Job,
        state: str,
        *,
        result: dict[str, Any] | None,
        release_lease: bool = True,
    ) -> None:
        """Terminal transition; caller holds ``_cond``.

        ``release_lease=False`` is for jobs that were never leased (a cancel
        while still queued) — releasing a lease they don't hold would steal
        a running-count slot from one of the client's live leases.
        """
        job.state = state
        job.finished_unix = time.time()
        if release_lease:
            self.queue.finish(job)
        stored_result = None
        if result is not None:
            stored_result = {
                "api_version": "v1",
                "job_id": job.job_id,
                **result,
            }
        self.journal.append(
            "finish",
            job.job_id,
            {
                "state": state,
                "finished_unix": job.finished_unix,
                "generation": job.generation,
                "completed": job.completed,
                "error": job.error,
                "error_code": job.error_code,
                "result": stored_result,
            },
        )
        if stored_result is not None:
            evicted = self.results.put(
                job.job_id, job.client_id, stored_result, now=job.finished_unix
            )
            for evicted_id in evicted:
                self.journal.append("result_gc", evicted_id, {}, sync=False)
        self._m_finished.labels(state=state).inc()
        self._emit_locked(job, state)
        self._cond.notify_all()

    # -- events ------------------------------------------------------------------------

    def _event_dict(self, job: Job, event: str, **extra: Any) -> dict[str, Any]:
        return {
            "event": event,
            "job_id": job.job_id,
            "state": job.state,
            "completed": job.completed,
            "total": job.total,
            "attempts": job.attempts,
            **extra,
        }

    def _emit_locked(self, job: Job, event: str, **extra: Any) -> None:
        events = self._events.setdefault(job.job_id, [])
        if len(events) < self.max_events_per_job:
            events.append(self._event_dict(job, event, **extra))
        self._cond.notify_all()

    def events_since(self, job_id: str, cursor: int) -> tuple[list[dict[str, Any]], bool]:
        """Events after ``cursor`` plus whether the job is terminal."""
        with self._cond:
            job = self.get(job_id)
            events = self._events.get(job_id, [])
            return list(events[cursor:]), job.terminal

    def wait_events(
        self, job_id: str, cursor: int, timeout: float = 10.0
    ) -> tuple[list[dict[str, Any]], bool]:
        """Blocking :meth:`events_since` — waits for news up to ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                job = self.get(job_id)
                events = self._events.get(job_id, [])
                if len(events) > cursor or job.terminal:
                    return list(events[cursor:]), job.terminal
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._cond.wait(timeout=remaining)

    # -- signals / stats ---------------------------------------------------------------

    def background_load(self) -> int:
        """Held leases not currently inside the engine (admission pressure)."""
        with self._engine_lock:
            active = self._engine_active
        return max(0, self.queue.running_leases - active)

    def signals(self) -> dict[str, Any]:
        return {
            "queued": len(self.queue),
            "running": self.queue.running_leases,
            "background_load": self.background_load(),
            "results_retained": len(self.results),
            "result_bytes": self.results.total_bytes,
        }

    def stats(self) -> dict[str, Any]:
        return {
            "jobs": len(self._jobs),
            "queue": self.queue.stats(),
            "results": self.results.stats(),
            "journal": {
                "records": self.journal.record_count,
                "dropped_on_replay": self.journal.dropped_records,
            },
            "replayed_jobs": self.replayed_jobs,
            "submitted": {
                name: int(count)
                for name, count in self._m_submitted.per_label().items()
            },
            "finished": {
                name: int(count)
                for name, count in self._m_finished.per_label().items()
            },
            "retries": int(self._m_retries.value),
        }

    # -- GC / compaction ---------------------------------------------------------------

    def _gc_loop(self) -> None:
        while not self._gc_stop.wait(self.gc_interval_seconds):
            try:
                self.gc_once()
            except Exception:  # noqa: BLE001 - the sweeper must survive
                if self._closed:
                    return

    def gc_once(self) -> dict[str, int]:
        """One sweep: expire results, drop aged-out jobs, maybe compact."""
        now = time.time()
        expired = self.results.sweep(now=now)
        for job_id in expired:
            self.journal.append("result_gc", job_id, {}, sync=False)
        dropped = 0
        with self._cond:
            for job in list(self._jobs.values()):
                if not job.terminal or job.finished_unix is None:
                    continue
                if job.job_id in self.results:
                    continue
                if now - job.finished_unix >= self.job_ttl_seconds:
                    self._jobs.pop(job.job_id, None)
                    self._events.pop(job.job_id, None)
                    self.journal.append("drop", job.job_id, {}, sync=False)
                    dropped += 1
        compacted = 0
        if self.journal.record_count > self.compact_threshold:
            self.compact()
            compacted = 1
        return {"expired": len(expired), "dropped": dropped, "compacted": compacted}

    def compact(self) -> None:
        """Rewrite the journal as one snapshot record per live job."""
        with self._cond:
            snapshot: list[tuple[str, str, dict[str, Any]]] = []
            for job in self._jobs.values():
                data: dict[str, Any] = {
                    "client": job.client_id,
                    "kind": job.kind,
                    "queries": job.queries,
                    "exhaustive": job.exhaustive,
                    "priority": job.priority,
                    "run_at_generation": job.run_at_generation,
                    "payload_bytes": job.payload_bytes,
                    "max_attempts": job.max_attempts,
                    "created_unix": job.created_unix,
                    "state": job.state,
                    "attempts": job.attempts,
                    "completed": job.completed,
                    "finished_unix": job.finished_unix,
                    "error": job.error,
                    "error_code": job.error_code,
                    "generation": job.generation,
                    "cancel_requested": job.cancel_requested,
                }
                result = self.results.get(job.job_id)
                if result is not None:
                    data["result"] = result
                snapshot.append(("snapshot", job.job_id, data))
            self.journal.rewrite(snapshot)
            # submit_seq ordering restarts with the rewritten file
            for index, job in enumerate(
                sorted(self._jobs.values(), key=lambda item: item.submit_seq)
            ):
                job.submit_seq = index + 1


def attach_jobs(service: Any, journal_path: str, **kwargs: Any) -> JobManager:
    """Create, open, and attach a :class:`JobManager` to a serving store.

    Works for both :class:`~repro.service.session.HypeRService` and
    :class:`~repro.cluster.coordinator.ClusterCoordinator` (anything with
    ``execute`` / ``generation`` / ``metrics``).  The manager lands on
    ``service.jobs``, where the front doors and ``serving_signals()`` find
    it.
    """
    manager = JobManager(service, journal_path, **kwargs)
    manager.open()
    service.jobs = manager
    return manager
