"""Background worker loop: lease → execute → checkpoint → finish.

Each worker thread asks the :class:`~repro.jobs.manager.JobManager` for the
next eligible lease (the queue applies priority, weighted fairness, quota,
backoff, and ``run_at_generation`` gating), then executes the job's queries
against the serving store — a :class:`~repro.service.session.HypeRService`
or a :class:`~repro.cluster.coordinator.ClusterCoordinator`; both expose
the same ``execute`` surface.

Execution bookkeeping:

- every query completion **checkpoints** a progress record (unsynced — a
  lost checkpoint only costs re-execution) and emits a progress event for
  ``GET /v1/jobs/{id}/events`` streams;
- **cancellation** is honored between queries: a cancel requested while
  query *k* runs takes effect before query *k+1* starts;
- deterministic failures (:class:`~repro.exceptions.HypeRError` — syntax,
  semantics, payload) fail the job immediately; anything else is treated
  as transient and **retried** with exponential backoff until the job's
  attempt budget is spent (crashed leases found at replay re-enter the
  same path);
- time spent inside the engine is tracked so
  ``HypeRService.serving_signals()`` can report background load to the
  interactive admission controller.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from ..exceptions import HypeRError
from ..obs import trace as obs_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import JobManager
    from .queue import Job

__all__ = ["JobExecutor"]


class JobExecutor:
    """N daemon worker threads draining one manager's queue."""

    def __init__(
        self,
        manager: "JobManager",
        *,
        n_workers: int = 1,
        poll_seconds: float = 0.25,
    ):
        self.manager = manager
        self.n_workers = max(1, int(n_workers))
        self.poll_seconds = poll_seconds
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker, name=f"jobs-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        self.manager.wake_workers()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # -- worker loop -------------------------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            job = self.manager.next_lease(timeout=self.poll_seconds)
            if job is None:
                continue
            try:
                self._run(job)
            except Exception:  # noqa: BLE001 - a worker must never die
                # _run handles job-level errors itself; anything escaping is
                # manager-side (journal I/O after close during shutdown)
                if not self._stop.is_set():
                    raise

    def _run(self, job: "Job") -> None:
        manager = self.manager
        started = time.perf_counter()
        trace = obs_trace.TraceContext(request_id=job.job_id, root_name="job")
        try:
            with obs_trace.activate(trace):
                with obs_trace.span(
                    "job.execute",
                    job=job.job_id,
                    kind=job.kind,
                    attempt=job.attempts,
                ):
                    payload = self._execute(job)
        except Exception as error:  # noqa: BLE001 - classified below
            trace.finish()
            retryable = not isinstance(error, HypeRError)
            manager.on_job_error(job, error, retryable=retryable)
            return
        trace.finish()
        elapsed = time.perf_counter() - started
        if job.cancel_requested:
            manager.on_job_cancelled(job)
        else:
            manager.on_job_success(job, payload, elapsed=elapsed)

    def _execute(self, job: "Job") -> dict[str, Any] | None:
        """Run the job's queries; returns the result payload (None if cancelled).

        A single-query job answers with one typed answer; a batch job mirrors
        ``/v1/batch`` semantics — per-item answers or error envelopes, the
        job itself succeeding once every item has been attempted.  Batches on
        a single-node ``processes`` service cross the shard pool under one
        pinned snapshot, so every item sees the same generation.
        """
        from ..api.endpoints import envelope_for
        from ..api.schemas import answer_from_result

        manager = self.manager
        service = manager.service
        generation = int(service.generation)
        job.generation = generation
        if job.cancel_requested:
            return None
        if job.kind == "batch" and hasattr(service, "execute_many"):
            with manager.track_engine():
                outcomes = service.execute_many(job.queries, return_errors=True)
            items: list[dict[str, Any]] = []
            for index, outcome in enumerate(outcomes):
                if isinstance(outcome, Exception):
                    _status, envelope = envelope_for(outcome)
                    items.append({"index": index, "error": envelope.to_json()})
                else:
                    items.append(
                        {"index": index, "result": answer_from_result(outcome).to_json()}
                    )
                manager.checkpoint(job, completed=index + 1)
            return {"kind": "batch", "results": items}
        answers: list[dict[str, Any]] = []
        for index, query in enumerate(job.queries):
            if job.cancel_requested:
                return None
            with manager.track_engine():
                result = service.execute(query, exhaustive=job.exhaustive)
            answers.append(answer_from_result(result).to_json())
            manager.checkpoint(job, completed=index + 1)
        if job.kind == "query":
            return {"kind": "query", "result": answers[0]}
        return {
            "kind": "batch",
            "results": [
                {"index": index, "result": answer}
                for index, answer in enumerate(answers)
            ],
        }
