"""Append-only JSONL write-ahead journal for the job service.

One record per line::

    {"seq": 17, "type": "finish", "job": "job-4f…", "data": {…}, "crc": 123}

``crc`` is the CRC-32 of the canonical JSON encoding of the record *without*
the ``crc`` field, so a torn write (power cut mid-line) or a flipped byte is
detected on replay.  ``seq`` is strictly consecutive within a journal file;
a gap means records were lost and replay stops at the last good prefix.

Durability is fsync **group commit**: every appender waits until its record
is known synced, but concurrent appenders share one ``fsync`` — the thread
that reaches the sync lock first syncs everything written so far and the
rest observe ``synced_seq`` has already passed them.  Records that only
checkpoint progress may opt out (``sync=False``); losing them merely costs
a re-execution, never a job.

Replay (:meth:`Journal.open`) validates every line and **truncates** the
file back to the last valid record, so a crash mid-append leaves a clean
journal.  :meth:`Journal.rewrite` compacts: it atomically replaces the file
with a caller-provided snapshot of live records (tmp file → fsync →
``os.replace`` → fsync the directory).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["Journal", "JournalError", "JournalRecord"]


class JournalError(RuntimeError):
    """The journal file cannot be opened or written."""


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal entry."""

    seq: int
    type: str
    job: str
    data: dict[str, Any]


def _canonical(obj: dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _encode(seq: int, record_type: str, job: str, data: dict[str, Any]) -> bytes:
    body = {"seq": seq, "type": record_type, "job": job, "data": data}
    crc = zlib.crc32(_canonical(body).encode("utf-8"))
    body["crc"] = crc
    return (_canonical(body) + "\n").encode("utf-8")


def _decode(line: bytes) -> JournalRecord | None:
    """The record on ``line``, or ``None`` if it is torn or corrupt."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the trailing newline never made it to disk
    try:
        raw = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(raw, dict) or "crc" not in raw:
        return None
    crc = raw.pop("crc")
    try:
        expected = zlib.crc32(_canonical(raw).encode("utf-8"))
    except (TypeError, ValueError):
        return None
    if crc != expected:
        return None
    try:
        return JournalRecord(
            seq=int(raw["seq"]),
            type=str(raw["type"]),
            job=str(raw["job"]),
            data=dict(raw["data"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


class Journal:
    """A crash-safe append-only record log backing one :class:`JobManager`."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self._write_lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._file = None  # type: Any
        self._written_seq = 0
        self._synced_seq = 0
        #: records dropped by the last replay (torn/corrupt tail)
        self.dropped_records = 0
        #: live record count in the current file (drives compaction)
        self.record_count = 0

    # -- open / replay -----------------------------------------------------------------

    def open(self) -> list[JournalRecord]:
        """Replay the journal, truncate any corrupt tail, and start appending.

        Returns every valid record in order.  The file is truncated back to
        the last record whose checksum and sequence validate — a torn write
        from a crash mid-append, or corruption anywhere, drops that record
        *and everything after it* (later records may depend on the lost one).
        """
        records: list[JournalRecord] = []
        good_offset = 0
        dropped = 0
        if os.path.exists(self.path):
            with open(self.path, "rb") as handle:
                expected_seq = 1
                for line in handle:
                    record = _decode(line)
                    if record is None or record.seq != expected_seq:
                        dropped += 1
                        break
                    records.append(record)
                    expected_seq += 1
                    good_offset += len(line)
                else:
                    good_offset = handle.tell()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(self.path, "ab")
        if self._file.tell() != good_offset:
            self._file.truncate(good_offset)
            self._file.seek(good_offset)
            os.fsync(self._file.fileno())
        self.dropped_records = dropped
        self.record_count = len(records)
        self._written_seq = records[-1].seq if records else 0
        self._synced_seq = self._written_seq
        return records

    # -- append ------------------------------------------------------------------------

    def append(
        self, record_type: str, job: str, data: dict[str, Any], *, sync: bool = True
    ) -> int:
        """Append one record; with ``sync=True`` return only once it is durable."""
        if self._file is None:
            raise JournalError("journal is not open")
        with self._write_lock:
            seq = self._written_seq + 1
            self._file.write(_encode(seq, record_type, job, data))
            self._written_seq = seq
            self.record_count += 1
        if sync:
            self._sync_to(seq)
        return seq

    def _sync_to(self, seq: int) -> None:
        """Group commit: one fsync covers every record written before it."""
        with self._sync_lock:
            if self._synced_seq >= seq:
                return  # a later appender's fsync already covered us
            with self._write_lock:
                self._file.flush()
                covered = self._written_seq
            os.fsync(self._file.fileno())
            self._synced_seq = covered

    def flush(self) -> None:
        """Force out everything written so far (used on shutdown)."""
        if self._file is not None and self._written_seq:
            self._sync_to(self._written_seq)

    # -- compaction --------------------------------------------------------------------

    def rewrite(self, records: Iterable[tuple[str, str, dict[str, Any]]]) -> None:
        """Atomically replace the journal with a compacted snapshot.

        ``records`` are ``(type, job, data)`` tuples; sequence numbers are
        reassigned from 1.  The snapshot is written to a temporary file,
        fsynced, renamed over the journal, and the directory entry fsynced —
        a crash at any point leaves either the old file or the new one,
        never a blend.
        """
        if self._file is None:
            raise JournalError("journal is not open")
        # Lock order must match _sync_to (_sync_lock → _write_lock): a
        # group-committing appender holds _sync_lock while waiting for
        # _write_lock, so taking them the other way around here deadlocks.
        with self._sync_lock, self._write_lock:
            tmp_path = self.path + ".compact"
            count = 0
            with open(tmp_path, "wb") as tmp:
                for record_type, job, data in records:
                    count += 1
                    tmp.write(_encode(count, record_type, job, data))
                tmp.flush()
                os.fsync(tmp.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            directory = os.path.dirname(os.path.abspath(self.path))
            fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            self._file = open(self.path, "ab")
            self._written_seq = count
            self._synced_seq = count
            self.record_count = count

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None
