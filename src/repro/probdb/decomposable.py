"""Decomposed computation over blocks (Proposition 1 / Proposition 3).

Given a block-independent decomposition and a decomposable aggregate, the
what-if answer over the whole database is the combiner ``g`` applied to the
per-block answers of the modified query ``Q'`` (the aggregate replaced by its
partial form ``f'``).  This module provides the bookkeeping for that
composition so the estimator can stay block-local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..exceptions import HypeRError
from ..relational.aggregates import AggregateFunction, get_aggregate

__all__ = ["BlockResult", "combine_block_results", "decomposed_value"]


@dataclass(frozen=True)
class BlockResult:
    """Partial result of the modified query on one block."""

    block_index: int
    partial_value: float
    tuple_count: int = 0


def combine_block_results(
    aggregate: AggregateFunction | str,
    results: Iterable[BlockResult],
) -> float:
    """Apply the combiner ``g`` (a sum for SUM / COUNT / AVG) to block partials."""
    get_aggregate(aggregate)  # validates the aggregate name
    return float(sum(r.partial_value for r in results))


def decomposed_value(
    aggregate: AggregateFunction | str,
    per_block_values: Sequence[Sequence[float]],
) -> float:
    """Evaluate a decomposable aggregate from raw per-block value multisets.

    This is the textbook statement of Definition 6: per-block partials are
    computed with ``f'`` (which for AVG needs the global size) and combined
    with ``g``.  Used in tests to check ``aggr(all values) == g({f'(block)})``.
    """
    aggregate = get_aggregate(aggregate)
    total_size = sum(len(block) for block in per_block_values)
    if total_size == 0:
        return 0.0
    partials = [
        aggregate.partial(list(block), total_size) for block in per_block_values
    ]
    return aggregate.combine(partials)


def check_decomposability(
    aggregate: AggregateFunction | str,
    per_block_values: Sequence[Sequence[float]],
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Verify the decomposition identity for a concrete partition of values."""
    aggregate = get_aggregate(aggregate)
    flat = [v for block in per_block_values for v in block]
    direct = aggregate.evaluate(flat)
    composed = decomposed_value(aggregate, per_block_values)
    if abs(direct - composed) > tolerance * max(1.0, abs(direct)):
        return False
    return True


def scale_invariance_holds(
    combiner: Callable[[Sequence[float]], float],
    values: Sequence[float],
    alpha: float,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Check the ``alpha * g(x) == g(alpha * x)`` condition of Definition 6."""
    if alpha < 0:
        raise HypeRError("the scale-invariance condition is stated for alpha >= 0")
    left = alpha * combiner(list(values))
    right = combiner([alpha * v for v in values])
    return abs(left - right) <= tolerance * max(1.0, abs(left))
