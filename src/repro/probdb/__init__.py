"""Probabilistic-database layer: possible worlds, blocks, decomposed aggregates.

Implements the possible-world semantics (Definitions 1 and 3), the
block-independent decomposition used as HypeR's main query-evaluation
optimisation (Section 3.3), and the per-block composition of decomposable
aggregates (Proposition 1).
"""

from .blocks import Block, BlockDecomposition, decompose_into_blocks
from .decomposable import (
    BlockResult,
    check_decomposability,
    combine_block_results,
    decomposed_value,
)
from .distribution import DiscreteWorldDistribution, MonteCarloWorlds, WorldDistribution
from .possible_worlds import (
    PossibleWorld,
    count_possible_worlds,
    enumerate_possible_worlds,
    worlds_from_samples,
)

__all__ = [
    "Block",
    "BlockDecomposition",
    "BlockResult",
    "DiscreteWorldDistribution",
    "MonteCarloWorlds",
    "PossibleWorld",
    "WorldDistribution",
    "check_decomposability",
    "combine_block_results",
    "count_possible_worlds",
    "decompose_into_blocks",
    "decomposed_value",
    "enumerate_possible_worlds",
    "worlds_from_samples",
]
