"""Block-independent decomposition of a database under a causal model.

Two tuples are *independent* when no path in the ground causal graph connects
any of their attributes (Section 3.3).  A block-independent decomposition
partitions the database so tuples in different blocks are pairwise independent,
letting HypeR evaluate what-if queries per block and combine the partial
results (Proposition 1).

The decomposition here avoids materialising the ground graph: it runs a
union–find over tuple identities, merging tuples that any grounded edge could
connect —

* cross-relation attribute edges merge tuples linked by the foreign key they
  ground along;
* cross-tuple edges merge all tuples that share the grouping attribute value
  (``within``), or *all* tuples of the involved relations when no grouping is
  declared;
* within-tuple edges never merge distinct tuples.

This is linear in the database size (plus the inverse-Ackermann union–find
factor), matching the complexity claim in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence

import numpy as np

from ..causal.dag import CausalDAG
from ..exceptions import CausalModelError
from ..relational.database import Database

__all__ = [
    "Block",
    "BlockDecomposition",
    "assign_blocks_to_shards",
    "block_labels",
    "decompose_into_blocks",
    "shard_row_masks",
]


TupleId = tuple[str, int]  # (relation name, row position)


class _UnionFind:
    """Union–find over arbitrary hashable items with path compression."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def groups(self) -> dict[Hashable, list[Hashable]]:
        out: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out


@dataclass
class Block:
    """One block of the decomposition: row positions per relation."""

    index: int
    rows: dict[str, list[int]] = field(default_factory=dict)

    def add(self, relation: str, row: int) -> None:
        self.rows.setdefault(relation, []).append(row)

    def row_count(self, relation: str | None = None) -> int:
        if relation is not None:
            return len(self.rows.get(relation, []))
        return sum(len(v) for v in self.rows.values())

    def relations(self) -> list[str]:
        return list(self.rows)

    def database(self, database: Database) -> Database:
        """Materialise the block as a sub-database (other relations keep all rows)."""
        masks = {}
        for relation, indices in self.rows.items():
            rel = database[relation]
            mask = [False] * len(rel)
            for i in indices:
                mask[i] = True
            masks[relation] = mask
        return database.subset(masks)

    def __repr__(self) -> str:  # pragma: no cover
        sizes = {rel: len(rows) for rel, rows in self.rows.items()}
        return f"Block({self.index}, {sizes})"


@dataclass
class BlockDecomposition:
    """The full decomposition: a list of blocks covering every tuple exactly once."""

    blocks: list[Block]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def block_of(self, relation: str, row: int) -> Block:
        for block in self.blocks:
            if row in block.rows.get(relation, ()):
                return block
        raise CausalModelError(f"tuple ({relation!r}, {row}) is not covered by any block")

    def sizes(self) -> list[int]:
        return [block.row_count() for block in self.blocks]

    def validate_cover(self, database: Database) -> None:
        """Check the partition property: every tuple appears in exactly one block."""
        seen: dict[TupleId, int] = {}
        for block in self.blocks:
            for relation, rows in block.rows.items():
                for row in rows:
                    tid = (relation, row)
                    if tid in seen:
                        raise CausalModelError(
                            f"tuple {tid} appears in blocks {seen[tid]} and {block.index}"
                        )
                    seen[tid] = block.index
        for relation in database.relation_names:
            for row in range(len(database[relation])):
                if (relation, row) not in seen:
                    raise CausalModelError(f"tuple ({relation!r}, {row}) is not covered")


def _group_values(database: Database, relation: str, within: str | None) -> list[Any]:
    """Grouping value per row of ``relation`` (resolving ``within`` through FKs)."""
    rel = database[relation]
    if within is None:
        return [("__all__",)] * len(rel)
    if within in rel.schema:
        return list(rel.column_view(within))
    owner, attribute = database.resolve_attribute(within)
    links = database.schema.links_between(relation, owner)
    if not links:
        raise CausalModelError(
            f"grouping attribute {within!r} is not in {relation!r} and no foreign key links "
            f"{relation!r} to {owner!r}"
        )
    fk = links[0]
    other = database[owner]
    if fk.parent == owner:
        own_attrs, other_attrs = fk.child_attributes, fk.parent_attributes
    else:
        own_attrs, other_attrs = fk.parent_attributes, fk.child_attributes
    index: dict[tuple[Any, ...], Any] = {}
    for i in range(len(other)):
        index[tuple(other.column_view(a)[i] for a in other_attrs)] = other.column_view(attribute)[i]
    return [
        index.get(tuple(rel.column_view(a)[j] for a in own_attrs))
        for j in range(len(rel))
    ]


def _union_tuples(database: Database, dag: CausalDAG | None) -> _UnionFind:
    """Run the grounded-edge union–find shared by both decomposition entry points."""
    uf = _UnionFind()
    for relation in database.relation_names:
        for row in range(len(database[relation])):
            uf.add((relation, row))

    if dag is not None:
        owner_of: dict[str, str] = {}
        for node in dag.nodes:
            rel, _attr = database.resolve_attribute(node)
            owner_of[node] = rel

        for edge in dag.edges:
            src_rel = owner_of[edge.source]
            dst_rel = owner_of[edge.target]
            if edge.cross_tuple:
                _merge_cross_tuple(uf, database, src_rel, dst_rel, edge.within)
            elif src_rel != dst_rel:
                _merge_linked(uf, database, src_rel, dst_rel)
            # within-tuple edges never merge tuples
    return uf


def decompose_into_blocks(database: Database, dag: CausalDAG | None) -> BlockDecomposition:
    """Compute the block-independent decomposition of ``database`` under ``dag``.

    With no causal graph (``dag is None``) every tuple forms its own block —
    the tuple-independence default the paper assumes absent background
    knowledge.
    """
    uf = _union_tuples(database, dag)
    groups = uf.groups()
    blocks: list[Block] = []
    # Deterministic ordering: by the smallest (relation, row) member of each group.
    for i, root in enumerate(sorted(groups, key=lambda r: sorted(groups[r])[0])):
        block = Block(index=i)
        for relation, row in sorted(groups[root]):
            block.add(relation, row)
        blocks.append(block)
    decomposition = BlockDecomposition(blocks)
    decomposition.validate_cover(database)
    return decomposition


def block_labels(
    database: Database, dag: CausalDAG | None
) -> tuple[dict[str, np.ndarray], int]:
    """Block index per row of every relation, without materialising blocks.

    Returns ``(labels, n_blocks)`` where ``labels[relation][row]`` equals the
    ``Block.index`` that :func:`decompose_into_blocks` would assign the tuple.
    This is the fast path used by the query engines, which only need the
    per-row block assignment (the partition property holds by construction,
    so no cover validation is run).
    """
    uf = _union_tuples(database, dag)
    root_of: dict[tuple[str, int], tuple[str, int]] = {}
    smallest: dict[tuple[str, int], tuple[str, int]] = {}
    for relation in database.relation_names:
        for row in range(len(database[relation])):
            tid = (relation, row)
            root = uf.find(tid)
            root_of[tid] = root
            if root not in smallest or tid < smallest[root]:
                smallest[root] = tid
    ordered_roots = sorted(smallest, key=lambda r: smallest[r])
    index_of = {root: i for i, root in enumerate(ordered_roots)}
    labels = {
        relation: np.fromiter(
            (index_of[root_of[(relation, row)]] for row in range(len(database[relation]))),
            dtype=np.int64,
            count=len(database[relation]),
        )
        for relation in database.relation_names
    }
    return labels, len(ordered_roots)


def assign_blocks_to_shards(block_sizes: Sequence[int] | np.ndarray, n_shards: int) -> np.ndarray:
    """Deterministic, size-balanced assignment of blocks to shards.

    This is the *stable shard-assignment API* the shard subsystem
    (:mod:`repro.shard`) builds on: given the tuple count of every block of a
    decomposition, return ``shard_of_block`` such that
    ``shard_of_block[block_index]`` names the shard owning that block.  Because
    blocks are independent (Proposition 1), any block-to-shard mapping yields
    an exact parallel evaluation; this one uses longest-processing-time greedy
    packing — blocks sorted by (size desc, index asc), each assigned to the
    least-loaded shard so far, ties broken by the lowest shard index — which is
    deterministic across runs, processes and platforms.

    When ``n_shards`` exceeds the number of blocks, trailing shards simply own
    no blocks (the single-block edge case degenerates to one working shard).
    """
    if n_shards < 1:
        raise CausalModelError(f"n_shards must be at least 1, got {n_shards}")
    sizes = np.asarray(block_sizes, dtype=np.int64)
    shard_of_block = np.zeros(len(sizes), dtype=np.int64)
    if n_shards == 1 or len(sizes) == 0:
        return shard_of_block
    loads = [0] * n_shards
    order = sorted(range(len(sizes)), key=lambda b: (-int(sizes[b]), b))
    for block in order:
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        shard_of_block[block] = shard
        loads[shard] += int(sizes[block])
    return shard_of_block


def shard_row_masks(
    labels: dict[str, np.ndarray], shard_of_block: np.ndarray, n_shards: int
) -> list[dict[str, np.ndarray]]:
    """Per-shard boolean row masks over every relation of a labelled database.

    ``labels`` is the per-relation block assignment from :func:`block_labels`;
    the returned list has one ``{relation: mask}`` dict per shard, and the
    masks of any relation partition its rows exactly (each row belongs to the
    shard owning its block).
    """
    out: list[dict[str, np.ndarray]] = []
    shard_of_row = {
        relation: shard_of_block[relation_labels]
        for relation, relation_labels in labels.items()
    }
    for shard in range(n_shards):
        out.append(
            {relation: rows == shard for relation, rows in shard_of_row.items()}
        )
    return out


def _merge_linked(uf: _UnionFind, database: Database, relation_a: str, relation_b: str) -> None:
    links = database.schema.links_between(relation_a, relation_b)
    if not links:
        raise CausalModelError(
            f"a causal edge crosses relations {relation_a!r} and {relation_b!r} but no "
            "foreign key links them"
        )
    fk = links[0]
    parent = database[fk.parent]
    child = database[fk.child]
    parent_index: dict[tuple[Any, ...], list[int]] = {}
    for i in range(len(parent)):
        value = tuple(parent.column_view(a)[i] for a in fk.parent_attributes)
        parent_index.setdefault(value, []).append(i)
    for j in range(len(child)):
        value = tuple(child.column_view(a)[j] for a in fk.child_attributes)
        for i in parent_index.get(value, []):
            uf.union((fk.parent, i), (fk.child, j))


def _merge_cross_tuple(
    uf: _UnionFind,
    database: Database,
    relation_a: str,
    relation_b: str,
    within: str | None,
) -> None:
    """Merge all tuples of the two relations that fall into the same group."""
    for relation in {relation_a, relation_b}:
        groups: dict[Any, int] = {}
        values = _group_values(database, relation, within)
        for row, value in enumerate(values):
            if value is None:
                continue
            if value in groups:
                uf.union((relation, groups[value]), (relation, row))
            else:
                groups[value] = row
    if relation_a != relation_b:
        # Tie the two relations together per shared group value.
        values_a = _group_values(database, relation_a, within)
        values_b = _group_values(database, relation_b, within)
        first_a: dict[Any, int] = {}
        for row, value in enumerate(values_a):
            if value is not None and value not in first_a:
                first_a[value] = row
        for row, value in enumerate(values_b):
            if value is not None and value in first_a:
                uf.union((relation_a, first_a[value]), (relation_b, row))
    else:
        # The FK-linked relations of cross-relation edges are handled elsewhere;
        # within a single relation nothing more to do.
        pass
