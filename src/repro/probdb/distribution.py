"""Distributions over possible worlds and expectation helpers.

The post-update distribution (Definition 3) assigns a probability to every
possible world.  Exact representations are only feasible for tiny instances;
the engine otherwise works with Monte-Carlo collections of sampled worlds.
Both share the same interface: an expectation of a per-world functional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..exceptions import HypeRError
from ..relational.relation import Relation
from .possible_worlds import PossibleWorld

__all__ = ["WorldDistribution", "DiscreteWorldDistribution", "MonteCarloWorlds"]


class WorldDistribution:
    """Common interface: expectation of a functional over possible worlds."""

    def expectation(self, functional: Callable[[Relation], float]) -> float:
        raise NotImplementedError

    def variance(self, functional: Callable[[Relation], float]) -> float:
        mean = self.expectation(functional)
        return self.expectation(lambda world: (functional(world) - mean) ** 2)


@dataclass
class DiscreteWorldDistribution(WorldDistribution):
    """An explicit, normalised distribution over enumerated worlds."""

    worlds: Sequence[PossibleWorld]

    def __post_init__(self) -> None:
        if not self.worlds:
            raise HypeRError("a world distribution needs at least one world")
        total = float(sum(w.probability for w in self.worlds))
        if total <= 0:
            raise HypeRError("total probability mass must be positive")
        self.worlds = [PossibleWorld(w.relation, w.probability / total) for w in self.worlds]

    def __len__(self) -> int:
        return len(self.worlds)

    def probabilities(self) -> np.ndarray:
        return np.array([w.probability for w in self.worlds])

    def expectation(self, functional: Callable[[Relation], float]) -> float:
        return float(
            sum(w.probability * float(functional(w.relation)) for w in self.worlds)
        )

    def most_probable(self) -> PossibleWorld:
        return max(self.worlds, key=lambda w: w.probability)


@dataclass
class MonteCarloWorlds(WorldDistribution):
    """Equally weighted sampled worlds (the engine's simulation output)."""

    samples: Sequence[Relation]

    def __post_init__(self) -> None:
        if not self.samples:
            raise HypeRError("Monte-Carlo world collection needs at least one sample")

    def __len__(self) -> int:
        return len(self.samples)

    def expectation(self, functional: Callable[[Relation], float]) -> float:
        values = [float(functional(sample)) for sample in self.samples]
        return float(np.mean(values))

    def standard_error(self, functional: Callable[[Relation], float]) -> float:
        values = np.array([float(functional(sample)) for sample in self.samples])
        if len(values) < 2:
            return 0.0
        return float(values.std(ddof=1) / np.sqrt(len(values)))

    @classmethod
    def from_iterable(cls, samples: Iterable[Relation]) -> "MonteCarloWorlds":
        return cls(list(samples))
