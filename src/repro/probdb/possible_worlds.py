"""Possible worlds (Definition 1) and exact enumeration for small instances.

A possible world keeps every immutable attribute (including keys) fixed and
lets every mutable attribute range over its domain.  Exhaustive enumeration is
exponential and only feasible for tiny instances with finite domains; it is
used as the *naive baseline* against which the optimised engine is validated in
the tests, mirroring how the paper's semantics (Definition 5) is stated versus
how it is computed (Section 3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..exceptions import HypeRError
from ..relational.relation import Relation

__all__ = ["PossibleWorld", "count_possible_worlds", "enumerate_possible_worlds"]


@dataclass
class PossibleWorld:
    """One possible world of a relation plus its probability weight."""

    relation: Relation
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.probability < 0:
            raise HypeRError("a possible world cannot have negative probability")


def _mutable_value_choices(
    relation: Relation, mutable: Sequence[str]
) -> list[list[Any]]:
    """Domain values per mutable attribute (requires finite domains)."""
    choices = []
    for attribute in mutable:
        domain = relation.schema.domain(attribute)
        if not domain.is_finite:
            raise HypeRError(
                f"cannot enumerate possible worlds: domain of {attribute!r} is not finite"
            )
        choices.append(domain.values())
    return choices


def count_possible_worlds(relation: Relation, mutable: Sequence[str] | None = None) -> int:
    """Number of possible worlds of ``relation`` (Definition 1)."""
    mutable = list(mutable) if mutable is not None else list(relation.schema.mutable_attributes)
    choices = _mutable_value_choices(relation, mutable)
    per_tuple = 1
    for values in choices:
        per_tuple *= len(values)
    return per_tuple ** len(relation)


def enumerate_possible_worlds(
    relation: Relation,
    mutable: Sequence[str] | None = None,
    *,
    max_worlds: int = 200_000,
    weight: Callable[[Relation], float] | None = None,
) -> Iterator[PossibleWorld]:
    """Yield every possible world of ``relation``.

    ``mutable`` restricts which attributes vary (default: all mutable attributes
    of the schema).  ``weight`` optionally assigns an *unnormalised* probability
    to each world; the caller normalises (see
    :class:`repro.probdb.distribution.DiscreteWorldDistribution`).
    """
    mutable = list(mutable) if mutable is not None else list(relation.schema.mutable_attributes)
    if not mutable:
        yield PossibleWorld(relation, 1.0)
        return
    total = count_possible_worlds(relation, mutable)
    if total > max_worlds:
        raise HypeRError(
            f"refusing to enumerate {total} possible worlds (> max_worlds={max_worlds})"
        )
    choices = _mutable_value_choices(relation, mutable)
    n_rows = len(relation)

    # Each world assigns, per row, a combination of mutable values.
    per_row_combos = list(itertools.product(*choices))
    for assignment in itertools.product(per_row_combos, repeat=n_rows):
        world = relation
        for attr_idx, attribute in enumerate(mutable):
            values = [assignment[row][attr_idx] for row in range(n_rows)]
            world = world.with_column(attribute, values)
        w = 1.0 if weight is None else float(weight(world))
        yield PossibleWorld(world, w)


def worlds_from_samples(samples: Iterable[Relation]) -> list[PossibleWorld]:
    """Wrap Monte-Carlo sampled post-update relations as equally weighted worlds."""
    samples = list(samples)
    if not samples:
        return []
    p = 1.0 / len(samples)
    return [PossibleWorld(sample, p) for sample in samples]
