"""``HypeRClient`` — the stdlib Python SDK for the v1 HTTP API.

One keep-alive connection per client, typed answers, and production-shaped
failure handling::

    from repro.api import HypeRClient, what_if, set_, avg

    with HypeRClient("127.0.0.1", 8000) as client:
        answer = client.query(
            what_if().use("Credit").update(set_("CreditAmount", 1000)).output(avg("Risk"))
        )
        print(answer.value)
        for item in client.batch(["USE Credit UPDATE(Status) = 4 "
                                  "OUTPUT AVG(POST(Credit))"]):
            print(item.index, item.result.value if item.ok else item.error.message)

Behaviors:

* **Inputs.** ``query``/``batch`` accept SQL-extension text, built query
  objects, or fluent builders — non-text inputs are rendered through
  :func:`repro.lang.unparse`, whose output fingerprints identically, so the
  server's caches treat them as the same plan.
* **Retries.** Bounded (``max_retries``); 429 answers honor the server's
  ``Retry-After`` before retrying, transport failures (server closed the
  keep-alive connection, HTTP/1.0 front door) reconnect with exponential
  backoff.  Safe because every endpoint is either read-only or (for
  ``update``) an idempotent whole-column overwrite — replaying it commits
  the same values again.
* **Deadlines.** ``deadline`` caps the *whole* call including retries and
  backoff sleeps; when it cannot be met the client raises
  :class:`DeadlineExceeded` instead of sleeping past it.
* **Streaming.** :meth:`HypeRClient.batch` yields
  :class:`~repro.api.schemas.BatchItem` lines as the async front door streams
  them (completion order); against the threaded front door's single JSON
  response it yields the same items in index order.
"""

from __future__ import annotations

import gzip as gzip_module
import http.client
import json
import time
from typing import Any, Iterable, Iterator, Sequence

from ..exceptions import HypeRError
from ..obs.trace import new_request_id
from .endpoints import GZIP_MIN_BYTES
from .schemas import (
    Answer,
    BatchItem,
    BatchRequest,
    ErrorEnvelope,
    JobListAnswer,
    JobStatus,
    JobSubmitRequest,
    PrepareAnswer,
    PrepareRequest,
    QueryRequest,
    StatsSnapshot,
    UpdateAnswer,
    UpdateRequest,
    answer_from_json,
)

__all__ = [
    "HypeRClient",
    "HypeRClientError",
    "TransportError",
    "DeadlineExceeded",
    "ServerDeadlineExceeded",
    "ApiStatusError",
    "OverloadedError",
]


def _tag_request(message: str, request_id: str) -> str:
    return f"{message} [request {request_id}]" if request_id else message


class HypeRClientError(HypeRError):
    """Base class of every client-side failure.

    ``request_id`` is the ``X-Request-Id`` the failed call carried, so a
    client-side error names the exact server-side trace/log entries to pull.
    """

    def __init__(self, message: str, *, request_id: str = "") -> None:
        super().__init__(_tag_request(message, request_id))
        self.request_id = request_id


class TransportError(HypeRClientError):
    """The connection failed and the retry budget is exhausted."""


class DeadlineExceeded(HypeRClientError):
    """The request deadline expired before an answer arrived."""


class ApiStatusError(HypeRClientError):
    """The server answered with an error status; carries the parsed envelope."""

    def __init__(
        self,
        status: int,
        envelope: ErrorEnvelope,
        body: dict[str, Any],
        *,
        request_id: str = "",
    ):
        super().__init__(f"HTTP {status}: {envelope.message}", request_id=request_id)
        self.status = status
        self.envelope = envelope
        self.body = body

    @property
    def code(self) -> str:
        return self.envelope.code


class ServerDeadlineExceeded(ApiStatusError, DeadlineExceeded):
    """504 ``deadline_exceeded``: the request's ``deadline_ms`` ran out server-side.

    Subclasses both :class:`ApiStatusError` (it carries a parsed envelope) and
    :class:`DeadlineExceeded` (a ``except DeadlineExceeded`` catches budget
    exhaustion wherever the clock ran out — client or server).
    """


class OverloadedError(ApiStatusError):
    """429 after the retry budget; ``retry_after`` is the server's last hint."""

    def __init__(
        self,
        status: int,
        envelope: ErrorEnvelope,
        body: dict[str, Any],
        *,
        request_id: str = "",
    ):
        super().__init__(status, envelope, body, request_id=request_id)
        self.retry_after = float(body.get("retry_after") or 1.0)


def _error_from_response(
    status: int, body: dict[str, Any], *, request_id: str = ""
) -> ApiStatusError:
    try:
        envelope = ErrorEnvelope.from_json(body)
    except HypeRError:
        envelope = ErrorEnvelope("error", f"HTTP {status}: {body!r}")
    if status == 429:
        return OverloadedError(status, envelope, body, request_id=request_id)
    if envelope.code == "deadline_exceeded":
        return ServerDeadlineExceeded(status, envelope, body, request_id=request_id)
    return ApiStatusError(status, envelope, body, request_id=request_id)


class _Deadline:
    """Wall-clock budget for one logical call (request + retries + sleeps)."""

    __slots__ = ("expires_at", "request_id")

    def __init__(self, seconds: float | None, request_id: str = "") -> None:
        self.expires_at = None if seconds is None else time.monotonic() + seconds
        self.request_id = request_id

    def remaining(self) -> float | None:
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def check(self) -> None:
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceeded(
                "request deadline expired", request_id=self.request_id
            )

    def cap(self, seconds: float) -> float:
        remaining = self.remaining()
        return seconds if remaining is None else min(seconds, max(remaining, 0.0))


class HypeRClient:
    """Client for a HypeR service's ``/v1`` HTTP API (threaded or async front door).

    Parameters
    ----------
    host / port:
        Server address (as printed by ``repro serve``).
    timeout:
        Socket timeout per attempt, seconds (also the default deadline floor).
    max_retries:
        Retry budget per call for 429s and transport failures; ``0`` disables
        retrying entirely.
    backoff_seconds:
        Base of the exponential reconnect backoff (doubles per attempt).
    trace:
        When true, every query/update asks the server for its span tree
        (``?trace=1``); the answer's ``trace`` field carries it back.

    Every call sends a fresh ``X-Request-Id`` (kept across that call's
    retries, available afterwards as :attr:`last_request_id`), and every
    client-side error names the id it failed under — one string correlates a
    client log line, the server's trace, and its slow-query log.

    Not thread-safe: one client wraps one keep-alive connection.  Create one
    client per thread (they are cheap — the socket opens lazily).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        timeout: float = 60.0,
        max_retries: int = 3,
        backoff_seconds: float = 0.05,
        trace: bool = False,
        gzip_min_bytes: int | None = GZIP_MIN_BYTES,
        client_id: str = "",
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.trace = trace
        #: sent as ``X-Client-Id`` on every request; the server uses it for
        #: per-client stats, job ownership, and quota accounting.  Empty means
        #: the server assigns a per-connection anonymous id.
        self.client_id = client_id
        #: request bodies at or above this size are sent gzip-compressed;
        #: ``None`` disables request compression (responses are still
        #: negotiated via ``Accept-Encoding: gzip`` and decompressed)
        self.gzip_min_bytes = gzip_min_bytes
        #: the X-Request-Id of the most recently started call
        self.last_request_id: str = ""
        self._conn: http.client.HTTPConnection | None = None

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HypeRClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------------------

    def _connection(self, deadline: _Deadline) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        self._conn.timeout = self.cap_timeout(deadline)
        if self._conn.sock is not None:
            self._conn.sock.settimeout(self._conn.timeout)
        return self._conn

    def cap_timeout(self, deadline: _Deadline) -> float:
        capped = deadline.cap(self.timeout)
        return max(capped, 1e-3)

    def _drop_connection(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _sleep(self, seconds: float, deadline: _Deadline) -> None:
        remaining = deadline.remaining()
        if remaining is not None and seconds >= remaining:
            raise DeadlineExceeded(
                f"request deadline expires in {remaining:.3f}s, "
                f"cannot wait {seconds:.3f}s to retry",
                request_id=deadline.request_id,
            )
        time.sleep(seconds)

    def _begin_call(self, deadline: float | None) -> _Deadline:
        """Mint the call's request id and wall-clock budget (shared by retries)."""
        self.last_request_id = new_request_id()
        return _Deadline(deadline, self.last_request_id)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
        deadline: _Deadline,
    ) -> http.client.HTTPResponse:
        """Send one request, retrying 429s (per Retry-After) and dropped sockets."""
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        headers["Accept-Encoding"] = "gzip"
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if (
            body is not None
            and self.gzip_min_bytes is not None
            and len(body) >= self.gzip_min_bytes
        ):
            # mtime=0 keeps compression deterministic (same body, same bytes)
            body = gzip_module.compress(body, compresslevel=6, mtime=0)
            headers["Content-Encoding"] = "gzip"
        if deadline.request_id:
            # retries reuse the id: they are the same logical request
            headers["X-Request-Id"] = deadline.request_id
        attempt = 0
        while True:
            deadline.check()
            conn = self._connection(deadline)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
            except (ConnectionError, http.client.HTTPException, TimeoutError, OSError) as error:
                self._drop_connection()
                if attempt >= self.max_retries:
                    raise TransportError(
                        f"{method} {path} failed after {attempt + 1} attempt(s): "
                        f"{type(error).__name__}: {error}",
                        request_id=deadline.request_id,
                    ) from error
                self._sleep(self.backoff_seconds * (2**attempt), deadline)
                attempt += 1
                continue
            if response.status == 429 and attempt < self.max_retries:
                rejection = _decode_body(_read_body(response))
                if response.will_close:
                    self._drop_connection()
                # the body's retry_after is the server's precise float hint;
                # the Retry-After header is ceiled to whole seconds, so it
                # only serves as the fallback
                hint = rejection.get("retry_after")
                if hint is None:
                    header = response.getheader("Retry-After")
                    hint = float(header) if header else 1.0
                self._sleep(max(float(hint), 0.0), deadline)
                attempt += 1
                continue
            return response

    def _json_call(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
        deadline: _Deadline,
        *,
        accept: tuple[int, ...] = (200,),
    ) -> dict[str, Any]:
        response = self._request(method, path, payload, deadline)
        raw = _read_body(response)
        if response.will_close:
            self._drop_connection()
        body = _decode_body(raw)
        if response.status not in accept:
            raise _error_from_response(
                response.status, body, request_id=deadline.request_id
            )
        return body

    # -- query text coercion -----------------------------------------------------------

    @staticmethod
    def _server_deadline_ms(
        deadline: float | None, deadline_ms: int | None
    ) -> int | None:
        """The ``deadline_ms`` a request carries: explicit, or the call budget."""
        if deadline_ms is not None:
            return deadline_ms
        if deadline is None:
            return None
        return max(1, int(deadline * 1000))

    @staticmethod
    def _as_text(query: Any) -> str:
        if isinstance(query, str):
            return query
        from ..lang.unparse import unparse
        from .builder import as_query_object

        return unparse(as_query_object(query))

    # -- endpoints ---------------------------------------------------------------------

    def health(self, *, deadline: float | None = None) -> dict[str, Any]:
        """``GET /v1/health``."""
        return self._json_call("GET", "/v1/health", None, self._begin_call(deadline))

    def stats(self, *, deadline: float | None = None) -> StatsSnapshot:
        """``GET /v1/stats`` as a typed :class:`StatsSnapshot`."""
        body = self._json_call("GET", "/v1/stats", None, self._begin_call(deadline))
        return StatsSnapshot.from_json(body)

    def metrics(self, *, deadline: float | None = None) -> str:
        """``GET /v1/metrics``: the server's Prometheus text exposition."""
        budget = self._begin_call(deadline)
        response = self._request("GET", "/v1/metrics", None, budget)
        raw = _read_body(response)
        if response.will_close:
            self._drop_connection()
        if response.status != 200:
            raise _error_from_response(
                response.status, _decode_body(raw), request_id=budget.request_id
            )
        return raw.decode("utf-8")

    def slow_queries(self, *, deadline: float | None = None) -> dict[str, Any]:
        """``GET /v1/slow``: the server's slow-query log snapshot."""
        return self._json_call("GET", "/v1/slow", None, self._begin_call(deadline))

    def query(
        self,
        query: Any,
        *,
        exhaustive: bool = False,
        deadline: float | None = None,
        deadline_ms: int | None = None,
        trace: bool | None = None,
    ) -> Answer:
        """Answer one query (text, query object, or builder) as a typed answer.

        ``trace`` overrides the client default; a builder that asked for
        ``.trace()`` turns it on for this call as well.  Traced answers carry
        the server's span tree in their ``trace`` field.  The request carries
        ``deadline_ms`` (explicit, or derived from ``deadline``) so the server
        answers 504 ``deadline_exceeded`` — raised here as
        :class:`ServerDeadlineExceeded` — instead of computing a doomed answer.
        """
        wants_trace = self.trace if trace is None else trace
        wants_trace = wants_trace or bool(getattr(query, "wants_trace", False))
        request = QueryRequest(
            query=self._as_text(query),
            exhaustive=exhaustive,
            deadline_ms=self._server_deadline_ms(deadline, deadline_ms),
        )
        path = "/v1/query?trace=1" if wants_trace else "/v1/query"
        body = self._json_call(
            "POST", path, request.to_json(), self._begin_call(deadline)
        )
        return answer_from_json(body)

    def update(
        self,
        assignments: dict[str, dict[str, Sequence[float]]],
        *,
        deadline: float | None = None,
        trace: bool | None = None,
    ) -> UpdateAnswer:
        """``POST /v1/update``: commit whole-column overwrites as one generation.

        ``assignments`` maps relation → attribute → the full new column (one
        value per row).  The server commits everything named here atomically
        under MVCC — queries racing the commit answer entirely from the old
        or entirely from the new snapshot.  Idempotent (an overwrite replayed
        by a transport retry commits the same values), so the usual retry
        policy applies.
        """
        request = UpdateRequest(
            assignments={
                relation: {attr: tuple(float(v) for v in values) for attr, values in columns.items()}
                for relation, columns in assignments.items()
            }
        )
        wants_trace = self.trace if trace is None else trace
        path = "/v1/update?trace=1" if wants_trace else "/v1/update"
        body = self._json_call(
            "POST", path, request.to_json(), self._begin_call(deadline)
        )
        return UpdateAnswer.from_json(body)

    def batch(
        self,
        queries: Sequence[Any] | Iterable[Any],
        *,
        deadline: float | None = None,
        deadline_ms: int | None = None,
    ) -> Iterator[BatchItem]:
        """Stream a batch's per-query outcomes as they complete.

        Against the asyncio front door this yields NDJSON lines live (in
        completion order); against the threaded front door it yields the
        single JSON response's items in index order.  The iterator owns the
        connection until exhausted — drain it before issuing the next call.
        """
        texts = [self._as_text(q) for q in queries]
        request = BatchRequest(
            queries=tuple(texts),
            deadline_ms=self._server_deadline_ms(deadline, deadline_ms),
        )
        budget = self._begin_call(deadline)
        response = self._request("POST", "/v1/batch", request.to_json(), budget)
        if response.status != 200:
            raw = _read_body(response)
            if response.will_close:
                self._drop_connection()
            raise _error_from_response(
                response.status, _decode_body(raw), request_id=budget.request_id
            )
        content_type = (response.getheader("Content-Type") or "").lower()
        if "ndjson" in content_type:
            return self._iter_ndjson(response, len(texts), budget)
        raw = _read_body(response)
        if response.will_close:
            self._drop_connection()
        return self._iter_results(_decode_body(raw))

    def batch_collect(
        self,
        queries: Sequence[Any],
        *,
        deadline: float | None = None,
    ) -> list[BatchItem]:
        """All batch outcomes, ordered by query index."""
        items = list(self.batch(queries, deadline=deadline))
        return sorted(items, key=lambda item: item.index)

    # -- prepare / jobs ----------------------------------------------------------------

    def prepare(
        self,
        queries: Sequence[Any] | Iterable[Any],
        *,
        deadline: float | None = None,
    ) -> PrepareAnswer:
        """``POST /v1/prepare``: warm server-side plans/views for these queries.

        Preparation is a hint — it never changes answers, only moves plan and
        view construction off the first query's latency.  Safe to retry.
        """
        request = PrepareRequest(queries=tuple(self._as_text(q) for q in queries))
        body = self._json_call(
            "POST", "/v1/prepare", request.to_json(), self._begin_call(deadline)
        )
        return PrepareAnswer.from_json(body)

    def submit_job(
        self,
        query: Any = None,
        *,
        queries: Sequence[Any] | None = None,
        priority: str = "normal",
        run_at_generation: int | None = None,
        exhaustive: bool = False,
        deadline: float | None = None,
    ) -> JobStatus:
        """``POST /v1/jobs``: enqueue one query (or a batch) as a durable job.

        Exactly one of ``query``/``queries`` must be given.  Submission is
        journaled before the 202 answer, so an accepted job survives a server
        crash.  Note that a *transport* retry of a submit may enqueue the job
        twice (submission is not idempotent); poll :meth:`jobs` to reconcile.
        """
        request = JobSubmitRequest(
            query=self._as_text(query) if query is not None else None,
            queries=(
                tuple(self._as_text(q) for q in queries)
                if queries is not None
                else None
            ),
            priority=priority,
            run_at_generation=run_at_generation,
            exhaustive=exhaustive,
        )
        body = self._json_call(
            "POST",
            "/v1/jobs",
            request.to_json(),
            self._begin_call(deadline),
            accept=(200, 202),
        )
        return JobStatus.from_json(body)

    def job(self, job_id: str, *, deadline: float | None = None) -> JobStatus:
        """``GET /v1/jobs/{id}``: the job's current status."""
        body = self._json_call(
            "GET", f"/v1/jobs/{job_id}", None, self._begin_call(deadline)
        )
        return JobStatus.from_json(body)

    def jobs(self, *, deadline: float | None = None) -> JobListAnswer:
        """``GET /v1/jobs``: this client's jobs (per ``client_id``), oldest first."""
        body = self._json_call("GET", "/v1/jobs", None, self._begin_call(deadline))
        return JobListAnswer.from_json(body)

    def job_result(
        self, job_id: str, *, deadline: float | None = None
    ) -> dict[str, Any]:
        """``GET /v1/jobs/{id}/result``: the finished job's result document.

        404 ``not_found`` while the job is still in flight, 404
        ``result_expired`` once a succeeded job's result has aged out of the
        retention store (the terminal *status* survives either way).
        """
        return self._json_call(
            "GET", f"/v1/jobs/{job_id}/result", None, self._begin_call(deadline)
        )

    def cancel_job(self, job_id: str, *, deadline: float | None = None) -> JobStatus:
        """``POST /v1/jobs/{id}/cancel``: request cancellation (idempotent)."""
        body = self._json_call(
            "POST", f"/v1/jobs/{job_id}/cancel", {}, self._begin_call(deadline)
        )
        return JobStatus.from_json(body)

    def job_events(
        self,
        job_id: str,
        *,
        timeout_s: float | None = None,
        deadline: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """``GET /v1/jobs/{id}/events``: stream the job's NDJSON event lines.

        Yields each event dict as the server emits it and ends after the
        server's ``{"done": true, ...}`` line (yielded last).  ``timeout_s``
        caps how long the *server* keeps the stream open waiting for the job
        to finish.  The iterator owns the connection until exhausted.
        """
        path = f"/v1/jobs/{job_id}/events"
        if timeout_s is not None:
            path += f"?timeout_s={float(timeout_s):g}"
        budget = self._begin_call(deadline)
        response = self._request("GET", path, None, budget)
        if response.status != 200:
            raw = _read_body(response)
            if response.will_close:
                self._drop_connection()
            raise _error_from_response(
                response.status, _decode_body(raw), request_id=budget.request_id
            )
        return self._iter_events(response, budget)

    def _iter_events(
        self, response: http.client.HTTPResponse, deadline: _Deadline
    ) -> Iterator[dict[str, Any]]:
        try:
            while True:
                deadline.check()
                line = response.readline()
                if not line:
                    # close-delimited stream (threaded front door) ends here
                    self._drop_connection()
                    return
                if not line.strip():
                    continue
                data = json.loads(line)
                yield data
                if data.get("done"):
                    response.read()  # drain the chunked terminator, if any
                    if response.will_close:
                        self._drop_connection()
                    return
        except (ConnectionError, http.client.HTTPException, TimeoutError, OSError) as error:
            self._drop_connection()
            raise TransportError(
                f"job event stream failed: {error}", request_id=deadline.request_id
            ) from error

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll_seconds: float = 0.25,
    ) -> JobStatus:
        """Block until the job reaches a terminal state; returns its status.

        Polls ``GET /v1/jobs/{id}`` (each poll under the remaining budget);
        raises :class:`DeadlineExceeded` if ``timeout`` elapses first.
        """
        budget = _Deadline(timeout)
        while True:
            remaining = budget.remaining()
            status = self.job(job_id, deadline=remaining)
            if status.terminal:
                return status
            budget.check()
            self._sleep(min(poll_seconds, self.cap_timeout(budget)), budget)

    # -- batch framing -----------------------------------------------------------------

    def _iter_ndjson(
        self,
        response: http.client.HTTPResponse,
        n_queries: int,
        deadline: _Deadline,
    ) -> Iterator[BatchItem]:
        seen = 0
        try:
            while True:
                deadline.check()
                line = response.readline()
                if not line:
                    raise TransportError(
                        f"batch stream ended early: {seen}/{n_queries} results",
                        request_id=deadline.request_id,
                    )
                data = json.loads(line)
                if data.get("done"):
                    if seen != n_queries:
                        raise TransportError(
                            f"batch stream closed after {seen}/{n_queries} results",
                            request_id=deadline.request_id,
                        )
                    # drain the chunked terminator so the keep-alive
                    # connection is clean for the next request
                    response.read()
                    if response.will_close:
                        self._drop_connection()
                    return
                seen += 1
                yield BatchItem.from_json(data)
        except (ConnectionError, http.client.HTTPException, TimeoutError, OSError) as error:
            self._drop_connection()
            raise TransportError(
                f"batch stream failed: {error}", request_id=deadline.request_id
            ) from error

    @staticmethod
    def _iter_results(body: dict[str, Any]) -> Iterator[BatchItem]:
        results = body.get("results")
        if not isinstance(results, list):
            raise TransportError(f"malformed batch response: {body!r}")
        for index, entry in enumerate(results):
            if isinstance(entry, dict) and "error" in entry:
                yield BatchItem(index=index, error=ErrorEnvelope.from_json(entry))
            else:
                yield BatchItem(index=index, result=answer_from_json(entry))


def _read_body(response: http.client.HTTPResponse) -> bytes:
    """Read a response body, undoing negotiated ``Content-Encoding: gzip``."""
    raw = response.read()
    encoding = (response.getheader("Content-Encoding") or "").strip().lower()
    if raw and encoding == "gzip":
        try:
            raw = gzip_module.decompress(raw)
        except (OSError, EOFError) as error:
            raise TransportError(f"server sent a malformed gzip body: {error}") from None
    return raw


def _decode_body(raw: bytes) -> dict[str, Any]:
    try:
        data = json.loads(raw) if raw else {}
    except json.JSONDecodeError as error:
        raise TransportError(f"server sent a non-JSON body: {error}") from None
    if not isinstance(data, dict):
        raise TransportError(f"server sent a non-object body: {data!r}")
    return data
