"""Versioned (v1) wire schemas of the public HypeR API.

Every byte that crosses the HTTP boundary — requests, answers, error bodies,
stats, NDJSON batch lines — is produced and consumed through the typed
dataclasses in this module.  The rules:

* **One version string.** Every payload carries ``"api_version": "v1"``.
  Additive evolution (new optional fields) stays within ``v1``; renaming or
  removing a field requires ``v2`` side-by-side.  Golden fixtures under
  ``tests/api/fixtures/`` pin the exact serialized forms so accidental wire
  changes fail CI.
* **Strict codecs.** ``from_json`` validates types, rejects unknown fields
  and wrong versions with :class:`WireFormatError`; ``to_json`` emits plain
  JSON-serializable dicts with stable field names and ordering.
* **No behavior.** Schemas never touch the engine; converters *from* engine
  result objects (:meth:`WhatIfAnswer.from_result` etc.) only read public
  attributes, so any duck-typed result works.

The error body is flat and backwards compatible: ``{"error": <message>,
"code": <machine code>, "detail": {...}?}`` — legacy clients keep reading
``body["error"]`` as a string while v1 clients dispatch on ``code``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..exceptions import HypeRError

__all__ = [
    "API_VERSION",
    "WireFormatError",
    "QueryRequest",
    "BatchRequest",
    "UpdateRequest",
    "UpdateAnswer",
    "WhatIfAnswer",
    "HowToAnswer",
    "TraceSpan",
    "BatchItem",
    "ErrorEnvelope",
    "StatsSnapshot",
    "PrepareRequest",
    "PrepareAnswer",
    "JobSubmitRequest",
    "JobStatus",
    "JobListAnswer",
    "answer_from_result",
    "answer_from_json",
]

#: the current wire-schema version; embedded in every payload
API_VERSION = "v1"


class WireFormatError(HypeRError):
    """A JSON payload violates the v1 wire schema."""


# -- strict decoding helpers -----------------------------------------------------------


def _require_object(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise WireFormatError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _reject_unknown(data: Mapping[str, Any], allowed: set[str], what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise WireFormatError(f"{what} has unknown field(s) {unknown}; allowed: {sorted(allowed)}")


def _check_version(data: Mapping[str, Any], what: str) -> None:
    version = data.get("api_version", API_VERSION)
    if version != API_VERSION:
        raise WireFormatError(
            f"{what} declares api_version {version!r}; this library speaks {API_VERSION!r}"
        )


def _get_str(data: Mapping[str, Any], key: str, what: str) -> str:
    value = data.get(key)
    if not isinstance(value, str):
        raise WireFormatError(f'{what} must contain a "{key}" string')
    return value


def _get_bool(data: Mapping[str, Any], key: str, what: str, default: bool = False) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise WireFormatError(f'{what} field "{key}" must be a boolean')
    return value


def _get_int(data: Mapping[str, Any], key: str, what: str) -> int:
    value = data.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireFormatError(f'{what} field "{key}" must be an integer')
    return value


def _get_float(data: Mapping[str, Any], key: str, what: str) -> float:
    value = data.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireFormatError(f'{what} field "{key}" must be a number')
    return float(value)


# -- requests --------------------------------------------------------------------------


def _get_deadline_ms(data: Mapping[str, Any], what: str) -> int | None:
    """Optional positive ``deadline_ms`` budget (additive v1 field)."""
    value = data.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireFormatError(f'{what} field "deadline_ms" must be an integer')
    if value <= 0:
        raise WireFormatError(f'{what} field "deadline_ms" must be positive')
    return value


@dataclass(frozen=True)
class QueryRequest:
    """Body of ``POST /v1/query``: one query in the SQL extension.

    ``deadline_ms`` is the caller's remaining time budget: a server that
    cannot start executing before it runs out answers a ``deadline_exceeded``
    envelope instead of computing a doomed answer, and a relaying front door
    (the cluster coordinator) forwards the *decremented* remainder downstream.
    """

    query: str
    exhaustive: bool = False
    deadline_ms: int | None = None

    _FIELDS = {"api_version", "query", "exhaustive", "deadline_ms"}

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "api_version": API_VERSION,
            "query": self.query,
            "exhaustive": self.exhaustive,
        }
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_json(cls, data: Any) -> "QueryRequest":
        data = _require_object(data, "query request")
        _reject_unknown(data, cls._FIELDS, "query request")
        _check_version(data, "query request")
        return cls(
            query=_get_str(data, "query", "query request"),
            exhaustive=_get_bool(data, "exhaustive", "query request"),
            deadline_ms=_get_deadline_ms(data, "query request"),
        )


@dataclass(frozen=True)
class BatchRequest:
    """Body of ``POST /v1/batch``: many queries, answered concurrently.

    ``deadline_ms`` covers the whole batch; queries that would start after
    the budget ran out answer per-item ``deadline_exceeded`` envelopes.
    """

    queries: tuple[str, ...]
    deadline_ms: int | None = None

    _FIELDS = {"api_version", "queries", "deadline_ms"}

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "api_version": API_VERSION,
            "queries": list(self.queries),
        }
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_json(cls, data: Any) -> "BatchRequest":
        data = _require_object(data, "batch request")
        _reject_unknown(data, cls._FIELDS, "batch request")
        _check_version(data, "batch request")
        queries = data.get("queries")
        if not isinstance(queries, list) or not all(isinstance(q, str) for q in queries):
            raise WireFormatError('batch request must contain a "queries" list of strings')
        return cls(
            queries=tuple(queries),
            deadline_ms=_get_deadline_ms(data, "batch request"),
        )


@dataclass(frozen=True)
class UpdateRequest:
    """Body of ``POST /v1/update``: overwrite whole columns atomically.

    ``assignments`` maps relation name → attribute name → the full column of
    new values (one number per row, in row order).  All named columns commit
    as **one** database generation: concurrent queries answer either entirely
    from the pre-update snapshot or entirely from the post-update one, never
    a blend (see ``docs/service.md``, "Updates & isolation").
    """

    assignments: Mapping[str, Mapping[str, tuple[float, ...]]]

    _FIELDS = {"api_version", "assignments"}

    def to_json(self) -> dict[str, Any]:
        return {
            "api_version": API_VERSION,
            "assignments": {
                relation: {attribute: list(values) for attribute, values in columns.items()}
                for relation, columns in self.assignments.items()
            },
        }

    @classmethod
    def from_json(cls, data: Any) -> "UpdateRequest":
        data = _require_object(data, "update request")
        _reject_unknown(data, cls._FIELDS, "update request")
        _check_version(data, "update request")
        assignments = data.get("assignments")
        if not isinstance(assignments, Mapping) or not assignments:
            raise WireFormatError(
                'update request must contain a non-empty "assignments" object'
            )
        decoded: dict[str, dict[str, tuple[float, ...]]] = {}
        for relation, columns in assignments.items():
            if not isinstance(relation, str):
                raise WireFormatError("update request relation names must be strings")
            if not isinstance(columns, Mapping) or not columns:
                raise WireFormatError(
                    f"update request assignments for relation {relation!r} must be "
                    "a non-empty object of attribute -> values"
                )
            decoded[relation] = {}
            for attribute, values in columns.items():
                if not isinstance(attribute, str):
                    raise WireFormatError(
                        f"update request attribute names of relation {relation!r} "
                        "must be strings"
                    )
                if not isinstance(values, list) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in values
                ):
                    raise WireFormatError(
                        f"update request column {relation}.{attribute} must be a "
                        "list of numbers"
                    )
                decoded[relation][attribute] = tuple(float(v) for v in values)
        return cls(assignments=decoded)


# -- trace spans -----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpan:
    """One node of a request's span tree (``?trace=1`` answers).

    ``duration_ms`` is a monotonic-clock duration; spans carry durations
    rather than absolute timestamps so coordinator and shard-worker clocks
    never mix.  ``meta`` holds span-specific annotations (the root span's
    meta carries ``request_id``); ``children`` are the spans opened while
    this one was current, in start order.
    """

    name: str
    duration_ms: float
    meta: Mapping[str, Any] | None = None
    children: tuple["TraceSpan", ...] = ()

    _FIELDS = {"name", "duration_ms", "meta", "children"}

    def to_json(self) -> dict[str, Any]:
        body: dict[str, Any] = {"name": self.name, "duration_ms": self.duration_ms}
        if self.meta is not None:
            body["meta"] = dict(self.meta)
        body["children"] = [child.to_json() for child in self.children]
        return body

    @classmethod
    def from_json(cls, data: Any) -> "TraceSpan":
        data = _require_object(data, "trace span")
        _reject_unknown(data, cls._FIELDS, "trace span")
        meta = data.get("meta")
        if meta is not None and not isinstance(meta, Mapping):
            raise WireFormatError('trace span field "meta" must be an object')
        children = data.get("children", [])
        if not isinstance(children, list):
            raise WireFormatError('trace span field "children" must be a list')
        return cls(
            name=_get_str(data, "name", "trace span"),
            duration_ms=_get_float(data, "duration_ms", "trace span"),
            meta=dict(meta) if meta is not None else None,
            children=tuple(cls.from_json(child) for child in children),
        )


def _decode_optional_trace(data: Mapping[str, Any], what: str) -> "TraceSpan | None":
    raw = data.get("trace")
    if raw is None:
        return None
    return TraceSpan.from_json(raw)


# -- answers ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UpdateAnswer:
    """Wire form of a commit outcome: the new generation and what changed.

    ``changed`` lists the relations whose generation counter was bumped by
    this commit; when it is empty the commit was a no-op and ``generation``
    reports the (unchanged) current generation.
    """

    generation: int
    changed: tuple[str, ...]
    #: span tree, present only when the request asked for ``?trace=1``
    trace: "TraceSpan | None" = None

    KIND = "update"
    _FIELDS = {"api_version", "kind", "generation", "changed", "trace"}

    @property
    def noop(self) -> bool:
        return not self.changed

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "generation": self.generation,
            "changed": sorted(self.changed),
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_json()
        return out

    @classmethod
    def from_json(cls, data: Any) -> "UpdateAnswer":
        data = _require_object(data, "update answer")
        _reject_unknown(data, cls._FIELDS, "update answer")
        _check_version(data, "update answer")
        if data.get("kind") != cls.KIND:
            raise WireFormatError(f'update answer must declare "kind": "{cls.KIND}"')
        changed = data.get("changed")
        if not isinstance(changed, list) or not all(isinstance(c, str) for c in changed):
            raise WireFormatError('update answer field "changed" must be a string list')
        return cls(
            generation=_get_int(data, "generation", "update answer"),
            changed=tuple(changed),
            trace=_decode_optional_trace(data, "update answer"),
        )


@dataclass(frozen=True)
class WhatIfAnswer:
    """Wire form of a what-if answer (:class:`repro.core.results.WhatIfResult`)."""

    value: float
    aggregate: str
    output_attribute: str
    variant: str
    n_scope_tuples: int
    n_blocks: int
    backdoor_set: tuple[str, ...]
    runtime_seconds: float
    #: span tree, present only when the request asked for ``?trace=1``
    trace: "TraceSpan | None" = None

    KIND = "what-if"
    _FIELDS = {
        "api_version",
        "kind",
        "value",
        "aggregate",
        "output_attribute",
        "variant",
        "n_scope_tuples",
        "n_blocks",
        "backdoor_set",
        "runtime_seconds",
        "trace",
    }

    @classmethod
    def from_result(cls, result: Any) -> "WhatIfAnswer":
        return cls(
            value=float(result.value),
            aggregate=result.aggregate,
            output_attribute=result.output_attribute,
            variant=result.variant,
            n_scope_tuples=int(result.n_scope_tuples),
            n_blocks=int(result.n_blocks),
            backdoor_set=tuple(result.backdoor_set),
            runtime_seconds=float(result.runtime_seconds),
        )

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "value": self.value,
            "aggregate": self.aggregate,
            "output_attribute": self.output_attribute,
            "variant": self.variant,
            "n_scope_tuples": self.n_scope_tuples,
            "n_blocks": self.n_blocks,
            "backdoor_set": list(self.backdoor_set),
            "runtime_seconds": self.runtime_seconds,
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_json()
        return out

    @classmethod
    def from_json(cls, data: Any) -> "WhatIfAnswer":
        data = _require_object(data, "what-if answer")
        _reject_unknown(data, cls._FIELDS, "what-if answer")
        _check_version(data, "what-if answer")
        if data.get("kind") != cls.KIND:
            raise WireFormatError(f'what-if answer must declare "kind": "{cls.KIND}"')
        backdoor = data.get("backdoor_set")
        if not isinstance(backdoor, list) or not all(isinstance(a, str) for a in backdoor):
            raise WireFormatError('what-if answer field "backdoor_set" must be a string list')
        return cls(
            value=_get_float(data, "value", "what-if answer"),
            aggregate=_get_str(data, "aggregate", "what-if answer"),
            output_attribute=_get_str(data, "output_attribute", "what-if answer"),
            variant=_get_str(data, "variant", "what-if answer"),
            n_scope_tuples=_get_int(data, "n_scope_tuples", "what-if answer"),
            n_blocks=_get_int(data, "n_blocks", "what-if answer"),
            backdoor_set=tuple(backdoor),
            runtime_seconds=_get_float(data, "runtime_seconds", "what-if answer"),
            trace=_decode_optional_trace(data, "what-if answer"),
        )


@dataclass(frozen=True)
class HowToAnswer:
    """Wire form of a how-to answer (:class:`repro.core.results.HowToResult`)."""

    objective_value: float
    baseline_value: float
    maximize: bool
    plan: Mapping[str, str]
    solver_status: str
    runtime_seconds: float
    #: span tree, present only when the request asked for ``?trace=1``
    trace: "TraceSpan | None" = None

    KIND = "how-to"
    _FIELDS = {
        "api_version",
        "kind",
        "objective_value",
        "baseline_value",
        "maximize",
        "plan",
        "solver_status",
        "runtime_seconds",
        "trace",
    }

    @classmethod
    def from_result(cls, result: Any) -> "HowToAnswer":
        return cls(
            objective_value=float(result.objective_value),
            baseline_value=float(result.baseline_value),
            maximize=bool(result.maximize),
            plan={str(k): str(v) for k, v in result.plan().items()},
            solver_status=result.solver_status,
            runtime_seconds=float(result.runtime_seconds),
        )

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "objective_value": self.objective_value,
            "baseline_value": self.baseline_value,
            "maximize": self.maximize,
            "plan": dict(self.plan),
            "solver_status": self.solver_status,
            "runtime_seconds": self.runtime_seconds,
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_json()
        return out

    @classmethod
    def from_json(cls, data: Any) -> "HowToAnswer":
        data = _require_object(data, "how-to answer")
        _reject_unknown(data, cls._FIELDS, "how-to answer")
        _check_version(data, "how-to answer")
        if data.get("kind") != cls.KIND:
            raise WireFormatError(f'how-to answer must declare "kind": "{cls.KIND}"')
        plan = data.get("plan")
        if not isinstance(plan, Mapping) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in plan.items()
        ):
            raise WireFormatError('how-to answer field "plan" must map strings to strings')
        return cls(
            objective_value=_get_float(data, "objective_value", "how-to answer"),
            baseline_value=_get_float(data, "baseline_value", "how-to answer"),
            maximize=_get_bool(data, "maximize", "how-to answer"),
            plan=dict(plan),
            solver_status=_get_str(data, "solver_status", "how-to answer"),
            runtime_seconds=_get_float(data, "runtime_seconds", "how-to answer"),
            trace=_decode_optional_trace(data, "how-to answer"),
        )


Answer = WhatIfAnswer | HowToAnswer


def answer_from_result(result: Any) -> Answer:
    """Convert an engine result object into its typed wire answer."""
    if hasattr(result, "objective_value"):
        return HowToAnswer.from_result(result)
    return WhatIfAnswer.from_result(result)


def answer_from_json(data: Any) -> Answer:
    """Strictly decode an answer payload, dispatching on its ``kind``."""
    data = _require_object(data, "answer")
    kind = data.get("kind")
    if kind == WhatIfAnswer.KIND:
        return WhatIfAnswer.from_json(data)
    if kind == HowToAnswer.KIND:
        return HowToAnswer.from_json(data)
    raise WireFormatError(f"answer has unknown kind {kind!r}")


# -- errors ----------------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorEnvelope:
    """The one error body both front doors speak, on every endpoint.

    ``code`` is a stable machine-readable slug (``bad_request``,
    ``query_syntax``, ``query_semantics``, ``payload_too_large``,
    ``rate_limited``, ``not_found``, ``internal``); ``message`` is
    human-readable; ``detail`` carries structured extras (caret position of a
    syntax error, retry hints).  Serialized flat so legacy consumers keep
    reading ``body["error"]`` as a plain string.
    """

    code: str
    message: str
    detail: Mapping[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        body: dict[str, Any] = {"error": self.message, "code": self.code}
        if self.detail is not None:
            body["detail"] = dict(self.detail)
        return body

    @classmethod
    def from_json(cls, data: Any) -> "ErrorEnvelope":
        # deliberately tolerant of extra fields: endpoints may decorate the
        # envelope (e.g. a top-level retry_after on 429 bodies)
        data = _require_object(data, "error body")
        message = _get_str(data, "error", "error body")
        code = data.get("code")
        if code is not None and not isinstance(code, str):
            raise WireFormatError('error body field "code" must be a string')
        detail = data.get("detail")
        if detail is not None and not isinstance(detail, Mapping):
            raise WireFormatError('error body field "detail" must be an object')
        return cls(code=code or "error", message=message, detail=detail)


# -- batch lines -----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchItem:
    """One per-query outcome of a batch: either an answer or an error envelope."""

    index: int
    result: Answer | None = None
    error: ErrorEnvelope | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_json(self) -> dict[str, Any]:
        if (self.result is None) == (self.error is None):
            raise WireFormatError("a batch item carries exactly one of result/error")
        if self.result is not None:
            return {"index": self.index, "result": self.result.to_json()}
        return {"index": self.index, **self.error.to_json()}

    @classmethod
    def from_json(cls, data: Any) -> "BatchItem":
        data = _require_object(data, "batch item")
        index = _get_int(data, "index", "batch item")
        if "result" in data:
            return cls(index=index, result=answer_from_json(data["result"]))
        return cls(index=index, error=ErrorEnvelope.from_json(data))


# -- stats -----------------------------------------------------------------------------


@dataclass(frozen=True)
class StatsSnapshot:
    """Typed wrapper of ``GET /v1/stats``.

    The core counters are first-class fields; instrumentation sections whose
    layout belongs to other subsystems (``caches``, ``serving``, ``pool``,
    the async front-end's ``aserve``) pass through as mappings — their inner
    shape is documented by those subsystems, and new sections are additive.
    """

    generation: int
    execution: str
    n_queries: int
    n_batches: int
    uptime_seconds: float
    relation_generations: Mapping[str, int] = field(default_factory=dict)
    caches: Mapping[str, Any] = field(default_factory=dict)
    serving: Mapping[str, Any] = field(default_factory=dict)
    regressors: Mapping[str, Any] = field(default_factory=dict)
    #: MVCC counters (commits, retired, noop_commits, pinned_fallbacks, ...)
    versions: Mapping[str, Any] | None = None
    pool: Mapping[str, Any] | None = None
    sections: Mapping[str, Any] = field(default_factory=dict)

    _KNOWN = {
        "api_version",
        "generation",
        "execution",
        "n_queries",
        "n_batches",
        "uptime_seconds",
        "relation_generations",
        "caches",
        "serving",
        "regressors",
        "versions",
        "pool",
    }

    @classmethod
    def from_service_stats(cls, stats: Mapping[str, Any]) -> "StatsSnapshot":
        """Wrap :meth:`HypeRService.stats` output (extra keys become sections)."""
        return cls(
            generation=int(stats["generation"]),
            execution=str(stats["execution"]),
            n_queries=int(stats["n_queries"]),
            n_batches=int(stats["n_batches"]),
            uptime_seconds=float(stats["uptime_seconds"]),
            relation_generations=dict(stats.get("relation_generations", {})),
            caches=dict(stats.get("caches", {})),
            serving=dict(stats.get("serving", {})),
            regressors=dict(stats.get("regressors", {})),
            versions=stats.get("versions"),
            pool=stats.get("pool"),
            sections={k: v for k, v in stats.items() if k not in cls._KNOWN},
        )

    def to_json(self) -> dict[str, Any]:
        body: dict[str, Any] = {
            "api_version": API_VERSION,
            "generation": self.generation,
            "execution": self.execution,
            "n_queries": self.n_queries,
            "n_batches": self.n_batches,
            "uptime_seconds": self.uptime_seconds,
            "relation_generations": dict(self.relation_generations),
            "caches": dict(self.caches),
            "serving": dict(self.serving),
            "regressors": dict(self.regressors),
            "versions": self.versions,
            "pool": self.pool,
        }
        for name, section in self.sections.items():
            body[name] = section
        return body

    @classmethod
    def from_json(cls, data: Any) -> "StatsSnapshot":
        data = _require_object(data, "stats snapshot")
        _check_version(data, "stats snapshot")
        return cls(
            generation=_get_int(data, "generation", "stats snapshot"),
            execution=_get_str(data, "execution", "stats snapshot"),
            n_queries=_get_int(data, "n_queries", "stats snapshot"),
            n_batches=_get_int(data, "n_batches", "stats snapshot"),
            uptime_seconds=_get_float(data, "uptime_seconds", "stats snapshot"),
            relation_generations=dict(data.get("relation_generations", {})),
            caches=dict(data.get("caches", {})),
            serving=dict(data.get("serving", {})),
            regressors=dict(data.get("regressors", {})),
            versions=data.get("versions"),
            pool=data.get("pool"),
            sections={k: v for k, v in data.items() if k not in cls._KNOWN},
        )


# -- prepare ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrepareRequest:
    """Body of ``POST /v1/prepare``: warm plans/estimators before real traffic.

    Every query is planned and its estimator fitted under one pinned
    snapshot; nothing is answered.  Clients call this before heavy sweeps so
    the first real request hits hot caches, and the job executor can warm a
    cold node the same way.
    """

    queries: tuple[str, ...]

    _FIELDS = {"api_version", "queries"}

    def to_json(self) -> dict[str, Any]:
        return {"api_version": API_VERSION, "queries": list(self.queries)}

    @classmethod
    def from_json(cls, data: Any) -> "PrepareRequest":
        data = _require_object(data, "prepare request")
        _reject_unknown(data, cls._FIELDS, "prepare request")
        _check_version(data, "prepare request")
        queries = data.get("queries")
        if (
            not isinstance(queries, list)
            or not queries
            or not all(isinstance(q, str) for q in queries)
        ):
            raise WireFormatError(
                'prepare request must contain a non-empty "queries" list of strings'
            )
        return cls(queries=tuple(queries))


@dataclass(frozen=True)
class PrepareAnswer:
    """Answer of ``POST /v1/prepare``."""

    KIND = "prepare"

    prepared: int
    generation: int

    _FIELDS = {"api_version", "kind", "prepared", "generation"}

    def to_json(self) -> dict[str, Any]:
        return {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "prepared": self.prepared,
            "generation": self.generation,
        }

    @classmethod
    def from_json(cls, data: Any) -> "PrepareAnswer":
        data = _require_object(data, "prepare answer")
        _reject_unknown(data, cls._FIELDS, "prepare answer")
        _check_version(data, "prepare answer")
        if data.get("kind") != cls.KIND:
            raise WireFormatError(f'prepare answer must have kind "{cls.KIND}"')
        return cls(
            prepared=_get_int(data, "prepared", "prepare answer"),
            generation=_get_int(data, "generation", "prepare answer"),
        )


# -- jobs ------------------------------------------------------------------------------

#: job priorities on the wire (scheduling order: high before normal before low)
JOB_PRIORITIES = ("high", "normal", "low")

#: job lifecycle states (terminal: succeeded / failed / cancelled)
JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")


@dataclass(frozen=True)
class JobSubmitRequest:
    """Body of ``POST /v1/jobs``: one query or a batch, as a durable job.

    Exactly one of ``query``/``queries`` must be present.  ``priority``
    orders the job against the client's other work; ``run_at_generation``
    defers execution until the store has committed at least that generation
    (a writer can submit analysis jobs that must see its own commit).
    """

    query: str | None = None
    queries: tuple[str, ...] | None = None
    priority: str = "normal"
    run_at_generation: int | None = None
    exhaustive: bool = False

    _FIELDS = {
        "api_version",
        "query",
        "queries",
        "priority",
        "run_at_generation",
        "exhaustive",
    }

    @property
    def kind(self) -> str:
        return "query" if self.query is not None else "batch"

    @property
    def all_queries(self) -> tuple[str, ...]:
        if self.query is not None:
            return (self.query,)
        return self.queries or ()

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {"api_version": API_VERSION, "priority": self.priority}
        if self.query is not None:
            out["query"] = self.query
        else:
            out["queries"] = list(self.queries or ())
        if self.run_at_generation is not None:
            out["run_at_generation"] = self.run_at_generation
        if self.exhaustive:
            out["exhaustive"] = self.exhaustive
        return out

    @classmethod
    def from_json(cls, data: Any) -> "JobSubmitRequest":
        data = _require_object(data, "job submit request")
        _reject_unknown(data, cls._FIELDS, "job submit request")
        _check_version(data, "job submit request")
        query = data.get("query")
        queries = data.get("queries")
        if (query is None) == (queries is None):
            raise WireFormatError(
                'job submit request must contain exactly one of "query"/"queries"'
            )
        if query is not None and not isinstance(query, str):
            raise WireFormatError('job submit request field "query" must be a string')
        if queries is not None and (
            not isinstance(queries, list)
            or not queries
            or not all(isinstance(q, str) for q in queries)
        ):
            raise WireFormatError(
                'job submit request field "queries" must be a non-empty list of strings'
            )
        priority = data.get("priority", "normal")
        if priority not in JOB_PRIORITIES:
            raise WireFormatError(
                f'job submit request field "priority" must be one of {JOB_PRIORITIES}'
            )
        run_at = data.get("run_at_generation")
        if run_at is not None and (
            isinstance(run_at, bool) or not isinstance(run_at, int) or run_at < 0
        ):
            raise WireFormatError(
                'job submit request field "run_at_generation" must be a '
                "non-negative integer"
            )
        return cls(
            query=query,
            queries=tuple(queries) if queries is not None else None,
            priority=priority,
            run_at_generation=run_at,
            exhaustive=_get_bool(data, "exhaustive", "job submit request"),
        )


@dataclass(frozen=True)
class JobStatus:
    """Typed status answer of the job endpoints (kind ``"job"``).

    ``result_available`` says whether ``GET /v1/jobs/{id}/result`` would
    answer right now — a succeeded job's result can age out of the retention
    store while its terminal status survives.
    """

    KIND = "job"

    job_id: str
    client_id: str
    state: str
    kind: str
    priority: str
    completed: int
    total: int
    attempts: int
    max_attempts: int
    created_unix: float
    finished_unix: float | None = None
    generation: int | None = None
    run_at_generation: int | None = None
    error: str | None = None
    error_code: str | None = None
    result_available: bool = False

    _FIELDS = {
        "api_version",
        "kind",
        "job_id",
        "client_id",
        "state",
        "job_kind",
        "priority",
        "progress",
        "attempts",
        "max_attempts",
        "created_unix",
        "finished_unix",
        "generation",
        "run_at_generation",
        "error",
        "error_code",
        "result_available",
    }

    @property
    def terminal(self) -> bool:
        return self.state in ("succeeded", "failed", "cancelled")

    @classmethod
    def from_job(cls, job: Any, *, result_available: bool) -> "JobStatus":
        """Wrap a :class:`repro.jobs.queue.Job` (duck-typed: attributes only)."""
        return cls(
            job_id=job.job_id,
            client_id=job.client_id,
            state=job.state,
            kind=job.kind,
            priority=job.priority_name,
            completed=job.completed,
            total=job.total,
            attempts=job.attempts,
            max_attempts=job.max_attempts,
            created_unix=job.created_unix,
            finished_unix=job.finished_unix,
            generation=job.generation,
            run_at_generation=job.run_at_generation,
            error=job.error,
            error_code=job.error_code,
            result_available=result_available,
        )

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "job_id": self.job_id,
            "client_id": self.client_id,
            "state": self.state,
            "job_kind": self.kind,
            "priority": self.priority,
            "progress": {"completed": self.completed, "total": self.total},
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "created_unix": self.created_unix,
            "result_available": self.result_available,
        }
        if self.finished_unix is not None:
            out["finished_unix"] = self.finished_unix
        if self.generation is not None:
            out["generation"] = self.generation
        if self.run_at_generation is not None:
            out["run_at_generation"] = self.run_at_generation
        if self.error is not None:
            out["error"] = self.error
        if self.error_code is not None:
            out["error_code"] = self.error_code
        return out

    @classmethod
    def from_json(cls, data: Any) -> "JobStatus":
        data = _require_object(data, "job status")
        _reject_unknown(data, cls._FIELDS, "job status")
        _check_version(data, "job status")
        if data.get("kind") != cls.KIND:
            raise WireFormatError(f'job status must have kind "{cls.KIND}"')
        state = _get_str(data, "state", "job status")
        if state not in JOB_STATES:
            raise WireFormatError(f"job status has unknown state {state!r}")
        progress = data.get("progress")
        if not isinstance(progress, Mapping):
            raise WireFormatError('job status field "progress" must be an object')
        finished = data.get("finished_unix")
        if finished is not None and not isinstance(finished, (int, float)):
            raise WireFormatError('job status field "finished_unix" must be a number')
        return cls(
            job_id=_get_str(data, "job_id", "job status"),
            client_id=_get_str(data, "client_id", "job status"),
            state=state,
            kind=_get_str(data, "job_kind", "job status"),
            priority=_get_str(data, "priority", "job status"),
            completed=_get_int(progress, "completed", "job status progress"),
            total=_get_int(progress, "total", "job status progress"),
            attempts=_get_int(data, "attempts", "job status"),
            max_attempts=_get_int(data, "max_attempts", "job status"),
            created_unix=_get_float(data, "created_unix", "job status"),
            finished_unix=float(finished) if finished is not None else None,
            generation=data.get("generation"),
            run_at_generation=data.get("run_at_generation"),
            error=data.get("error"),
            error_code=data.get("error_code"),
            result_available=_get_bool(data, "result_available", "job status"),
        )


@dataclass(frozen=True)
class JobListAnswer:
    """Answer of ``GET /v1/jobs``: the calling client's jobs, oldest first."""

    KIND = "job-list"

    jobs: tuple[JobStatus, ...]

    _FIELDS = {"api_version", "kind", "jobs", "total"}

    def to_json(self) -> dict[str, Any]:
        return {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "jobs": [status.to_json() for status in self.jobs],
            "total": len(self.jobs),
        }

    @classmethod
    def from_json(cls, data: Any) -> "JobListAnswer":
        data = _require_object(data, "job list")
        _reject_unknown(data, cls._FIELDS, "job list")
        _check_version(data, "job list")
        if data.get("kind") != cls.KIND:
            raise WireFormatError(f'job list must have kind "{cls.KIND}"')
        raw_jobs = data.get("jobs")
        if not isinstance(raw_jobs, list):
            raise WireFormatError('job list must contain a "jobs" list')
        return cls(jobs=tuple(JobStatus.from_json(item) for item in raw_jobs))
