"""The versioned public API of the HypeR reproduction.

Three pieces, one contract (see ``docs/api.md``):

* :mod:`repro.api.schemas` — the **v1 wire schemas**: typed, strict
  request/response dataclasses every HTTP byte goes through.
* :mod:`repro.api.builder` — the **fluent query builder**: constructs
  :mod:`repro.lang` ASTs directly; builder-made and text-parsed queries
  fingerprint identically and share every service cache.
* :mod:`repro.api.client` — :class:`HypeRClient`, the stdlib **Python SDK**
  with keep-alive, bounded retries honoring ``Retry-After``, request
  deadlines, and streaming batch iteration.
* :mod:`repro.api.aclient` — :class:`AsyncHypeRClient`, the asyncio twin
  with the same retry/deadline semantics over a pooled-connection client
  that is safe to share across tasks on one event loop.

:mod:`repro.api.endpoints` is the shared ``/v1/*`` endpoint table both HTTP
front doors mount; import it to build new front ends that cannot drift from
the contract.
"""

from .builder import (
    AggTerm,
    as_query_object,
    HowToBuilder,
    QueryBuilder,
    WhatIfBuilder,
    add,
    avg,
    count,
    how_to,
    multiply,
    set_,
    sum_,
    what_if,
)
from .aclient import AsyncHypeRClient
from .client import (
    ApiStatusError,
    DeadlineExceeded,
    HypeRClient,
    HypeRClientError,
    OverloadedError,
    ServerDeadlineExceeded,
    TransportError,
)
from .schemas import (
    API_VERSION,
    BatchItem,
    BatchRequest,
    ErrorEnvelope,
    HowToAnswer,
    JobListAnswer,
    JobStatus,
    JobSubmitRequest,
    PrepareAnswer,
    PrepareRequest,
    QueryRequest,
    StatsSnapshot,
    UpdateAnswer,
    UpdateRequest,
    WhatIfAnswer,
    WireFormatError,
    answer_from_json,
    answer_from_result,
)

__all__ = [
    "API_VERSION",
    "AggTerm",
    "as_query_object",
    "ApiStatusError",
    "AsyncHypeRClient",
    "BatchItem",
    "BatchRequest",
    "DeadlineExceeded",
    "ErrorEnvelope",
    "HowToAnswer",
    "HowToBuilder",
    "HypeRClient",
    "HypeRClientError",
    "JobListAnswer",
    "JobStatus",
    "JobSubmitRequest",
    "OverloadedError",
    "PrepareAnswer",
    "PrepareRequest",
    "QueryBuilder",
    "QueryRequest",
    "ServerDeadlineExceeded",
    "StatsSnapshot",
    "TransportError",
    "UpdateAnswer",
    "UpdateRequest",
    "WhatIfAnswer",
    "WhatIfBuilder",
    "WireFormatError",
    "add",
    "answer_from_json",
    "answer_from_result",
    "avg",
    "count",
    "how_to",
    "multiply",
    "set_",
    "sum_",
    "what_if",
]
