"""``AsyncHypeRClient`` — the asyncio twin of :class:`~repro.api.client.HypeRClient`.

Same endpoints, same typed answers, and the *same* failure semantics as the
sync SDK — bounded retries with exponential backoff for dropped sockets,
429s honored per the server's ``retry_after`` hint, a wall-clock ``deadline``
capping the whole call (request + retries + sleeps), request/response gzip —
but implemented on ``asyncio`` streams so many calls can be in flight on one
event loop.  The error classes are shared with the sync client
(:class:`TransportError`, :class:`DeadlineExceeded`,
:class:`ServerDeadlineExceeded`, :class:`OverloadedError`,
:class:`ApiStatusError`), so ``except`` clauses port unchanged.

Unlike the sync client (one keep-alive connection, not thread-safe), the
async client keeps a small **pool** of keep-alive connections: concurrent
coroutines each borrow an idle connection or open a fresh one, so a single
client per server is safe to share across tasks on one loop — exactly what
the cluster coordinator needs for concurrent scatters.  This is also the
satellite "async client" of the serving roadmap::

    client = AsyncHypeRClient("127.0.0.1", 8000)
    try:
        answer = await client.query("USE Credit UPDATE(Status) = 4 "
                                    "OUTPUT AVG(POST(Credit))")
        async for item in client.batch(texts):
            ...
    finally:
        await client.close()
"""

from __future__ import annotations

import asyncio
import gzip as gzip_module
import json
from typing import Any, AsyncIterator, Iterable, Sequence

from ..obs.trace import new_request_id
from .client import (
    DeadlineExceeded,
    HypeRClient,
    TransportError,
    _Deadline,
    _decode_body,
    _error_from_response,
)
from .endpoints import GZIP_MIN_BYTES
from .schemas import (
    Answer,
    BatchItem,
    BatchRequest,
    JobListAnswer,
    JobStatus,
    JobSubmitRequest,
    PrepareAnswer,
    PrepareRequest,
    QueryRequest,
    StatsSnapshot,
    UpdateAnswer,
    UpdateRequest,
    answer_from_json,
)

__all__ = ["AsyncHypeRClient"]

#: failures worth a reconnect-and-retry — the async analogue of the sync
#: client's ``(ConnectionError, HTTPException, TimeoutError, OSError)``
_RETRYABLE = (
    ConnectionError,
    TimeoutError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    EOFError,
    OSError,
)

#: StreamReader line limit — headers and NDJSON lines must fit one line
_STREAM_LIMIT = 1 << 20


class _Conn:
    """One pooled keep-alive connection."""

    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer


class AsyncHypeRClient:
    """Asyncio client for a HypeR service's ``/v1`` HTTP API.

    Constructor parameters mirror :class:`~repro.api.client.HypeRClient`
    (``timeout`` is the per-I/O-operation cap, ``deadline`` arguments cap
    whole calls).  ``max_idle_connections`` bounds the keep-alive pool;
    excess connections are closed on release rather than pooled.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        timeout: float = 60.0,
        max_retries: int = 3,
        backoff_seconds: float = 0.05,
        trace: bool = False,
        gzip_min_bytes: int | None = GZIP_MIN_BYTES,
        max_idle_connections: int = 8,
        client_id: str = "",
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.trace = trace
        self.gzip_min_bytes = gzip_min_bytes
        #: sent as ``X-Client-Id`` on every request (per-client stats, job
        #: ownership, quotas); empty means the server assigns an anonymous id
        self.client_id = client_id
        self.max_idle_connections = max_idle_connections
        #: the X-Request-Id of the most recently started call
        self.last_request_id: str = ""
        self._idle: list[_Conn] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------------

    async def close(self) -> None:
        """Close every pooled connection; in-flight borrows close on release."""
        self._closed = True
        while self._idle:
            self._discard(self._idle.pop())

    async def __aenter__(self) -> "AsyncHypeRClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- connection pool ---------------------------------------------------------------

    async def _acquire(self, deadline: _Deadline) -> _Conn:
        while self._idle:
            conn = self._idle.pop()
            if conn.writer.is_closing():
                self._discard(conn)
                continue
            return conn
        reader, writer = await self._bounded(
            asyncio.open_connection(self.host, self.port, limit=_STREAM_LIMIT),
            deadline,
        )
        return _Conn(reader, writer)

    def _release(self, conn: _Conn) -> None:
        if (
            self._closed
            or conn.writer.is_closing()
            or len(self._idle) >= self.max_idle_connections
        ):
            self._discard(conn)
        else:
            self._idle.append(conn)

    def _discard(self, conn: _Conn) -> None:
        try:
            conn.writer.close()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass

    def _finish(self, conn: _Conn, will_close: bool) -> None:
        """Return a connection to the pool, or close it per the response."""
        if will_close:
            self._discard(conn)
        else:
            self._release(conn)

    # -- deadline plumbing -------------------------------------------------------------

    def _begin_call(self, deadline: float | None) -> _Deadline:
        self.last_request_id = new_request_id()
        return _Deadline(deadline, self.last_request_id)

    async def _bounded(self, awaitable: Any, deadline: _Deadline) -> Any:
        """Run one I/O operation under the per-operation/deadline cap."""
        timeout = max(deadline.cap(self.timeout), 1e-3)
        try:
            return await asyncio.wait_for(awaitable, timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(f"no response within {timeout:.3f}s") from None

    async def _sleep(self, seconds: float, deadline: _Deadline) -> None:
        remaining = deadline.remaining()
        if remaining is not None and seconds >= remaining:
            raise DeadlineExceeded(
                f"request deadline expires in {remaining:.3f}s, "
                f"cannot wait {seconds:.3f}s to retry",
                request_id=deadline.request_id,
            )
        await asyncio.sleep(seconds)

    # -- HTTP/1.1 framing --------------------------------------------------------------

    def _render_request(
        self, method: str, path: str, body: bytes | None, headers: dict[str, str]
    ) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(body) if body else 0}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b"")

    async def _read_head(
        self, conn: _Conn, deadline: _Deadline
    ) -> tuple[int, dict[str, str], bool]:
        """Parse the status line and headers; returns (status, headers, will_close)."""
        line = await self._bounded(conn.reader.readline(), deadline)
        if not line:
            raise ConnectionError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"malformed status line {line!r}")
        version = parts[0]
        try:
            status = int(parts[1])
        except ValueError:
            raise ConnectionError(f"malformed status line {line!r}") from None
        headers: dict[str, str] = {}
        while True:
            line = await self._bounded(conn.reader.readline(), deadline)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("truncated response headers")
            name, sep, value = line.decode("latin-1").rstrip("\r\n").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            will_close = "keep-alive" not in connection
        else:
            will_close = "close" in connection
        return status, headers, will_close

    async def _iter_chunks(
        self, conn: _Conn, deadline: _Deadline
    ) -> AsyncIterator[bytes]:
        """Decode ``Transfer-Encoding: chunked`` payload chunks (incl. terminator)."""
        while True:
            size_line = await self._bounded(conn.reader.readline(), deadline)
            if not size_line:
                raise ConnectionError("chunked stream truncated")
            try:
                size = int(size_line.strip().split(b";", 1)[0], 16)
            except ValueError:
                raise ConnectionError(f"malformed chunk size {size_line!r}") from None
            if size == 0:
                # trailer section: read through the blank terminator line
                while True:
                    trailer = await self._bounded(conn.reader.readline(), deadline)
                    if trailer in (b"\r\n", b"\n", b""):
                        return
            chunk = await self._bounded(conn.reader.readexactly(size), deadline)
            await self._bounded(conn.reader.readexactly(2), deadline)  # CRLF
            yield chunk

    @staticmethod
    def _decompress(raw: bytes, headers: dict[str, str]) -> bytes:
        if raw and headers.get("content-encoding", "").strip().lower() == "gzip":
            try:
                return gzip_module.decompress(raw)
            except (OSError, EOFError) as error:
                raise TransportError(
                    f"server sent a malformed gzip body: {error}"
                ) from None
        return raw

    async def _read_full_body(
        self, conn: _Conn, headers: dict[str, str], deadline: _Deadline
    ) -> bytes:
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = [chunk async for chunk in self._iter_chunks(conn, deadline)]
            return self._decompress(b"".join(chunks), headers)
        raw_length = headers.get("content-length")
        if raw_length is None:
            raw = await self._bounded(conn.reader.read(-1), deadline)
        else:
            try:
                length = int(raw_length)
            except ValueError:
                raise ConnectionError(
                    f"invalid Content-Length {raw_length!r}"
                ) from None
            raw = (
                await self._bounded(conn.reader.readexactly(length), deadline)
                if length
                else b""
            )
        return self._decompress(raw, headers)

    # -- request core ------------------------------------------------------------------

    def _encode_payload(
        self, payload: dict[str, Any] | None
    ) -> tuple[bytes | None, dict[str, str]]:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Accept-Encoding": "gzip"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if body is not None:
            headers["Content-Type"] = "application/json"
            if self.gzip_min_bytes is not None and len(body) >= self.gzip_min_bytes:
                # mtime=0 keeps compression deterministic, like the sync client
                body = gzip_module.compress(body, compresslevel=6, mtime=0)
                headers["Content-Encoding"] = "gzip"
        return body, headers

    async def _request_head(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
        deadline: _Deadline,
    ) -> tuple[_Conn, int, dict[str, str], bool]:
        """Send one request (with retries) and parse the head, body unread.

        Retries dropped sockets with backoff, and 429s per the server's
        ``retry_after``; the caller owns the returned connection and must
        hand it back through :meth:`_finish` once the body is consumed.
        """
        body, headers = self._encode_payload(payload)
        if deadline.request_id:
            # retries reuse the id: they are the same logical request
            headers["X-Request-Id"] = deadline.request_id
        attempt = 0
        while True:
            deadline.check()
            conn: _Conn | None = None
            try:
                conn = await self._acquire(deadline)
                conn.writer.write(self._render_request(method, path, body, headers))
                await self._bounded(conn.writer.drain(), deadline)
                status, resp_headers, will_close = await self._read_head(conn, deadline)
            except DeadlineExceeded:
                if conn is not None:
                    self._discard(conn)
                raise
            except _RETRYABLE as error:
                if conn is not None:
                    self._discard(conn)
                if attempt >= self.max_retries:
                    raise TransportError(
                        f"{method} {path} failed after {attempt + 1} attempt(s): "
                        f"{type(error).__name__}: {error}",
                        request_id=deadline.request_id,
                    ) from error
                await self._sleep(self.backoff_seconds * (2**attempt), deadline)
                attempt += 1
                continue
            if status == 429 and attempt < self.max_retries:
                raw = await self._read_full_body(conn, resp_headers, deadline)
                self._finish(conn, will_close)
                rejection = _decode_body(raw)
                hint = rejection.get("retry_after")
                if hint is None:
                    header = resp_headers.get("retry-after")
                    hint = float(header) if header else 1.0
                await self._sleep(max(float(hint), 0.0), deadline)
                attempt += 1
                continue
            return conn, status, resp_headers, will_close

    async def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
        deadline: _Deadline,
    ) -> tuple[int, dict[str, str], bytes]:
        conn, status, headers, will_close = await self._request_head(
            method, path, payload, deadline
        )
        try:
            raw = await self._read_full_body(conn, headers, deadline)
        except DeadlineExceeded:
            self._discard(conn)
            raise
        except _RETRYABLE as error:
            self._discard(conn)
            raise TransportError(
                f"{method} {path} response truncated: {error}",
                request_id=deadline.request_id,
            ) from error
        self._finish(conn, will_close)
        return status, headers, raw

    async def _json_call(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
        deadline: _Deadline,
        *,
        accept: tuple[int, ...] = (200,),
    ) -> dict[str, Any]:
        status, _headers, raw = await self._request(method, path, payload, deadline)
        body = _decode_body(raw)
        if status not in accept:
            raise _error_from_response(status, body, request_id=deadline.request_id)
        return body

    # -- generic JSON endpoints (the cluster's internal protocol uses these) -----------

    async def get_json(
        self, path: str, *, deadline: float | None = None
    ) -> dict[str, Any]:
        """``GET path`` returning the decoded JSON object (non-200 raises)."""
        return await self._json_call("GET", path, None, self._begin_call(deadline))

    async def post_json(
        self, path: str, payload: dict[str, Any], *, deadline: float | None = None
    ) -> dict[str, Any]:
        """``POST path`` returning the decoded JSON object (non-200 raises)."""
        return await self._json_call("POST", path, payload, self._begin_call(deadline))

    # -- typed endpoints ---------------------------------------------------------------

    async def health(self, *, deadline: float | None = None) -> dict[str, Any]:
        """``GET /v1/health``."""
        return await self.get_json("/v1/health", deadline=deadline)

    async def stats(self, *, deadline: float | None = None) -> StatsSnapshot:
        """``GET /v1/stats`` as a typed :class:`StatsSnapshot`."""
        body = await self.get_json("/v1/stats", deadline=deadline)
        return StatsSnapshot.from_json(body)

    async def metrics(self, *, deadline: float | None = None) -> str:
        """``GET /v1/metrics``: the server's Prometheus text exposition."""
        budget = self._begin_call(deadline)
        status, _headers, raw = await self._request("GET", "/v1/metrics", None, budget)
        if status != 200:
            raise _error_from_response(
                status, _decode_body(raw), request_id=budget.request_id
            )
        return raw.decode("utf-8")

    async def slow_queries(self, *, deadline: float | None = None) -> dict[str, Any]:
        """``GET /v1/slow``: the server's slow-query log snapshot."""
        return await self.get_json("/v1/slow", deadline=deadline)

    async def query(
        self,
        query: Any,
        *,
        exhaustive: bool = False,
        deadline: float | None = None,
        deadline_ms: int | None = None,
        trace: bool | None = None,
    ) -> Answer:
        """Answer one query (text, query object, or builder) as a typed answer."""
        wants_trace = self.trace if trace is None else trace
        wants_trace = wants_trace or bool(getattr(query, "wants_trace", False))
        request = QueryRequest(
            query=HypeRClient._as_text(query),
            exhaustive=exhaustive,
            deadline_ms=HypeRClient._server_deadline_ms(deadline, deadline_ms),
        )
        path = "/v1/query?trace=1" if wants_trace else "/v1/query"
        body = await self._json_call(
            "POST", path, request.to_json(), self._begin_call(deadline)
        )
        return answer_from_json(body)

    async def update(
        self,
        assignments: dict[str, dict[str, Sequence[float]]],
        *,
        deadline: float | None = None,
        trace: bool | None = None,
    ) -> UpdateAnswer:
        """``POST /v1/update``: commit whole-column overwrites as one generation."""
        request = UpdateRequest(
            assignments={
                relation: {
                    attr: tuple(float(v) for v in values)
                    for attr, values in columns.items()
                }
                for relation, columns in assignments.items()
            }
        )
        wants_trace = self.trace if trace is None else trace
        path = "/v1/update?trace=1" if wants_trace else "/v1/update"
        body = await self._json_call(
            "POST", path, request.to_json(), self._begin_call(deadline)
        )
        return UpdateAnswer.from_json(body)

    async def batch(
        self,
        queries: Sequence[Any] | Iterable[Any],
        *,
        deadline: float | None = None,
        deadline_ms: int | None = None,
    ) -> AsyncIterator[BatchItem]:
        """Stream a batch's per-query outcomes as the server emits them.

        NDJSON (async front door) streams in completion order; a single JSON
        response (threaded front door) yields items in index order.
        """
        texts = [HypeRClient._as_text(q) for q in queries]
        request = BatchRequest(
            queries=tuple(texts),
            deadline_ms=HypeRClient._server_deadline_ms(deadline, deadline_ms),
        )
        budget = self._begin_call(deadline)
        conn, status, headers, will_close = await self._request_head(
            "POST", "/v1/batch", request.to_json(), budget
        )
        if status != 200:
            raw = await self._read_full_body(conn, headers, budget)
            self._finish(conn, will_close)
            raise _error_from_response(
                status, _decode_body(raw), request_id=budget.request_id
            )
        content_type = headers.get("content-type", "").lower()
        chunked = headers.get("transfer-encoding", "").lower() == "chunked"
        if "ndjson" not in content_type or not chunked:
            raw = await self._read_full_body(conn, headers, budget)
            self._finish(conn, will_close)
            for item in HypeRClient._iter_results(_decode_body(raw)):
                yield item
            return
        seen = 0
        buffer = b""
        try:
            async for chunk in self._iter_chunks(conn, budget):
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    data = json.loads(line)
                    if data.get("done"):
                        if seen != len(texts):
                            raise TransportError(
                                f"batch stream closed after {seen}/{len(texts)} results",
                                request_id=budget.request_id,
                            )
                        self._finish(conn, will_close)
                        return
                    seen += 1
                    yield BatchItem.from_json(data)
        except _RETRYABLE as error:
            self._discard(conn)
            raise TransportError(
                f"batch stream failed: {error}", request_id=budget.request_id
            ) from error
        self._discard(conn)
        raise TransportError(
            f"batch stream ended early: {seen}/{len(texts)} results",
            request_id=budget.request_id,
        )

    async def batch_collect(
        self,
        queries: Sequence[Any],
        *,
        deadline: float | None = None,
    ) -> list[BatchItem]:
        """All batch outcomes, ordered by query index."""
        items = [item async for item in self.batch(queries, deadline=deadline)]
        return sorted(items, key=lambda item: item.index)

    # -- prepare / jobs ----------------------------------------------------------------

    async def prepare(
        self,
        queries: Sequence[Any] | Iterable[Any],
        *,
        deadline: float | None = None,
    ) -> PrepareAnswer:
        """``POST /v1/prepare``: warm server-side plans/views for these queries."""
        request = PrepareRequest(
            queries=tuple(HypeRClient._as_text(q) for q in queries)
        )
        body = await self._json_call(
            "POST", "/v1/prepare", request.to_json(), self._begin_call(deadline)
        )
        return PrepareAnswer.from_json(body)

    async def submit_job(
        self,
        query: Any = None,
        *,
        queries: Sequence[Any] | None = None,
        priority: str = "normal",
        run_at_generation: int | None = None,
        exhaustive: bool = False,
        deadline: float | None = None,
    ) -> JobStatus:
        """``POST /v1/jobs``: enqueue one query (or a batch) as a durable job.

        Exactly one of ``query``/``queries`` must be given.  See the sync
        client for the idempotency caveat on transport retries.
        """
        request = JobSubmitRequest(
            query=HypeRClient._as_text(query) if query is not None else None,
            queries=(
                tuple(HypeRClient._as_text(q) for q in queries)
                if queries is not None
                else None
            ),
            priority=priority,
            run_at_generation=run_at_generation,
            exhaustive=exhaustive,
        )
        body = await self._json_call(
            "POST",
            "/v1/jobs",
            request.to_json(),
            self._begin_call(deadline),
            accept=(200, 202),
        )
        return JobStatus.from_json(body)

    async def job(self, job_id: str, *, deadline: float | None = None) -> JobStatus:
        """``GET /v1/jobs/{id}``: the job's current status."""
        body = await self.get_json(f"/v1/jobs/{job_id}", deadline=deadline)
        return JobStatus.from_json(body)

    async def jobs(self, *, deadline: float | None = None) -> JobListAnswer:
        """``GET /v1/jobs``: this client's jobs (per ``client_id``), oldest first."""
        body = await self.get_json("/v1/jobs", deadline=deadline)
        return JobListAnswer.from_json(body)

    async def job_result(
        self, job_id: str, *, deadline: float | None = None
    ) -> dict[str, Any]:
        """``GET /v1/jobs/{id}/result``: the finished job's result document."""
        return await self.get_json(f"/v1/jobs/{job_id}/result", deadline=deadline)

    async def cancel_job(
        self, job_id: str, *, deadline: float | None = None
    ) -> JobStatus:
        """``POST /v1/jobs/{id}/cancel``: request cancellation (idempotent)."""
        body = await self._json_call(
            "POST", f"/v1/jobs/{job_id}/cancel", {}, self._begin_call(deadline)
        )
        return JobStatus.from_json(body)

    async def job_events(
        self,
        job_id: str,
        *,
        timeout_s: float | None = None,
        deadline: float | None = None,
    ) -> AsyncIterator[dict[str, Any]]:
        """``GET /v1/jobs/{id}/events``: stream the job's NDJSON event lines.

        Yields each event dict live and ends after the server's
        ``{"done": true, ...}`` line (yielded last).  Works against both
        framings: chunked (async front door) and close-delimited (threaded
        front door).
        """
        path = f"/v1/jobs/{job_id}/events"
        if timeout_s is not None:
            path += f"?timeout_s={float(timeout_s):g}"
        budget = self._begin_call(deadline)
        conn, status, headers, will_close = await self._request_head(
            "GET", path, None, budget
        )
        if status != 200:
            raw = await self._read_full_body(conn, headers, budget)
            self._finish(conn, will_close)
            raise _error_from_response(
                status, _decode_body(raw), request_id=budget.request_id
            )
        chunked = headers.get("transfer-encoding", "").lower() == "chunked"
        try:
            if chunked:
                buffer = b""
                async for chunk in self._iter_chunks(conn, budget):
                    buffer += chunk
                    while b"\n" in buffer:
                        line, buffer = buffer.split(b"\n", 1)
                        if not line.strip():
                            continue
                        data = json.loads(line)
                        yield data
                        if data.get("done"):
                            # remaining chunks (the terminator) are unread —
                            # retire the connection instead of pooling it
                            self._discard(conn)
                            return
            else:
                while True:
                    line = await self._bounded(conn.reader.readline(), budget)
                    if not line:
                        break  # close-delimited stream ended
                    if not line.strip():
                        continue
                    data = json.loads(line)
                    yield data
                    if data.get("done"):
                        break
        except _RETRYABLE as error:
            self._discard(conn)
            raise TransportError(
                f"job event stream failed: {error}", request_id=budget.request_id
            ) from error
        self._discard(conn)

    async def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll_seconds: float = 0.25,
    ) -> JobStatus:
        """Block until the job reaches a terminal state; returns its status."""
        budget = _Deadline(timeout)
        while True:
            status = await self.job(job_id, deadline=budget.remaining())
            if status.terminal:
                return status
            budget.check()
            await self._sleep(min(poll_seconds, budget.cap(self.timeout)), budget)
