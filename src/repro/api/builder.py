"""Fluent, typed query builder for the public API.

The builder constructs :mod:`repro.lang` ASTs directly — no string
round-trip — and produces exactly the query objects the parser would, so a
builder-made query and its text-parsed equivalent have identical
:meth:`~repro.relational.expressions.Expr.canonical` keys, identical plan
fingerprints, and therefore share every service cache entry::

    from repro.api import what_if, set_, avg
    from repro.relational import pre

    query = (
        what_if()
        .use("Credit")
        .when(pre("Age") >= 30)
        .update(set_("CreditAmount", 1000))
        .output(avg("Risk"))
        .build()
    )

Builders are **immutable**: every fluent call returns a new builder, so a
partially-configured builder can be reused as a template.  ``build()``
validates and returns the query object; ``text()`` renders the canonical
query text through :func:`repro.lang.unparse`.  Anything that accepts query
text (``HypeRService.execute``, ``HypeRClient.query``) also accepts a builder
or a built query object directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, NamedTuple, Sequence

from ..core.queries import HowToQuery, LimitConstraint, WhatIfQuery
from ..core.updates import AddConstant, AttributeUpdate, MultiplyBy, SetTo
from ..exceptions import QuerySemanticsError
from ..relational.expressions import Expr
from ..relational.predicates import TRUE
from ..relational.view import AggregatedAttribute, UseSpec

__all__ = [
    "AggTerm",
    "as_query_object",
    "QueryBuilder",
    "WhatIfBuilder",
    "HowToBuilder",
    "what_if",
    "how_to",
    "set_",
    "add",
    "multiply",
    "avg",
    "sum_",
    "count",
]


class AggTerm(NamedTuple):
    """An ``AGG(Post(attribute))`` term (the Output / ToMaximize clause)."""

    aggregate: str
    attribute: str


def avg(attribute: str) -> AggTerm:
    """``AVG(Post(attribute))``."""
    return AggTerm("avg", attribute)


def sum_(attribute: str) -> AggTerm:
    """``SUM(Post(attribute))``."""
    return AggTerm("sum", attribute)


def count(attribute: str) -> AggTerm:
    """``COUNT(Post(attribute))``."""
    return AggTerm("count", attribute)


def set_(attribute: str, value: Any) -> AttributeUpdate:
    """``UPDATE(attribute) = value``."""
    return AttributeUpdate(attribute, SetTo(value))


def add(attribute: str, delta: float) -> AttributeUpdate:
    """``UPDATE(attribute) = delta + PRE(attribute)``."""
    return AttributeUpdate(attribute, AddConstant(delta))


def multiply(attribute: str, factor: float) -> AttributeUpdate:
    """``UPDATE(attribute) = factor * PRE(attribute)``."""
    return AttributeUpdate(attribute, MultiplyBy(factor))


def _as_agg_term(term: AggTerm | str) -> AggTerm:
    """Accept ``avg("Risk")`` or a bare attribute name (defaulting to AVG)."""
    if isinstance(term, AggTerm):
        return term
    if isinstance(term, str):
        return AggTerm("avg", term)
    raise QuerySemanticsError(
        f"expected an aggregate term (avg/sum_/count) or attribute name, got {term!r}"
    )


class QueryBuilder:
    """Base class of the fluent builders; the service layer accepts any of them."""

    def build(self) -> WhatIfQuery | HowToQuery:
        raise NotImplementedError

    def text(self) -> str:
        """Canonical query text (via :func:`repro.lang.unparse`)."""
        from ..lang.unparse import unparse

        return unparse(self.build())

    @property
    def wants_trace(self) -> bool:
        """Whether ``.trace()`` asked the server for this query's span tree."""
        return getattr(self, "_trace", False)


@dataclass(frozen=True)
class _UseState:
    relation: str | None = None
    attributes: tuple[str, ...] | None = None
    aggregated: tuple[AggregatedAttribute, ...] = ()

    def spec(self, owner: str) -> UseSpec:
        if self.relation is None:
            raise QuerySemanticsError(f"a {owner} query needs .use(<relation>) first")
        return UseSpec(
            base_relation=self.relation,
            attributes=list(self.attributes) if self.attributes is not None else None,
            aggregated=list(self.aggregated),
        )


@dataclass(frozen=True)
class WhatIfBuilder(QueryBuilder):
    """Builds a :class:`~repro.core.queries.WhatIfQuery` fluently."""

    _use: _UseState = field(default_factory=_UseState)
    _updates: tuple[AttributeUpdate, ...] = ()
    _when: Expr = TRUE
    _for: Expr = TRUE
    _output: AggTerm | None = None
    _name: str = "what-if"
    _trace: bool = False

    def trace(self) -> "WhatIfBuilder":
        """Ask the server for the query's span tree (``?trace=1``)."""
        return replace(self, _trace=True)

    # -- clauses -----------------------------------------------------------------------

    def use(self, relation: str, *attributes: str) -> "WhatIfBuilder":
        """The ``USE`` clause: base relation plus an optional projection list."""
        return replace(
            self,
            _use=replace(
                self._use,
                relation=relation,
                attributes=tuple(attributes) if attributes else None,
            ),
        )

    def with_aggregate(
        self, name: str, relation: str, attribute: str, how: str = "avg"
    ) -> "WhatIfBuilder":
        """``WITH how(relation.attribute) AS name`` — a joined, aggregated column."""
        aggregated = (*self._use.aggregated, AggregatedAttribute(name, relation, attribute, how))
        return replace(self, _use=replace(self._use, aggregated=aggregated))

    def update(self, *updates: AttributeUpdate) -> "WhatIfBuilder":
        """Append ``UPDATE`` clauses (see :func:`set_`, :func:`add`, :func:`multiply`)."""
        for update in updates:
            if not isinstance(update, AttributeUpdate):
                raise QuerySemanticsError(
                    f".update() takes set_/add/multiply terms, got {update!r}"
                )
        return replace(self, _updates=(*self._updates, *updates))

    def when(self, predicate: Expr) -> "WhatIfBuilder":
        """The ``WHEN`` scope predicate (pre values only)."""
        return replace(self, _when=predicate)

    def for_(self, predicate: Expr) -> "WhatIfBuilder":
        """The ``FOR`` output filter (may mix ``pre(...)`` and ``post(...)``)."""
        return replace(self, _for=predicate)

    def output(self, term: AggTerm | str) -> "WhatIfBuilder":
        """The ``OUTPUT`` clause (see :func:`avg`, :func:`sum_`, :func:`count`)."""
        return replace(self, _output=_as_agg_term(term))

    def named(self, name: str) -> "WhatIfBuilder":
        return replace(self, _name=name)

    # -- terminal ----------------------------------------------------------------------

    def build(self) -> WhatIfQuery:
        if self._output is None:
            raise QuerySemanticsError(
                "a what-if query needs .output(avg(...)/sum_(...)/count(...))"
            )
        return WhatIfQuery(
            use=self._use.spec("what-if"),
            updates=list(self._updates),
            output_attribute=self._output.attribute,
            output_aggregate=self._output.aggregate,
            when=self._when,
            for_clause=self._for,
            name=self._name,
        )


@dataclass(frozen=True)
class HowToBuilder(QueryBuilder):
    """Builds a :class:`~repro.core.queries.HowToQuery` fluently."""

    _use: _UseState = field(default_factory=_UseState)
    _attributes: tuple[str, ...] = ()
    _limits: tuple[LimitConstraint, ...] = ()
    _objective: AggTerm | None = None
    _maximize: bool = True
    _when: Expr = TRUE
    _for: Expr = TRUE
    _max_updates: int | None = None
    _multipliers: tuple[float, ...] | None = None
    _buckets: int | None = None
    _name: str = "how-to"
    _trace: bool = False

    def trace(self) -> "HowToBuilder":
        """Ask the server for the query's span tree (``?trace=1``)."""
        return replace(self, _trace=True)

    # -- clauses -----------------------------------------------------------------------

    def use(self, relation: str, *attributes: str) -> "HowToBuilder":
        """The ``USE`` clause: base relation plus an optional projection list."""
        return replace(
            self,
            _use=replace(
                self._use,
                relation=relation,
                attributes=tuple(attributes) if attributes else None,
            ),
        )

    def with_aggregate(
        self, name: str, relation: str, attribute: str, how: str = "avg"
    ) -> "HowToBuilder":
        """``WITH how(relation.attribute) AS name`` — a joined, aggregated column."""
        aggregated = (*self._use.aggregated, AggregatedAttribute(name, relation, attribute, how))
        return replace(self, _use=replace(self._use, aggregated=aggregated))

    def update_any(self, *attributes: str) -> "HowToBuilder":
        """The ``HOWTOUPDATE`` clause: attributes the optimiser may change."""
        if not attributes:
            raise QuerySemanticsError(".update_any() needs at least one attribute")
        return replace(self, _attributes=(*self._attributes, *attributes))

    def limit(
        self,
        attribute: str | LimitConstraint,
        *,
        lower: float | None = None,
        upper: float | None = None,
        values: Sequence[Any] | None = None,
        max_l1: float | None = None,
    ) -> "HowToBuilder":
        """Append one ``LIMIT`` condition (range, permissible values, or L1 budget)."""
        if isinstance(attribute, LimitConstraint):
            constraint = attribute
        else:
            constraint = LimitConstraint(
                attribute=attribute,
                lower=lower,
                upper=upper,
                allowed_values=tuple(values) if values is not None else None,
                max_l1=max_l1,
            )
        return replace(self, _limits=(*self._limits, constraint))

    def maximize(self, term: AggTerm | str) -> "HowToBuilder":
        """``TOMAXIMIZE agg(Post(attribute))``."""
        return replace(self, _objective=_as_agg_term(term), _maximize=True)

    def minimize(self, term: AggTerm | str) -> "HowToBuilder":
        """``TOMINIMIZE agg(Post(attribute))``."""
        return replace(self, _objective=_as_agg_term(term), _maximize=False)

    def when(self, predicate: Expr) -> "HowToBuilder":
        """The ``WHEN`` scope predicate (pre values only)."""
        return replace(self, _when=predicate)

    def for_(self, predicate: Expr) -> "HowToBuilder":
        """The ``FOR`` output filter (may mix ``pre(...)`` and ``post(...)``)."""
        return replace(self, _for=predicate)

    def max_changes(self, n: int) -> "HowToBuilder":
        """Budget the number of attributes the optimiser may change."""
        return replace(self, _max_updates=n)

    def candidates(
        self,
        *,
        buckets: int | None = None,
        multipliers: Sequence[float] | None = None,
    ) -> "HowToBuilder":
        """Tune the candidate grid (histogram buckets / multiplier set)."""
        return replace(
            self,
            _buckets=buckets if buckets is not None else self._buckets,
            _multipliers=tuple(multipliers) if multipliers is not None else self._multipliers,
        )

    def named(self, name: str) -> "HowToBuilder":
        return replace(self, _name=name)

    # -- terminal ----------------------------------------------------------------------

    def build(self) -> HowToQuery:
        if self._objective is None:
            raise QuerySemanticsError(
                "a how-to query needs .maximize(...) or .minimize(...)"
            )
        if not self._attributes:
            raise QuerySemanticsError("a how-to query needs .update_any(<attributes>)")
        kwargs: dict[str, Any] = {}
        if self._multipliers is not None:
            kwargs["candidate_multipliers"] = self._multipliers
        if self._buckets is not None:
            kwargs["candidate_buckets"] = self._buckets
        return HowToQuery(
            use=self._use.spec("how-to"),
            update_attributes=list(self._attributes),
            objective_attribute=self._objective.attribute,
            objective_aggregate=self._objective.aggregate,
            maximize=self._maximize,
            when=self._when,
            for_clause=self._for,
            limits=list(self._limits),
            max_updates=self._max_updates,
            name=self._name,
            **kwargs,
        )


def as_query_object(query: Any) -> WhatIfQuery | HowToQuery:
    """Coerce a built query or fluent builder into a query object.

    The single definition of "what counts as a builder", shared by every
    entry point that accepts one (:meth:`HypeRService.execute`,
    :meth:`HypeR.execute`, :meth:`HypeRClient.query`), so the accepted-input
    contract cannot drift between them.  Query text is *not* handled here —
    each entry point treats strings differently (parse vs send).
    """
    if isinstance(query, (WhatIfQuery, HowToQuery)):
        return query
    if isinstance(query, QueryBuilder):
        return query.build()
    raise QuerySemanticsError(
        f"expected a query object or a fluent builder, got {type(query).__name__}"
    )


def what_if(name: str = "what-if") -> WhatIfBuilder:
    """Start a fluent what-if query: ``what_if().use(...).update(...).output(...)``."""
    return WhatIfBuilder(_name=name)


def how_to(name: str = "how-to") -> HowToBuilder:
    """Start a fluent how-to query: ``how_to().use(...).update_any(...).maximize(...)``."""
    return HowToBuilder(_name=name)
