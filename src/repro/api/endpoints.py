"""The shared, declarative ``/v1/*`` endpoint table and wire policy.

Both HTTP front doors — the threaded :mod:`repro.service.server` and the
asyncio :mod:`repro.aserve` — mount exactly this table, so routing, legacy
aliases, error envelopes and the 400/413/429 semantics are defined once and
cannot drift:

=======  ==============  ==================  ===========================================
method   v1 path         legacy alias        body
=======  ==============  ==================  ===========================================
GET      ``/v1/health``  ``/health``         ``{"status", "generation", "api_version"}``
GET      ``/v1/stats``   ``/stats``          :class:`~repro.api.schemas.StatsSnapshot`
GET      ``/v1/metrics`` ``/metrics``        Prometheus text exposition (not JSON)
GET      ``/v1/slow``    —                   slow-query log snapshot

POST     ``/v1/query``   ``/query``          :class:`~repro.api.schemas.QueryRequest` →
                                             :class:`~repro.api.schemas.WhatIfAnswer` /
                                             :class:`~repro.api.schemas.HowToAnswer`
POST     ``/v1/batch``   ``/batch``          :class:`~repro.api.schemas.BatchRequest` →
                                             NDJSON stream (async) / JSON list (threaded)
POST     ``/v1/update``  —                   :class:`~repro.api.schemas.UpdateRequest` →
                                             :class:`~repro.api.schemas.UpdateAnswer`
POST     ``/v1/prepare`` —                   :class:`~repro.api.schemas.PrepareRequest` →
                                             :class:`~repro.api.schemas.PrepareAnswer`
POST     ``/v1/jobs``    —                   :class:`~repro.api.schemas.JobSubmitRequest`
                                             → :class:`~repro.api.schemas.JobStatus` (202)
GET      ``/v1/jobs``    —                   :class:`~repro.api.schemas.JobListAnswer`
GET      ``/v1/jobs/{id}``        —          :class:`~repro.api.schemas.JobStatus`
GET      ``/v1/jobs/{id}/events`` —          NDJSON progress-event stream
GET      ``/v1/jobs/{id}/result`` —          retained result payload
POST     ``/v1/jobs/{id}/cancel`` —          :class:`~repro.api.schemas.JobStatus`
=======  ==============  ==================  ===========================================

Aliases answer byte-identically to their canonical path.  Every failure maps
through :func:`envelope_for` to one :class:`~repro.api.schemas.ErrorEnvelope`
(HTTP status + stable ``code``), and the request-body guards
(:func:`check_body_length` → 413, :func:`decode_json_object` → 400) live here
so the limit policy is a single definition.  This module knows nothing about
sockets: front ends feed it parsed JSON bodies and write out what it returns.
"""

from __future__ import annotations

import gzip as gzip_module
import json
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..exceptions import HypeRError, QuerySemanticsError, QuerySyntaxError
from ..obs import trace as obs_trace
from ..obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from .schemas import (
    API_VERSION,
    BatchRequest,
    ErrorEnvelope,
    PrepareAnswer,
    PrepareRequest,
    QueryRequest,
    StatsSnapshot,
    UpdateAnswer,
    UpdateRequest,
    WireFormatError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.session import HypeRService

__all__ = [
    "MAX_BODY_BYTES",
    "GZIP_MIN_BYTES",
    "PayloadError",
    "ApiError",
    "Endpoint",
    "V1_ENDPOINTS",
    "resolve",
    "match",
    "check_body_length",
    "decode_json_object",
    "decompress_body",
    "accepts_gzip",
    "maybe_gzip",
    "envelope_for",
    "code_for_status",
    "not_found",
    "deadline_error",
    "RequestDeadline",
    "health_payload",
    "stats_payload",
    "metrics_text",
    "slow_payload",
    "wants_trace",
    "METRICS_CONTENT_TYPE",
    "parse_query_request",
    "parse_batch_request",
    "parse_update_request",
    "parse_prepare_request",
    "prepare_payload",
    "apply_update_payload",
    "execute_query_payload",
    "batch_response_payload",
    "batch_line",
    "batch_done_line",
]

#: default request-body ceiling shared by the threaded and asyncio front-ends
MAX_BODY_BYTES = 4 * 1024 * 1024

#: default size threshold (bytes) below which responses are never gzipped —
#: compressing tiny payloads costs more than it saves on the wire
GZIP_MIN_BYTES = 2048


class PayloadError(ValueError):
    """A request body rejected before execution; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ApiError(HypeRError):
    """An error with a fully-determined HTTP answer (status + envelope)."""

    def __init__(self, status: int, envelope: ErrorEnvelope) -> None:
        super().__init__(envelope.message)
        self.status = status
        self.envelope = envelope

    def body(self) -> dict[str, Any]:
        return self.envelope.to_json()


# -- the endpoint table ----------------------------------------------------------------


@dataclass(frozen=True)
class Endpoint:
    """One row of the public API: canonical ``/v1`` path plus legacy aliases.

    A path may contain ``{param}`` segments (``/v1/jobs/{id}``); both front
    doors route through :func:`match`, which binds them to concrete path
    segments and returns the bindings alongside the endpoint.
    """

    name: str
    method: str
    path: str
    aliases: tuple[str, ...] = ()
    streaming: bool = False

    @property
    def paths(self) -> tuple[str, ...]:
        return (self.path, *self.aliases)

    @property
    def parameterized(self) -> bool:
        return "{" in self.path


V1_ENDPOINTS: tuple[Endpoint, ...] = (
    Endpoint("health", "GET", "/v1/health", aliases=("/health",)),
    Endpoint("stats", "GET", "/v1/stats", aliases=("/stats",)),
    Endpoint("metrics", "GET", "/v1/metrics", aliases=("/metrics",)),
    Endpoint("slow", "GET", "/v1/slow"),
    Endpoint("query", "POST", "/v1/query", aliases=("/query",)),
    Endpoint("batch", "POST", "/v1/batch", aliases=("/batch",), streaming=True),
    Endpoint("update", "POST", "/v1/update"),
    Endpoint("prepare", "POST", "/v1/prepare"),
    Endpoint("jobs_submit", "POST", "/v1/jobs"),
    Endpoint("jobs_list", "GET", "/v1/jobs"),
    Endpoint("job_status", "GET", "/v1/jobs/{id}"),
    Endpoint("job_events", "GET", "/v1/jobs/{id}/events", streaming=True),
    Endpoint("job_result", "GET", "/v1/jobs/{id}/result"),
    Endpoint("job_cancel", "POST", "/v1/jobs/{id}/cancel"),
)

_ROUTES: dict[tuple[str, str], Endpoint] = {
    (endpoint.method, path): endpoint
    for endpoint in V1_ENDPOINTS
    for path in endpoint.paths
    if "{" not in path
}

#: parameterized routes: (method, path segments) — "{x}" segments bind
_PATTERN_ROUTES: tuple[tuple[str, tuple[str, ...], Endpoint], ...] = tuple(
    (endpoint.method, tuple(path.split("/")), endpoint)
    for endpoint in V1_ENDPOINTS
    for path in endpoint.paths
    if "{" in path
)


def resolve(method: str, path: str) -> Endpoint | None:
    """Look up the endpoint serving ``method path`` (canonical or alias)."""
    endpoint_params = match(method, path)
    return endpoint_params[0] if endpoint_params is not None else None


def match(method: str, path: str) -> tuple[Endpoint, dict[str, str]] | None:
    """Route ``method path``, binding any ``{param}`` segments.

    Exact (and alias) paths win; otherwise parameterized rows match when
    every literal segment is equal and every ``{param}`` segment is
    non-empty.  Returns ``(endpoint, params)`` or ``None``.
    """
    endpoint = _ROUTES.get((method, path))
    if endpoint is not None:
        return endpoint, {}
    parts = tuple(path.split("/"))
    for pattern_method, segments, pattern_endpoint in _PATTERN_ROUTES:
        if pattern_method != method or len(segments) != len(parts):
            continue
        params: dict[str, str] = {}
        for segment, part in zip(segments, parts):
            if segment.startswith("{") and segment.endswith("}"):
                if not part:
                    params = {}
                    break
                params[segment[1:-1]] = part
            elif segment != part:
                params = {}
                break
        else:
            return pattern_endpoint, params
    return None


# -- body guards (shared 413/400 policy) -----------------------------------------------


def check_body_length(length: int | None, *, max_bytes: int = MAX_BODY_BYTES) -> int:
    """Validate a declared Content-Length: 400 when absent, 413 when too big."""
    if length is None or length <= 0:
        raise PayloadError(400, "request body missing (Content-Length required)")
    if length > max_bytes:
        raise PayloadError(
            413, f"request body of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    return length


def decode_json_object(raw: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object; malformed input is 400."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise PayloadError(400, f"malformed JSON body: {error}") from None
    if not isinstance(data, dict):
        raise PayloadError(400, "request body must be a JSON object")
    return data


def decompress_body(
    raw: bytes, content_encoding: str | None, *, max_bytes: int = MAX_BODY_BYTES
) -> bytes:
    """Undo a request body's ``Content-Encoding`` (shared by both front doors).

    Only ``gzip`` (and the no-op ``identity``) are supported; anything else is
    400.  The *decompressed* size is held to the same ceiling as a plain body,
    so a tiny gzip bomb cannot smuggle past the 413 guard.
    """
    encoding = (content_encoding or "").strip().lower()
    if encoding in ("", "identity"):
        return raw
    if encoding != "gzip":
        raise PayloadError(400, f"unsupported Content-Encoding {content_encoding!r}")
    try:
        body = gzip_module.decompress(raw)
    except (OSError, EOFError) as error:
        raise PayloadError(400, f"malformed gzip body: {error}") from None
    if len(body) > max_bytes:
        raise PayloadError(
            413,
            f"decompressed body of {len(body)} bytes exceeds the {max_bytes}-byte limit",
        )
    return body


def accepts_gzip(accept_encoding: str | None) -> bool:
    """True when an ``Accept-Encoding`` header value admits gzip responses."""
    if not accept_encoding:
        return False
    for part in accept_encoding.split(","):
        token, _, params = part.partition(";")
        if token.strip().lower() not in ("gzip", "*"):
            continue
        quality = 1.0
        for param in params.split(";"):
            key, _, value = param.replace(" ", "").partition("=")
            if key.lower() == "q":
                try:
                    quality = float(value)
                except ValueError:
                    pass
        return quality > 0.0
    return False


def maybe_gzip(
    body: bytes, *, enabled: bool, threshold: int = GZIP_MIN_BYTES
) -> tuple[bytes, bool]:
    """Compress ``body`` when the peer accepts gzip and it is worth the CPU.

    Returns ``(body, compressed)``; ``mtime=0`` keeps the output deterministic
    for byte-level tests.
    """
    if not enabled or len(body) < threshold:
        return body, False
    return gzip_module.compress(body, compresslevel=6, mtime=0), True


# -- the one exception → envelope mapping ----------------------------------------------

_STATUS_CODES = {
    400: "bad_request",
    404: "not_found",
    408: "bad_request",
    411: "bad_request",
    413: "payload_too_large",
    429: "rate_limited",
    500: "internal",
    501: "not_implemented",
    503: "unavailable",
    504: "deadline_exceeded",
    505: "bad_request",
}


def code_for_status(status: int) -> str:
    """The stable envelope code of a bare HTTP status (protocol-level errors)."""
    return _STATUS_CODES.get(status, "error")


def envelope_for(error: BaseException) -> tuple[int, ErrorEnvelope]:
    """Map any failure to its HTTP status and :class:`ErrorEnvelope`.

    This is the single classification both front doors use, so the same bad
    input gets the identical answer on either server.
    """
    if isinstance(error, ApiError):
        return error.status, error.envelope
    if isinstance(error, PayloadError):
        return error.status, ErrorEnvelope(code_for_status(error.status), str(error))
    if isinstance(error, QuerySyntaxError):
        detail: dict[str, Any] = {}
        if error.position is not None:
            detail["position"] = error.position
        if error.line is not None:
            detail["line"] = error.line
        return 400, ErrorEnvelope("query_syntax", str(error), detail or None)
    if isinstance(error, QuerySemanticsError):
        return 400, ErrorEnvelope("query_semantics", str(error))
    if isinstance(error, (HypeRError, ValueError)):
        return 400, ErrorEnvelope("bad_request", str(error))
    return 500, ErrorEnvelope("internal", f"{type(error).__name__}: {error}")


def not_found(path: str) -> ApiError:
    return ApiError(404, ErrorEnvelope("not_found", f"unknown path {path!r}"))


def deadline_error(deadline_ms: int) -> ApiError:
    """The 504 answered instead of computing once a request's budget ran out."""
    return ApiError(
        504,
        ErrorEnvelope(
            "deadline_exceeded",
            f"deadline of {deadline_ms} ms expired before execution",
            {"deadline_ms": deadline_ms},
        ),
    )


class RequestDeadline:
    """Server-side remaining-budget tracker of one request's ``deadline_ms``.

    Anchored to the monotonic clock when the request body is decoded, so time
    spent waiting in the admission queue counts against the budget.  A
    relaying front door (the cluster coordinator) forwards
    :meth:`remaining_ms` downstream — the budget decrements across hops.
    """

    def __init__(self, deadline_ms: int) -> None:
        self.deadline_ms = int(deadline_ms)
        self._expires = time.monotonic() + self.deadline_ms / 1000.0

    @classmethod
    def of(cls, request: Any) -> "RequestDeadline | None":
        """The deadline of a query/batch request, or None when unbudgeted."""
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is None:
            return None
        return cls(deadline_ms)

    def remaining_ms(self) -> float:
        return (self._expires - time.monotonic()) * 1000.0

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires

    def check(self) -> None:
        """Raise the ``deadline_exceeded`` :class:`ApiError` once expired."""
        if self.expired:
            raise deadline_error(self.deadline_ms)


# -- request decoding ------------------------------------------------------------------


def parse_query_request(body: dict[str, Any]) -> QueryRequest:
    """Decode and validate a ``/v1/query`` body (schema violations are 400)."""
    try:
        return QueryRequest.from_json(body)
    except WireFormatError as error:
        raise ApiError(400, ErrorEnvelope("bad_request", str(error))) from None


def parse_batch_request(body: dict[str, Any]) -> BatchRequest:
    """Decode and validate a ``/v1/batch`` body (schema violations are 400)."""
    try:
        return BatchRequest.from_json(body)
    except WireFormatError as error:
        raise ApiError(400, ErrorEnvelope("bad_request", str(error))) from None


def parse_update_request(body: dict[str, Any]) -> UpdateRequest:
    """Decode and validate a ``/v1/update`` body (schema violations are 400)."""
    try:
        return UpdateRequest.from_json(body)
    except WireFormatError as error:
        raise ApiError(400, ErrorEnvelope("bad_request", str(error))) from None


def parse_prepare_request(body: dict[str, Any]) -> PrepareRequest:
    """Decode and validate a ``/v1/prepare`` body (schema violations are 400)."""
    try:
        return PrepareRequest.from_json(body)
    except WireFormatError as error:
        raise ApiError(400, ErrorEnvelope("bad_request", str(error))) from None


# -- response payloads -----------------------------------------------------------------


def health_payload(service: "HypeRService") -> dict[str, Any]:
    return {
        "status": "ok",
        "generation": service.generation,
        "api_version": API_VERSION,
    }


def stats_payload(service: "HypeRService") -> dict[str, Any]:
    return StatsSnapshot.from_service_stats(service.stats()).to_json()


def metrics_text(service: "HypeRService") -> str:
    """Render ``/v1/metrics``: the service registry in Prometheus text form."""
    return service.metrics.render()


def slow_payload(service: "HypeRService") -> dict[str, Any]:
    """Render ``/v1/slow``: the bounded slow-query log, worst offender first."""
    return {"api_version": API_VERSION, **service.slow_log.snapshot()}


def wants_trace(query_string: str) -> bool:
    """True when a request's query string opts into tracing (``trace=1``)."""
    for part in query_string.split("&"):
        if part in ("trace=1", "trace=true"):
            return True
    return False


def execute_query_payload(
    service: "HypeRService",
    request: QueryRequest,
    *,
    trace: "obs_trace.TraceContext | None" = None,
    deadline: "RequestDeadline | None" = None,
) -> dict[str, Any]:
    """Run one query and return its v1 answer payload (exceptions bubble).

    With a live ``trace``, the answer payload embeds the finished span tree
    under ``"trace"``; serialization itself is measured as the last span.
    An expired ``deadline`` (defaulting to the request's own ``deadline_ms``)
    answers 504 ``deadline_exceeded`` instead of computing a doomed answer.
    """
    if deadline is None:
        deadline = RequestDeadline.of(request)
    if deadline is not None:
        deadline.check()
    kwargs: dict[str, Any] = {}
    if deadline is not None and getattr(service, "accepts_deadline", False):
        # a relaying service (the cluster coordinator) decrements the
        # remaining budget across its downstream hops
        kwargs["deadline"] = deadline
    if trace is None:
        return service.execute(
            request.query, exhaustive=request.exhaustive, **kwargs
        ).payload()
    result = service.execute(
        request.query, exhaustive=request.exhaustive, trace=trace, **kwargs
    )
    with obs_trace.activate(trace), obs_trace.span("serialize"):
        payload = result.payload()
    payload["trace"] = trace.to_wire()
    return payload


def apply_update_payload(
    service: "HypeRService",
    request: UpdateRequest,
    *,
    trace: "obs_trace.TraceContext | None" = None,
) -> dict[str, Any]:
    """Commit an ``UpdateRequest`` as one MVCC generation; return its answer.

    Unknown relations/attributes and length mismatches surface as engine
    exceptions and map to 400 through :func:`envelope_for`; in-flight queries
    on either front door keep their pinned snapshot and are not paused.
    """
    assignments = {
        relation: dict(columns) for relation, columns in request.assignments.items()
    }
    with obs_trace.activate(trace):
        with obs_trace.span("update"):
            changed = service.update_relation_columns(assignments)
    payload = UpdateAnswer(
        generation=service.generation, changed=tuple(changed)
    ).to_json()
    if trace is not None:
        payload["trace"] = trace.to_wire()
    return payload


def prepare_payload(service: "HypeRService", request: PrepareRequest) -> dict[str, Any]:
    """Warm plans and estimators for the request's queries; answer counts only.

    Bad queries surface as engine exceptions and map through
    :func:`envelope_for` like any other request — preparing is strict, so a
    typo is caught before a client queues an hour of jobs behind it.
    """
    prepared = service.prepare(list(request.queries))
    count = len(prepared) if isinstance(prepared, list) else len(request.queries)
    return PrepareAnswer(
        prepared=count, generation=int(service.generation)
    ).to_json()


def batch_line(index: int, outcome: Any) -> dict[str, Any]:
    """One NDJSON line of a streamed batch: an answer or a per-query envelope."""
    if isinstance(outcome, BaseException):
        _status, envelope = envelope_for(outcome)
        return {"index": index, **envelope.to_json()}
    return {"index": index, "result": outcome.payload()}


def batch_done_line(n_queries: int) -> dict[str, Any]:
    """The closing NDJSON line of a streamed batch."""
    return {"done": True, "n_queries": n_queries}


def batch_response_payload(
    service: "HypeRService",
    request: BatchRequest,
    *,
    deadline: "RequestDeadline | None" = None,
) -> dict[str, Any]:
    """Answer a whole batch as one JSON object (the non-streaming form).

    Failures are captured per query as inline error envelopes; a bad entry
    cannot discard the rest of the batch.  A batch whose ``deadline_ms``
    budget already ran out answers per-item ``deadline_exceeded`` envelopes
    without executing anything.
    """
    if deadline is None:
        deadline = RequestDeadline.of(request)
    if deadline is not None and deadline.expired:
        envelope = deadline_error(deadline.deadline_ms).envelope.to_json()
        return {
            "results": [dict(envelope) for _ in request.queries],
            "n_queries": len(request.queries),
        }
    results = service.execute_many(list(request.queries), return_errors=True)
    payloads = []
    for outcome in results:
        if isinstance(outcome, Exception):
            _status, envelope = envelope_for(outcome)
            payloads.append(envelope.to_json())
        else:
            payloads.append(outcome.payload())
    return {"results": payloads, "n_queries": len(payloads)}
