"""HypeR reproduction: hypothetical reasoning with what-if and how-to queries.

A from-scratch implementation of the system described in

    Galhotra, Gilad, Roy, Salimi.
    "HypeR: Hypothetical Reasoning With What-If and How-To Queries Using a
    Probabilistic Causal Approach", SIGMOD 2022.

The public API is re-exported here; the most common entry point is
:class:`repro.HypeR`::

    from repro import HypeR
    from repro.datasets import make_amazon_syn

    dataset = make_amazon_syn()
    session = HypeR(dataset.database, dataset.causal_dag)
    result = session.execute(
        "USE Product WITH AVG(Review.Rating) AS Rtng "
        "WHEN Brand = 'Asus' "
        "UPDATE(Price) = 1.1 * PRE(Price) "
        "OUTPUT AVG(POST(Rtng)) "
        "FOR PRE(Category) = 'Laptop'"
    )
    print(result.summary())
"""

from .core import (
    AddConstant,
    AttributeUpdate,
    EngineConfig,
    GroundTruthOracle,
    HowToEngine,
    HowToQuery,
    HowToResult,
    HypeR,
    HypotheticalUpdate,
    LimitConstraint,
    MultiplyBy,
    SetTo,
    Variant,
    WhatIfEngine,
    WhatIfQuery,
    WhatIfResult,
)
from .relational import (
    AggregatedAttribute,
    Database,
    ForeignKey,
    Relation,
    RelationSchema,
    UseSpec,
    col,
    lit,
    post,
    pre,
)
from .causal import CausalDAG, CausalEdge, StructuralCausalModel
from .api import (
    API_VERSION,
    ErrorEnvelope,
    HowToAnswer,
    HypeRClient,
    WhatIfAnswer,
    avg,
    count,
    how_to,
    multiply,
    set_,
    sum_,
    what_if,
)
from .api import add as add_  # `add` is too generic for the top-level namespace
from .lang import parse_query, unparse
from .service import HypeRService, PlanFingerprint
from .shard import ShardPool, partition_database
from .workloads import WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "AddConstant",
    "AggregatedAttribute",
    "AttributeUpdate",
    "CausalDAG",
    "CausalEdge",
    "Database",
    "EngineConfig",
    "ErrorEnvelope",
    "ForeignKey",
    "GroundTruthOracle",
    "HowToAnswer",
    "HowToEngine",
    "HowToQuery",
    "HowToResult",
    "HypeR",
    "HypeRClient",
    "HypeRService",
    "HypotheticalUpdate",
    "LimitConstraint",
    "PlanFingerprint",
    "MultiplyBy",
    "Relation",
    "RelationSchema",
    "SetTo",
    "ShardPool",
    "StructuralCausalModel",
    "UseSpec",
    "Variant",
    "WhatIfAnswer",
    "WhatIfEngine",
    "WhatIfQuery",
    "WhatIfResult",
    "WorkloadGenerator",
    "add_",
    "avg",
    "col",
    "count",
    "how_to",
    "lit",
    "multiply",
    "parse_query",
    "partition_database",
    "post",
    "pre",
    "set_",
    "sum_",
    "unparse",
    "what_if",
    "__version__",
]
