"""HypeR reproduction: hypothetical reasoning with what-if and how-to queries.

A from-scratch implementation of the system described in

    Galhotra, Gilad, Roy, Salimi.
    "HypeR: Hypothetical Reasoning With What-If and How-To Queries Using a
    Probabilistic Causal Approach", SIGMOD 2022.

The public API is re-exported here; the most common entry point is
:class:`repro.HypeR`::

    from repro import HypeR
    from repro.datasets import make_amazon_syn

    dataset = make_amazon_syn()
    session = HypeR(dataset.database, dataset.causal_dag)
    result = session.execute(
        "USE Product WITH AVG(Review.Rating) AS Rtng "
        "WHEN Brand = 'Asus' "
        "UPDATE(Price) = 1.1 * PRE(Price) "
        "OUTPUT AVG(POST(Rtng)) "
        "FOR PRE(Category) = 'Laptop'"
    )
    print(result.summary())
"""

from .core import (
    AddConstant,
    AttributeUpdate,
    EngineConfig,
    GroundTruthOracle,
    HowToEngine,
    HowToQuery,
    HowToResult,
    HypeR,
    HypotheticalUpdate,
    LimitConstraint,
    MultiplyBy,
    SetTo,
    Variant,
    WhatIfEngine,
    WhatIfQuery,
    WhatIfResult,
)
from .relational import (
    AggregatedAttribute,
    Database,
    ForeignKey,
    Relation,
    RelationSchema,
    UseSpec,
    col,
    lit,
    post,
    pre,
)
from .causal import CausalDAG, CausalEdge, StructuralCausalModel
from .service import HypeRService, PlanFingerprint
from .shard import ShardPool, partition_database
from .workloads import WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "AddConstant",
    "AggregatedAttribute",
    "AttributeUpdate",
    "CausalDAG",
    "CausalEdge",
    "Database",
    "EngineConfig",
    "ForeignKey",
    "GroundTruthOracle",
    "HowToEngine",
    "HowToQuery",
    "HowToResult",
    "HypeR",
    "HypeRService",
    "HypotheticalUpdate",
    "LimitConstraint",
    "PlanFingerprint",
    "MultiplyBy",
    "Relation",
    "RelationSchema",
    "SetTo",
    "ShardPool",
    "StructuralCausalModel",
    "UseSpec",
    "Variant",
    "WhatIfEngine",
    "WhatIfQuery",
    "WhatIfResult",
    "WorkloadGenerator",
    "col",
    "lit",
    "partition_database",
    "post",
    "pre",
    "__version__",
]
