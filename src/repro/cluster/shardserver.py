"""One shard node of the cluster: the existing front door plus ``/v1/partial``.

A :class:`ShardServer` wraps a full :class:`~repro.service.session.HypeRService`
(every node holds the complete database snapshot — regressors fit on
full-view training targets, see :mod:`repro.shard`) plus one
:class:`~repro.shard.pool.ShardWorkerRuntime` per retained generation,
materialised over this node's slice of the deterministic
:func:`~repro.shard.partition.partition_database` plan.  Because the plan is
a pure function of (database, DAG, ``n_shards``), every replica of a shard
builds the identical slice without coordination — and therefore produces
bit-identical partials, which is what makes coordinator failover exact.

:class:`ShardServerApp` extends the asyncio front door with two internal
endpoints:

* ``POST /v1/partial`` — evaluate one what-if/how-to partial (or a how-to
  verification round) on the node's shard slice at a named generation.
  Admission-controlled like ``/v1/query``; a generation this node does not
  retain answers ``409 stale_generation`` so the coordinator fails over.
* ``POST /v1/cluster/update`` — the two-phase commit fan-out.  ``stage``
  builds the next generation's runtime off to the side (queries keep
  answering from the current one); ``flip`` commits it through the node's
  own MVCC service so the node and the coordinator agree on generation
  numbers.  Control-plane: bypasses admission, runs on the auxiliary thread.

The previous generation's runtime is retained (like the in-process pool's
``pinned_fallbacks``), so a scatter racing a cluster-wide flip still gets
exact answers for its pinned generation from nodes that already flipped.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from ..api import endpoints as api
from ..api.endpoints import PayloadError, decode_json_object
from ..api.schemas import API_VERSION, ErrorEnvelope
from ..causal.dag import CausalDAG
from ..core.config import EngineConfig
from ..core.queries import HowToQuery, WhatIfQuery
from ..exceptions import QuerySemanticsError
from ..obs import trace as obs_trace
from ..probdb.blocks import block_labels
from ..relational.database import Database
from ..service.session import HypeRService
from ..shard.partition import partition_database
from ..shard.pool import ShardWorkerRuntime
from ..aserve.admission import AdmissionRejected
from ..aserve.app import AsyncApp, _rejection_body, _retry_after_headers
from . import wire

__all__ = ["PARTIAL_PATH", "CLUSTER_UPDATE_PATH", "ShardServer", "ShardServerApp"]

#: the internal scatter-gather endpoint (not part of the public v1 table)
PARTIAL_PATH = "/v1/partial"
#: the internal two-phase update fan-out endpoint
CLUSTER_UPDATE_PATH = "/v1/cluster/update"


def _stale_generation(requested: int, retained: list[int]) -> api.ApiError:
    return api.ApiError(
        409,
        ErrorEnvelope(
            "stale_generation",
            f"generation {requested} is not retained on this node",
            {"requested": requested, "retained": retained},
        ),
    )


class ShardServer:
    """A shard node's state: full-snapshot service + per-generation runtimes.

    Parameters
    ----------
    database / causal_dag / config:
        Exactly as for :class:`HypeRService` — the node's full snapshot.
    shard_index / n_shards:
        Which slice of the deterministic partition this node computes
        partials for (``node_index % n_shards`` under the round-robin
        placement).
    retained_generations:
        How many generations of runtimes stay answerable (>= 2 so scatters
        racing a cluster flip can still complete on their pinned generation).
    """

    def __init__(
        self,
        database: Database,
        causal_dag: CausalDAG | None = None,
        config: EngineConfig | None = None,
        *,
        shard_index: int,
        n_shards: int,
        max_workers: int | None = None,
        retained_generations: int = 2,
        **service_kwargs: Any,
    ) -> None:
        if not 0 <= shard_index < n_shards:
            raise QuerySemanticsError(
                f"shard index {shard_index} out of range for {n_shards} shard(s)"
            )
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.retained_generations = max(1, retained_generations)
        self.service = HypeRService(
            database,
            causal_dag,
            config,
            max_workers=max_workers,
            **service_kwargs,
        )
        self.config = self.service.config
        self.causal_dag = causal_dag
        self._lock = threading.Lock()
        #: answerable runtimes keyed by generation (latest + pinned fallbacks)
        self._runtimes: dict[int, ShardWorkerRuntime] = {}
        #: (generation, runtime, assignments) staged by phase one of a commit
        self._staged: tuple[int, ShardWorkerRuntime, dict[str, dict[str, Any]]] | None = None
        self._runtimes[self.service.generation] = self._build_runtime(
            self.service.database
        )

    # -- runtime construction ----------------------------------------------------------

    def _build_runtime(self, database: Database) -> ShardWorkerRuntime:
        # mirror HypeRService._blocks so the plan (and the partials' block
        # carriers) matches what an unsharded service would compute
        blocks = (
            block_labels(database, self.causal_dag)
            if self.causal_dag is not None and self.config.use_blocks
            else None
        )
        plan = partition_database(
            database, self.causal_dag, self.n_shards, blocks=blocks
        )
        return ShardWorkerRuntime(plan[self.shard_index], self.causal_dag, self.config)

    def runtime_generations(self) -> list[int]:
        with self._lock:
            return sorted(self._runtimes)

    def _runtime_for(self, generation: int) -> ShardWorkerRuntime:
        with self._lock:
            runtime = self._runtimes.get(generation)
            if runtime is None:
                raise _stale_generation(generation, sorted(self._runtimes))
            return runtime

    # -- the /v1/partial data plane ----------------------------------------------------

    def partial_payload(
        self, body: dict[str, Any], *, deadline: "api.RequestDeadline | None" = None
    ) -> dict[str, Any]:
        """Answer one partial request body (already JSON-decoded)."""
        kind = body.get("kind")
        query_text = body.get("query")
        if kind not in ("whatif", "howto", "howto_verify"):
            raise PayloadError(400, f"unknown partial kind {kind!r}")
        if not isinstance(query_text, str) or not query_text.strip():
            raise PayloadError(400, "field 'query' must be a non-empty string")
        try:
            generation = int(body.get("generation", 0))
        except (TypeError, ValueError):
            raise PayloadError(
                400, f"invalid generation {body.get('generation')!r}"
            ) from None
        runtime = self._runtime_for(generation)
        parsed = self.service.parse(query_text)
        if deadline is not None:
            deadline.check()
        if kind == "whatif":
            if not isinstance(parsed, WhatIfQuery):
                raise PayloadError(400, "kind 'whatif' needs a what-if query")
            with obs_trace.span("cluster.partial", kind=kind, shard=self.shard_index):
                partial = runtime.what_if_partial(parsed)
            encoded: dict[str, Any] = wire.encode_what_if_partial(partial)
        elif kind == "howto":
            if not isinstance(parsed, HowToQuery):
                raise PayloadError(400, "kind 'howto' needs a how-to query")
            with obs_trace.span("cluster.partial", kind=kind, shard=self.shard_index):
                partial = runtime.how_to_partial(parsed)
            encoded = wire.encode_how_to_partial(partial)
        else:
            if not isinstance(parsed, HowToQuery):
                raise PayloadError(400, "kind 'howto_verify' needs a how-to query")
            chosen = body.get("chosen")
            if not isinstance(chosen, list):
                raise PayloadError(400, "kind 'howto_verify' needs a 'chosen' index list")
            try:
                indices = [int(i) for i in chosen]
            except (TypeError, ValueError):
                raise PayloadError(400, f"invalid 'chosen' indices {chosen!r}") from None
            with obs_trace.span("cluster.partial", kind=kind, shard=self.shard_index):
                own, count, sum_ = runtime.how_to_verify(parsed, indices)
            encoded = wire.encode_verify(own, count, sum_)
        return {
            "api_version": API_VERSION,
            "kind": kind,
            "generation": generation,
            "shard_index": self.shard_index,
            "partial": encoded,
        }

    # -- the /v1/cluster/update control plane ------------------------------------------

    def cluster_update_payload(self, body: dict[str, Any]) -> dict[str, Any]:
        phase = body.get("phase")
        try:
            generation = int(body.get("generation"))
        except (TypeError, ValueError):
            raise PayloadError(
                400, f"invalid generation {body.get('generation')!r}"
            ) from None
        if phase == "stage":
            request = api.parse_update_request(
                {"api_version": API_VERSION, "assignments": body.get("assignments")}
            )
            assignments = {
                relation: dict(columns)
                for relation, columns in request.assignments.items()
            }
            if not assignments:
                raise PayloadError(400, "stage needs a non-empty 'assignments' object")
            self.stage(generation, assignments)
            return {
                "api_version": API_VERSION,
                "phase": "stage",
                "generation": generation,
                "staged": True,
            }
        if phase == "flip":
            changed = self.flip(generation)
            return {
                "api_version": API_VERSION,
                "phase": "flip",
                "generation": self.service.generation,
                "changed": sorted(changed),
            }
        raise PayloadError(400, f"unknown cluster-update phase {phase!r}")

    def stage(self, generation: int, assignments: dict[str, dict[str, Any]]) -> None:
        """Phase one: build the next generation's runtime without committing.

        The staged runtime's database applies ``assignments`` the same way
        :meth:`HypeRService.update_relation_columns` will at flip time, so
        the slice the runtime materialises is value-identical to the state
        the node's service commits — current queries keep answering from the
        installed runtimes meanwhile.
        """
        with self._lock:
            expected = self.service.generation + 1
            if generation != expected:
                raise _stale_generation(generation, sorted(self._runtimes))
            database = self.service.database
            for relation_name, columns in assignments.items():
                if relation_name not in database:
                    raise QuerySemanticsError(
                        f"unknown relation {relation_name!r}; database has "
                        f"{sorted(database.relation_names)}"
                    )
                relation = database[relation_name]
                for attribute, values in columns.items():
                    relation = relation.with_column(attribute, values)
                database = database.with_relation(relation)
            runtime = self._build_runtime(database)
            self._staged = (generation, runtime, assignments)

    def flip(self, generation: int) -> frozenset[str]:
        """Phase two: commit the staged assignments and install the runtime."""
        with self._lock:
            if self._staged is None or self._staged[0] != generation:
                staged_gen = None if self._staged is None else self._staged[0]
                raise api.ApiError(
                    409,
                    ErrorEnvelope(
                        "stale_generation",
                        f"no staged runtime for generation {generation} "
                        f"(staged: {staged_gen})",
                        {"requested": generation, "staged": staged_gen},
                    ),
                )
            if self.service.generation + 1 != generation:
                self._staged = None
                raise _stale_generation(generation, sorted(self._runtimes))
            _gen, runtime, assignments = self._staged
            changed = self.service.update_relation_columns(assignments)
            self._runtimes[generation] = runtime
            self._staged = None
            for old in sorted(self._runtimes)[: -self.retained_generations]:
                del self._runtimes[old]
            return changed

    def close(self) -> None:
        self.service.close()

    # -- front-door integration --------------------------------------------------------

    def app_factory(self, service: HypeRService, admission: Any, **kwargs: Any) -> "ShardServerApp":
        """``AsyncServingRunner(app_factory=shard_server.app_factory)`` hook."""
        return ShardServerApp(self, service, admission, **kwargs)


class ShardServerApp(AsyncApp):
    """The asyncio front door plus the cluster's internal endpoints."""

    def __init__(
        self, shard_server: ShardServer, service: HypeRService, admission: Any, **kwargs: Any
    ) -> None:
        super().__init__(service, admission, **kwargs)
        self.shard_server = shard_server

    async def _dispatch(self, request, writer, keep_alive: bool) -> bool:
        if request.method == "POST" and request.path == PARTIAL_PATH:
            request.headers.setdefault("x-request-id", obs_trace.new_request_id())
            return await self._handle_partial(request, writer, keep_alive)
        if request.method == "POST" and request.path == CLUSTER_UPDATE_PATH:
            request.headers.setdefault("x-request-id", obs_trace.new_request_id())
            return await self._handle_cluster_update(request, writer, keep_alive)
        return await super()._dispatch(request, writer, keep_alive)

    async def _handle_partial(self, request, writer, keep_alive: bool) -> bool:
        # data plane: admission-controlled exactly like /v1/query (a scatter
        # leg competes with local public queries for the same executor)
        request_id = request.request_id
        try:
            self.admission.try_admit(1, endpoint="partial")
        except AdmissionRejected as rejected:
            return await self._send(
                writer,
                429,
                _rejection_body(rejected),
                keep_alive,
                extra_headers=_retry_after_headers(rejected),
                request_id=request_id,
            )
        try:
            body = decode_json_object(request.body)
        except PayloadError as error:
            self.admission.cancel_reservation(1)
            return await self._send_error(writer, error, keep_alive, request_id=request_id)
        deadline_ms = body.get("deadline_ms")
        deadline = (
            api.RequestDeadline(int(deadline_ms)) if deadline_ms is not None else None
        )
        await self.admission.acquire_slot()
        try:
            try:
                payload = await self._run_blocking(
                    self.shard_server.partial_payload, body, deadline=deadline
                )
            except Exception as error:  # noqa: BLE001 - keep the JSON contract
                return await self._send_error(
                    writer, error, keep_alive, request_id=request_id
                )
            return await self._send(
                writer, 200, payload, keep_alive,
                request_id=request_id, request=request,
            )
        finally:
            self.admission.release_slot()

    async def _handle_cluster_update(self, request, writer, keep_alive: bool) -> bool:
        # control plane like /v1/update: a commit must land on a saturated
        # node, so it bypasses admission and runs on the auxiliary thread
        request_id = request.request_id
        try:
            body = decode_json_object(request.body)
        except PayloadError as error:
            return await self._send_error(writer, error, keep_alive, request_id=request_id)
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._aux_executor, self.shard_server.cluster_update_payload, body
            )
        except Exception as error:  # noqa: BLE001 - keep the JSON contract
            return await self._send_error(writer, error, keep_alive, request_id=request_id)
        return await self._send(
            writer, 200, payload, keep_alive, request_id=request_id
        )
