"""Bit-exact JSON wire forms for the cluster's internal partial protocol.

Shard servers answer ``POST /v1/partial`` with the same
:class:`~repro.shard.merge.WhatIfShardPartial` /
:class:`~repro.shard.merge.HowToShardPartial` objects the in-process worker
pool ships over pickle — but here they cross an HTTP boundary, so the arrays
are encoded as base64 of their raw little-endian bytes.  ``tobytes`` →
``frombuffer`` preserves every IEEE-754 bit pattern, which is what keeps the
coordinator's merged answers *bitwise* equal to a single unsharded service:
the merge protocol itself (:mod:`repro.shard.merge`) only ever concatenates
and scatters these arrays before running the unsharded reduction.

Scalars and ``meta`` dictionaries travel as plain JSON — Python's ``json``
module round-trips ``float`` (shortest-repr) exactly, and every meta value
the engines emit is a JSON-safe str/int/list.
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from ..core.howto import CandidateUpdate
from ..core.updates import AddConstant, MultiplyBy, SetTo, UpdateFunction
from ..exceptions import HypeRError
from ..shard.merge import HowToShardPartial, WhatIfShardPartial

__all__ = [
    "WireError",
    "decode_array",
    "decode_candidate",
    "decode_how_to_partial",
    "decode_verify",
    "decode_what_if_partial",
    "encode_array",
    "encode_candidate",
    "encode_how_to_partial",
    "encode_verify",
    "encode_what_if_partial",
]


class WireError(HypeRError):
    """A malformed cluster wire payload."""


# -- raw array codec -----------------------------------------------------------------


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """``{"dtype", "shape", "data"}`` with ``data`` = base64 of the raw bytes."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: Any) -> np.ndarray:
    if not isinstance(payload, dict):
        raise WireError(f"array payload must be an object, got {type(payload).__name__}")
    try:
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(n) for n in payload["shape"])
        raw = base64.b64decode(payload["data"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed array payload: {error}") from None
    expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
    if len(raw) != expected:
        raise WireError(
            f"array payload carries {len(raw)} bytes, expected {expected} "
            f"for shape {shape} of {dtype}"
        )
    # copy() detaches from the read-only frombuffer view — merge finishers
    # index and scatter these arrays freely
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def _encode_optional(array: np.ndarray | None) -> dict[str, Any] | None:
    return None if array is None else encode_array(array)


def _decode_optional(payload: Any) -> np.ndarray | None:
    return None if payload is None else decode_array(payload)


# -- scalar values -------------------------------------------------------------------


def _plain_scalar(value: Any) -> Any:
    """Demote numpy scalars to builtins (json can't serialise np.float64)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        # float(np.float64) is the identical IEEE-754 double — no rounding
        return float(value)
    return value


# -- candidate updates ---------------------------------------------------------------

_FUNCTION_KINDS = {"set": SetTo, "add": AddConstant, "mul": MultiplyBy}


def _encode_function(function: UpdateFunction) -> dict[str, Any]:
    if isinstance(function, SetTo):
        return {"kind": "set", "value": _plain_scalar(function.value)}
    if isinstance(function, AddConstant):
        return {"kind": "add", "value": _plain_scalar(function.delta)}
    if isinstance(function, MultiplyBy):
        return {"kind": "mul", "value": _plain_scalar(function.factor)}
    raise WireError(f"cannot encode update function {type(function).__name__}")


def _decode_function(payload: Any) -> UpdateFunction:
    if not isinstance(payload, dict) or "kind" not in payload:
        raise WireError(f"malformed update-function payload: {payload!r}")
    kind = payload["kind"]
    cls = _FUNCTION_KINDS.get(kind)
    if cls is None:
        raise WireError(f"unknown update-function kind {kind!r}")
    return cls(payload.get("value"))


def encode_candidate(candidate: CandidateUpdate) -> dict[str, Any]:
    return {
        "attribute": candidate.attribute,
        "function": _encode_function(candidate.function),
        "label": candidate.label,
    }


def decode_candidate(payload: Any) -> CandidateUpdate:
    if not isinstance(payload, dict):
        raise WireError(f"candidate payload must be an object, got {type(payload).__name__}")
    try:
        return CandidateUpdate(
            attribute=payload["attribute"],
            function=_decode_function(payload["function"]),
            label=payload["label"],
        )
    except KeyError as error:
        raise WireError(f"candidate payload missing field {error}") from None


# -- what-if partials ----------------------------------------------------------------


def encode_what_if_partial(partial: WhatIfShardPartial) -> dict[str, Any]:
    return {
        "shard_index": partial.shard_index,
        "n_shards": partial.n_shards,
        "n_rows": partial.n_rows,
        "row_indices": encode_array(partial.row_indices),
        "count": encode_array(partial.count),
        "sum": _encode_optional(partial.sum),
        "meta": {key: _plain_scalar(value) for key, value in partial.meta.items()},
        "scope_mask": _encode_optional(partial.scope_mask),
        "block_of_row": _encode_optional(partial.block_of_row),
        "n_blocks": partial.n_blocks,
    }


def decode_what_if_partial(payload: Any) -> WhatIfShardPartial:
    if not isinstance(payload, dict):
        raise WireError(f"what-if partial must be an object, got {type(payload).__name__}")
    try:
        return WhatIfShardPartial(
            shard_index=int(payload["shard_index"]),
            n_shards=int(payload["n_shards"]),
            n_rows=int(payload["n_rows"]),
            row_indices=decode_array(payload["row_indices"]),
            count=decode_array(payload["count"]),
            sum=_decode_optional(payload.get("sum")),
            meta=dict(payload.get("meta") or {}),
            scope_mask=_decode_optional(payload.get("scope_mask")),
            block_of_row=_decode_optional(payload.get("block_of_row")),
            n_blocks=None if payload.get("n_blocks") is None else int(payload["n_blocks"]),
        )
    except KeyError as error:
        raise WireError(f"what-if partial missing field {error}") from None


# -- how-to partials -----------------------------------------------------------------


def encode_how_to_partial(partial: HowToShardPartial) -> dict[str, Any]:
    return {
        "shard_index": partial.shard_index,
        "n_shards": partial.n_shards,
        "n_rows": partial.n_rows,
        "row_indices": encode_array(partial.row_indices),
        "baseline_count": encode_array(partial.baseline_count),
        "baseline_sum": encode_array(partial.baseline_sum),
        "candidate_count": encode_array(partial.candidate_count),
        "candidate_sum": encode_array(partial.candidate_sum),
        "signature": [[attribute, label] for attribute, label in partial.signature],
        "meta": {key: _plain_scalar(value) for key, value in partial.meta.items()},
        "candidates": (
            None
            if partial.candidates is None
            else [encode_candidate(candidate) for candidate in partial.candidates]
        ),
    }


def decode_how_to_partial(payload: Any) -> HowToShardPartial:
    if not isinstance(payload, dict):
        raise WireError(f"how-to partial must be an object, got {type(payload).__name__}")
    try:
        raw_candidates = payload.get("candidates")
        return HowToShardPartial(
            shard_index=int(payload["shard_index"]),
            n_shards=int(payload["n_shards"]),
            n_rows=int(payload["n_rows"]),
            row_indices=decode_array(payload["row_indices"]),
            baseline_count=decode_array(payload["baseline_count"]),
            baseline_sum=decode_array(payload["baseline_sum"]),
            candidate_count=decode_array(payload["candidate_count"]),
            candidate_sum=decode_array(payload["candidate_sum"]),
            signature=tuple(
                (attribute, label) for attribute, label in payload["signature"]
            ),
            meta=dict(payload.get("meta") or {}),
            candidates=(
                None
                if raw_candidates is None
                else [decode_candidate(candidate) for candidate in raw_candidates]
            ),
        )
    except KeyError as error:
        raise WireError(f"how-to partial missing field {error}") from None


# -- how-to verification triples -----------------------------------------------------


def encode_verify(
    own: np.ndarray, count: np.ndarray, sum_: np.ndarray
) -> dict[str, Any]:
    """The shard's re-evaluation of the chosen combined update."""
    return {
        "own": encode_array(own),
        "count": encode_array(count),
        "sum": encode_array(sum_),
    }


def decode_verify(payload: Any) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if not isinstance(payload, dict):
        raise WireError(f"verify payload must be an object, got {type(payload).__name__}")
    try:
        return (
            decode_array(payload["own"]),
            decode_array(payload["count"]),
            decode_array(payload["sum"]),
        )
    except KeyError as error:
        raise WireError(f"verify payload missing field {error}") from None
