"""The cluster's front door: scatter-gather with exact merge and failover.

:class:`ClusterCoordinator` duck-types :class:`~repro.service.session.HypeRService`
— ``execute`` / ``execute_many`` / ``update_relation_columns`` / ``stats`` /
``serving_signals`` / ``generation`` / ``metrics`` / ``slow_log`` — so both
existing HTTP front doors (:mod:`repro.service.server`,
:mod:`repro.aserve`) mount it unchanged and the public v1 API is identical
to a single-node deployment.

Per query it scatters one ``POST /v1/partial`` to a replica of every shard
(concurrently, on a private event loop thread), decodes the bit-exact wire
partials, and folds them through the *same* merge protocol the in-process
shard pool uses (:mod:`repro.shard.merge`) — so a cluster answer is bitwise
equal to the unsharded service's.  Because every replica of a shard
materialises the identical slice of the deterministic partition, failover is
exact too: a per-node timeout/connection failure (or a ``409
stale_generation``) simply retries the next replica of that shard, and the
merged answer cannot change.

Health: ``failure_threshold`` consecutive failures mark a node unhealthy
(skipped by the scatter's first choice); a background probe re-admits it
only once its ``/health`` reports the coordinator's current generation — a
node that missed an update fan-out can never serve stale partials.

Updates run two-phase under the commit lock: ``stage`` the next generation's
runtime on every healthy node (queries keep flowing against the current
generation), then ``flip`` everywhere; nodes retain the previous generation's
runtime so scatters racing the flip still finish exactly (the cluster
analogue of the MVCC ``pinned_fallbacks``).

Server-side deadlines decrement across hops: the coordinator advertises
``accepts_deadline`` and forwards each request's remaining budget as the
``deadline_ms`` of its downstream partial calls.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from typing import Any, Sequence

import numpy as np

from ..api import endpoints as api
from ..api.aclient import AsyncHypeRClient
from ..api.client import (
    ApiStatusError,
    DeadlineExceeded,
    OverloadedError,
    ServerDeadlineExceeded,
    TransportError,
)
from ..api.schemas import API_VERSION
from ..core.config import EngineConfig
from ..core.queries import HowToQuery, WhatIfQuery
from ..exceptions import HypeRError
from ..lang.parser import parse_query
from ..lang.unparse import unparse
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from ..obs.slowlog import SlowQueryLog
from ..service.executor import default_max_workers
from ..shard.merge import merge_how_to, merge_what_if, solve_merged_how_to
from . import wire
from .shardserver import CLUSTER_UPDATE_PATH, PARTIAL_PATH
from .topology import ClusterTopology

__all__ = ["ClusterCoordinator", "ClusterError", "ProxyAnswer"]

Query = WhatIfQuery | HowToQuery


class ClusterError(HypeRError):
    """A cluster-level serving failure (no replica of a shard could answer)."""


class ProxyAnswer:
    """An answer proxied verbatim from one node's public ``/v1/query``.

    Used for exhaustive how-to, which the cluster (like the in-process pool)
    runs unsharded on a single node — every node holds the full snapshot.
    ``payload()`` returns the node's v1 wire payload unchanged, so the
    coordinator's front door serves exactly what the node computed.
    """

    __slots__ = ("_payload", "runtime_seconds")

    def __init__(self, payload: dict[str, Any], runtime_seconds: float = 0.0) -> None:
        self._payload = payload
        self.runtime_seconds = runtime_seconds

    def payload(self) -> dict[str, Any]:
        return self._payload

    def summary(self) -> str:
        return json.dumps(self._payload, default=str)[:200]


class _NodeState:
    """Live health bookkeeping of one topology node."""

    __slots__ = ("index", "shard", "address", "client", "failures", "healthy")

    def __init__(self, index: int, shard: int, address, client: AsyncHypeRClient):
        self.index = index
        self.shard = shard
        self.address = address
        self.client = client
        self.failures = 0
        self.healthy = True


class ClusterCoordinator:
    """Scatter-gather front door over a :class:`ClusterTopology`.

    Parameters
    ----------
    topology:
        Node addresses and shard count (see :mod:`repro.cluster.topology`).
    config:
        The :class:`EngineConfig` shared with the shard nodes — only
        coordinator-relevant knobs are read here (``verify_howto_with_whatif``
        gates the second verification scatter).
    timeout:
        Per-node socket/IO timeout, seconds.
    failure_threshold:
        Consecutive per-node failures before the node is marked unhealthy.
    probe_interval:
        Seconds between background ``/health`` probes of unhealthy nodes.
    """

    #: front doors forward each request's remaining deadline budget into
    #: execute(..., deadline=) — it decrements across coordinator→shard hops
    accepts_deadline = True
    execution = "cluster"

    def __init__(
        self,
        topology: ClusterTopology,
        config: EngineConfig | None = None,
        *,
        max_workers: int | None = None,
        timeout: float = 30.0,
        failure_threshold: int = 3,
        probe_interval: float = 1.0,
        node_max_retries: int = 1,
        slow_query_seconds: float = 0.1,
        slow_log_size: int = 64,
    ) -> None:
        self.topology = topology
        self.config = config if config is not None else EngineConfig()
        self.n_shards = topology.n_shards
        self.placement = topology.placement
        self.max_workers = max_workers
        self.timeout = timeout
        self.failure_threshold = max(1, failure_threshold)
        self.probe_interval = probe_interval
        self._generation = 0
        self._started_at = time.time()
        self._n_queries = 0
        self._n_batches = 0
        # serializes two-phase update fan-outs (and generation bumps)
        self._commit_lock = threading.RLock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._probe_future: Future | None = None
        self._started = False
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._nodes = [
            _NodeState(
                index,
                topology.shard_of_node(index),
                address,
                AsyncHypeRClient(
                    address.host,
                    address.port,
                    timeout=timeout,
                    max_retries=node_max_retries,
                ),
            )
            for index, address in enumerate(topology.nodes)
        ]
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_queries = m.counter(
            "hyper_queries_total", "Queries accepted by execute()/execute_many()"
        )
        self._m_batches = m.counter(
            "hyper_batches_total", "Batches accepted by execute_many()"
        )
        self._m_rejected = m.counter(
            "hyper_rejected_total",
            "Requests turned away by front-end admission control",
            labelnames=("endpoint",),
        )
        self._m_latency = m.histogram(
            "hyper_request_seconds",
            "Tracked execution latency per endpoint",
            labelnames=("endpoint",),
        )
        self._m_inflight = m.gauge(
            "hyper_inflight", "Concurrent tracked executions across all front doors"
        )
        self._m_slow = m.counter(
            "hyper_slow_queries_total",
            "Query completions at or above the slow-query threshold",
        )
        self._m_scatters = m.counter(
            "hyper_cluster_scatters_total", "Per-shard partial calls issued"
        )
        self._m_failovers = m.counter(
            "hyper_cluster_failovers_total",
            "Scatter legs retried on a replica after a node failure",
        )
        self._m_node_failures = m.counter(
            "hyper_cluster_node_failures_total",
            "Per-node call failures observed by the coordinator",
            labelnames=("node",),
        )
        self._m_updates = m.counter(
            "hyper_cluster_updates_total", "Two-phase update fan-outs committed"
        )
        m.register_callback(
            "hyper_uptime_seconds",
            "Seconds since the coordinator started",
            lambda: time.time() - self._started_at,
        )
        m.register_callback(
            "hyper_generation",
            "Latest cluster-committed database generation",
            lambda: self._generation,
        )
        m.register_callback(
            "hyper_cluster_nodes", "Nodes in the topology", lambda: len(self._nodes)
        )
        m.register_callback(
            "hyper_cluster_healthy_nodes",
            "Nodes currently considered healthy",
            lambda: sum(1 for node in self._nodes if node.healthy),
        )
        m.register_callback(
            "hyper_cluster_node_up",
            "Per-node health (1 healthy, 0 unhealthy)",
            lambda: [
                ({"node": str(node.index)}, 1.0 if node.healthy else 0.0)
                for node in self._nodes
            ],
        )
        self.slow_log = SlowQueryLog(slow_log_size, slow_query_seconds)
        #: attached durable job manager (repro.jobs.attach_jobs); None = off.
        #: The coordinator duck-types the service surface the executor needs
        #: (execute / execute_many / generation / metrics), so background
        #: jobs fan out across the cluster like any interactive query.
        self.jobs: Any = None
        # bounded per-client request/rejection counters (X-Client-Id)
        self._clients_lock = threading.Lock()
        self._client_requests: dict[str, int] = {}
        self._client_rejections: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        """Start the private event-loop thread and the health-probe task."""
        with self._lifecycle_lock:
            if self._started:
                return
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="hyper-cluster-loop", daemon=True
            )
            thread.start()
            self._loop = loop
            self._thread = thread
            self._started = True
            self._probe_future = asyncio.run_coroutine_threadsafe(
                self._probe_forever(), loop
            )

    def start_pool(self) -> None:
        """Front-door lifecycle hook (the runner calls it): alias of start()."""
        self.start()

    def close(self) -> None:
        """Stop probing, close every node client, and join the loop thread."""
        with self._lifecycle_lock:
            if not self._started or self._closed:
                self._closed = True
                return
            self._closed = True
            if self._probe_future is not None:
                self._probe_future.cancel()
            loop = self._loop
            assert loop is not None
            try:
                asyncio.run_coroutine_threadsafe(
                    self._close_clients(), loop
                ).result(timeout=10)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)
            loop.close()
            self._loop = None
            self._thread = None

    async def _close_clients(self) -> None:
        for node in self._nodes:
            await node.client.close()

    def __enter__(self) -> "ClusterCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _run(self, coro: Any) -> Any:
        """Run a coroutine on the private loop from a calling thread."""
        if not self._started:
            self.start()
        if self._closed or self._loop is None:
            raise ClusterError("coordinator is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # -- health ------------------------------------------------------------------------

    def _record_failure(self, node: _NodeState) -> None:
        node.failures += 1
        self._m_node_failures.labels(node=str(node.index)).inc()
        if node.failures >= self.failure_threshold:
            node.healthy = False

    def _record_success(self, node: _NodeState) -> None:
        node.failures = 0
        node.healthy = True

    async def _probe_forever(self) -> None:
        """Re-admit unhealthy nodes whose /health matches our generation."""
        while not self._closed:
            await asyncio.sleep(self.probe_interval)
            for node in self._nodes:
                if node.healthy or self._closed:
                    continue
                try:
                    body = await node.client.health(
                        deadline=min(self.timeout, 5.0)
                    )
                except Exception:  # noqa: BLE001 - stays unhealthy
                    continue
                # generation must match: a node that missed an update fan-out
                # would serve stale partials if re-admitted
                if int(body.get("generation", -1)) == self._generation:
                    self._record_success(node)

    def _replica_order(self, shard: int) -> list[_NodeState]:
        """Healthy replicas first (topology order), unhealthy as last resort."""
        replicas = [self._nodes[j] for j in self.placement.replicas_of(shard)]
        return [n for n in replicas if n.healthy] + [
            n for n in replicas if not n.healthy
        ]

    # -- scatter-gather ----------------------------------------------------------------

    @staticmethod
    def _client_deadline(deadline: "api.RequestDeadline | None") -> float | None:
        if deadline is None:
            return None
        return max(deadline.remaining_ms() / 1000.0, 1e-3)

    async def _shard_partial(
        self,
        shard: int,
        kind: str,
        text: str,
        generation: int,
        deadline: "api.RequestDeadline | None",
        chosen: list[int] | None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "api_version": API_VERSION,
            "kind": kind,
            "query": text,
            "generation": generation,
        }
        if chosen is not None:
            payload["chosen"] = chosen
        last_error: Exception | None = None
        attempts = 0
        for node in self._replica_order(shard):
            if deadline is not None:
                remaining = deadline.remaining_ms()
                if remaining <= 0:
                    raise api.deadline_error(deadline.deadline_ms)
                payload["deadline_ms"] = max(1, int(remaining))
            if attempts:
                self._m_failovers.inc()
            attempts += 1
            self._m_scatters.inc()
            try:
                body = await node.client.post_json(
                    PARTIAL_PATH, payload, deadline=self._client_deadline(deadline)
                )
            except ServerDeadlineExceeded:
                raise api.deadline_error(
                    deadline.deadline_ms if deadline is not None
                    else int(payload.get("deadline_ms", 0))
                ) from None
            except DeadlineExceeded:
                if deadline is not None:
                    raise api.deadline_error(deadline.deadline_ms) from None
                raise
            except (TransportError, OverloadedError) as error:
                self._record_failure(node)
                last_error = error
                continue
            except ApiStatusError as error:
                if error.code == "stale_generation":
                    # the node missed (or outran) an update fan-out; another
                    # replica may still retain the requested generation
                    self._record_failure(node)
                    last_error = error
                    continue
                # a deterministic query error: every replica would answer the
                # same, so re-answer it verbatim at the coordinator
                raise api.ApiError(error.status, error.envelope) from None
            self._record_success(node)
            partial = body.get("partial")
            if not isinstance(partial, dict):
                raise ClusterError(
                    f"node {node.index} answered a malformed partial: {body!r}"
                )
            return partial
        raise ClusterError(
            f"no replica of shard {shard} could answer "
            f"(generation {generation}): {last_error}"
        )

    async def _scatter_async(
        self,
        kind: str,
        text: str,
        deadline: "api.RequestDeadline | None",
        chosen: list[int] | None = None,
    ) -> list[dict[str, Any]]:
        generation = self._generation
        return list(
            await asyncio.gather(
                *(
                    self._shard_partial(shard, kind, text, generation, deadline, chosen)
                    for shard in range(self.n_shards)
                )
            )
        )

    def _scatter(
        self,
        kind: str,
        text: str,
        deadline: "api.RequestDeadline | None",
        chosen: list[int] | None = None,
    ) -> list[dict[str, Any]]:
        with obs_trace.span("cluster.scatter", kind=kind, shards=self.n_shards):
            return self._run(self._scatter_async(kind, text, deadline, chosen))

    # -- the service surface -----------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    def parse(self, query_text: str) -> Query:
        return parse_query(query_text)

    def _as_query(self, query: Any) -> Query:
        if isinstance(query, str):
            return self.parse(query)
        from ..api.builder import as_query_object

        return as_query_object(query)

    @contextmanager
    def _track(self, endpoint: str, units: int = 1):
        started = time.perf_counter()
        self._m_inflight.inc(units)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._m_inflight.dec(units)
            self._m_latency.labels(endpoint=endpoint).observe(elapsed)

    _MAX_TRACKED_CLIENTS = 512

    def record_rejection(self, endpoint: str = "query", *, units: int = 1) -> None:
        self._m_rejected.labels(endpoint=endpoint).inc(units)

    def note_client_request(self, client_id: str, *, rejected: bool = False) -> None:
        """Attribute one front-door request (or rejection) to a client id."""
        with self._clients_lock:
            counters = self._client_requests
            key = client_id
            if key not in counters and len(counters) >= self._MAX_TRACKED_CLIENTS:
                key = "_other"
            counters[key] = counters.get(key, 0) + 1
            if rejected:
                self._client_rejections[key] = self._client_rejections.get(key, 0) + 1

    def client_stats(self) -> dict[str, Any]:
        with self._clients_lock:
            return {
                "tracked": len(self._client_requests),
                "requests": dict(self._client_requests),
                "rejections": dict(self._client_rejections),
            }

    def serving_signals(self) -> dict[str, Any]:
        """The admission-control signal snapshot (same shape as the service's)."""
        healthy = sum(1 for node in self._nodes if node.healthy)
        capacity = max(healthy, 1)
        in_flight = int(self._m_inflight.value)
        rejected = {k: int(v) for k, v in self._m_rejected.per_label().items()}
        signals: dict[str, Any] = {
            "in_flight": in_flight,
            "peak_in_flight": int(self._m_inflight.peak),
            "rejected_total": sum(rejected.values()),
            "rejected": rejected,
            "capacity_hint": capacity,
            "saturation": in_flight / capacity if capacity else 0.0,
            "latency": {
                endpoint: {"count": child.count, "seconds": child.sum}
                for endpoint, child in self._m_latency.per_label().items()
            },
        }
        jobs_manager = self.jobs
        if jobs_manager is not None:
            job_signals = jobs_manager.signals()
            signals["jobs"] = job_signals
            signals["in_flight"] = in_flight + job_signals["background_load"]
            signals["saturation"] = (
                signals["in_flight"] / capacity if capacity else 0.0
            )
        return signals

    def prepare(self, queries: Any) -> None:
        """Warm the shard nodes by answering each query once."""
        entries = queries if isinstance(queries, (list, tuple)) else [queries]
        for entry in entries:
            self.execute(entry)

    def _record_completion(self, text: str, kind: str, elapsed: float) -> None:
        if elapsed < self.slow_log.threshold_seconds:
            return
        active = obs_trace.current_trace()
        if self.slow_log.record(
            text,
            elapsed,
            query=text,
            request_id=active.request_id if active is not None else "",
            kind=kind,
        ):
            self._m_slow.inc()

    def _verifier(
        self,
        text: str,
        n_rows: int,
        deadline: "api.RequestDeadline | None",
    ):
        """The second verification scatter solve_merged_how_to calls back into."""
        if not getattr(self.config, "verify_howto_with_whatif", False):
            return None

        def verify(chosen_indices: list[int]):
            partials = self._scatter(
                "howto_verify", text, deadline, chosen=[int(i) for i in chosen_indices]
            )
            count = np.zeros(n_rows)
            sum_ = np.zeros(n_rows)
            for payload in partials:
                own, shard_count, shard_sum = wire.decode_verify(payload)
                count[own] = shard_count
                sum_[own] = shard_sum
            return count, sum_

        return verify

    def _proxy_query(
        self,
        text: str,
        *,
        exhaustive: bool,
        deadline: "api.RequestDeadline | None",
    ) -> ProxyAnswer:
        """Run a query unsharded on one node's public ``/v1/query``."""
        started = time.perf_counter()
        request: dict[str, Any] = {
            "api_version": API_VERSION,
            "query": text,
            "exhaustive": exhaustive,
        }
        if deadline is not None:
            remaining = deadline.remaining_ms()
            if remaining <= 0:
                raise api.deadline_error(deadline.deadline_ms)
            request["deadline_ms"] = max(1, int(remaining))

        async def call() -> dict[str, Any]:
            last_error: Exception | None = None
            candidates = [n for n in self._nodes if n.healthy] + [
                n for n in self._nodes if not n.healthy
            ]
            for node in candidates:
                try:
                    body = await node.client.post_json(
                        "/v1/query", request, deadline=self._client_deadline(deadline)
                    )
                except ServerDeadlineExceeded:
                    raise api.deadline_error(
                        deadline.deadline_ms if deadline is not None else 0
                    ) from None
                except (TransportError, OverloadedError, DeadlineExceeded) as error:
                    if isinstance(error, DeadlineExceeded) and deadline is not None:
                        raise api.deadline_error(deadline.deadline_ms) from None
                    self._record_failure(node)
                    last_error = error
                    continue
                except ApiStatusError as error:
                    raise api.ApiError(error.status, error.envelope) from None
                self._record_success(node)
                return body
            raise ClusterError(f"no node could answer the proxied query: {last_error}")

        payload = self._run(call())
        return ProxyAnswer(payload, runtime_seconds=time.perf_counter() - started)

    def execute(
        self,
        query: Any,
        *,
        exhaustive: bool = False,
        trace: "obs_trace.TraceContext | None" = None,
        deadline: "api.RequestDeadline | None" = None,
    ):
        """Answer one query via scatter-gather; bitwise equal to unsharded.

        The merge itself (and the how-to integer program) runs on the calling
        thread; only the network scatters cross into the private event loop —
        which lets the how-to verification callback issue its second scatter
        without re-entering the loop.
        """
        parsed = self._as_query(query)
        text = query if isinstance(query, str) else unparse(parsed)
        self._m_queries.inc()
        self._n_queries += 1
        with obs_trace.activate(trace), self._track("query"):
            started = time.perf_counter()
            if isinstance(parsed, WhatIfQuery):
                partials = self._scatter("whatif", text, deadline)
                with obs_trace.span("cluster.merge", kind="whatif"):
                    result = merge_what_if(
                        parsed, [wire.decode_what_if_partial(p) for p in partials]
                    )
                result.runtime_seconds = time.perf_counter() - started
                self._record_completion(text, "whatif", result.runtime_seconds)
                return result
            if exhaustive:
                # like the in-process pool's exhaustive path: run unsharded on
                # one node (every node holds the full snapshot)
                result = self._proxy_query(text, exhaustive=True, deadline=deadline)
                self._record_completion(text, "howto", result.runtime_seconds)
                return result
            partials = self._scatter("howto", text, deadline)
            with obs_trace.span("cluster.merge", kind="howto"):
                merged = merge_how_to(
                    parsed, [wire.decode_how_to_partial(p) for p in partials]
                )
            result = solve_merged_how_to(
                parsed,
                merged,
                verify=self._verifier(text, len(merged.baseline_count), deadline),
                runtime_seconds=time.perf_counter() - started,
            )
            result.runtime_seconds = time.perf_counter() - started
            self._record_completion(text, "howto", result.runtime_seconds)
            return result

    def execute_many(
        self,
        queries: Sequence[Any],
        *,
        max_workers: int | None = None,
        return_errors: bool = False,
    ) -> list[Any]:
        """Answer a batch concurrently; scatters interleave on the loop."""
        self._m_batches.inc()
        self._n_batches += 1
        if not queries:
            return []
        workers = max_workers or self.max_workers or default_max_workers()
        workers = max(1, min(workers, len(queries)))

        def run_one(entry: Any) -> Any:
            try:
                return self.execute(entry)
            except Exception as error:  # noqa: BLE001 - reported per query
                return error

        if workers == 1:
            outcomes = [run_one(entry) for entry in queries]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(run_one, queries))
        if not return_errors:
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    raise outcome
        return outcomes

    # -- updates (two-phase fan-out) ---------------------------------------------------

    def update_relation_columns(
        self, assignments: dict[str, dict[str, Any]]
    ) -> frozenset[str]:
        """Commit column overwrites cluster-wide as one generation.

        Phase one stages the next generation's runtime on every healthy node
        (a failure aborts the commit — nothing flipped, nothing changed);
        phase two flips them.  A node failing either phase is marked
        unhealthy, and since re-admission requires matching the coordinator's
        generation, a node that missed the flip stays out until an operator
        restarts it at the current data.
        """
        with self._commit_lock:
            generation = self._generation + 1
            wire_assignments = {
                relation: {attr: list(values) for attr, values in columns.items()}
                for relation, columns in assignments.items()
            }
            changed = self._run(self._commit(generation, wire_assignments))
            self._generation = generation
            self._m_updates.inc()
            return frozenset(changed)

    def _covers_all_shards(self, nodes: list[_NodeState]) -> bool:
        return {node.shard for node in nodes} == set(range(self.n_shards))

    async def _node_update(
        self, node: _NodeState, payload: dict[str, Any]
    ) -> dict[str, Any]:
        return await node.client.post_json(CLUSTER_UPDATE_PATH, payload)

    async def _commit(
        self, generation: int, assignments: dict[str, dict[str, list]]
    ) -> list[str]:
        targets = [node for node in self._nodes if node.healthy]
        if not self._covers_all_shards(targets):
            raise ClusterError(
                "cannot commit: healthy nodes do not cover every shard"
            )
        stage_payload = {
            "api_version": API_VERSION,
            "phase": "stage",
            "generation": generation,
            "assignments": assignments,
        }
        results = await asyncio.gather(
            *(self._node_update(node, stage_payload) for node in targets),
            return_exceptions=True,
        )
        staged: list[_NodeState] = []
        stage_error: BaseException | None = None
        rejected: ApiStatusError | None = None
        for node, outcome in zip(targets, results):
            if isinstance(outcome, ApiStatusError) and outcome.code != "stale_generation":
                # deterministic validation rejection (unknown relation, column
                # length mismatch): every node answers the same, the node is
                # healthy, and the commit aborts with nothing flipped
                rejected = outcome
            elif isinstance(outcome, BaseException):
                self._record_failure(node)
                node.healthy = False
                stage_error = outcome
            else:
                staged.append(node)
        if rejected is not None:
            raise api.ApiError(rejected.status, rejected.envelope)
        if not self._covers_all_shards(staged):
            # abort before any flip: nodes drop their staged runtime the next
            # time a stage or flip arrives with a different generation
            raise ClusterError(
                f"update aborted in the stage phase: {stage_error}"
            ) from (stage_error if isinstance(stage_error, Exception) else None)
        flip_payload = {
            "api_version": API_VERSION,
            "phase": "flip",
            "generation": generation,
        }
        flip_results = await asyncio.gather(
            *(self._node_update(node, flip_payload) for node in staged),
            return_exceptions=True,
        )
        changed: list[str] | None = None
        flipped: list[_NodeState] = []
        flip_error: BaseException | None = None
        for node, outcome in zip(staged, flip_results):
            if isinstance(outcome, BaseException):
                self._record_failure(node)
                node.healthy = False
                flip_error = outcome
            else:
                flipped.append(node)
                changed = [str(name) for name in outcome.get("changed", [])]
        if not self._covers_all_shards(flipped):
            raise ClusterError(
                f"update failed to commit on a full shard cover: {flip_error}"
            ) from (flip_error if isinstance(flip_error, Exception) else None)
        return changed or []

    # -- instrumentation ---------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Cluster-wide stats: coordinator counters plus per-node snapshots."""
        node_stats = self._collect_node_stats()
        return {
            "generation": self._generation,
            "execution": self.execution,
            "n_queries": self._n_queries,
            "n_batches": self._n_batches,
            "uptime_seconds": time.time() - self._started_at,
            "serving": self.serving_signals(),
            "clients": self.client_stats(),
            **({"jobs": self.jobs.stats()} if self.jobs is not None else {}),
            "cluster": {
                "n_shards": self.n_shards,
                "n_nodes": len(self._nodes),
                "healthy_nodes": sum(1 for node in self._nodes if node.healthy),
                "scatters": int(self._m_scatters.value),
                "failovers": int(self._m_failovers.value),
                "updates": int(self._m_updates.value),
                "nodes": [
                    {
                        "index": node.index,
                        "shard": node.shard,
                        "host": node.address.host,
                        "port": node.address.port,
                        "healthy": node.healthy,
                        "failures": node.failures,
                        **node_stats.get(node.index, {}),
                    }
                    for node in self._nodes
                ],
            },
        }

    def _collect_node_stats(self) -> dict[int, dict[str, Any]]:
        """Best-effort per-node generation/uptime for the stats aggregation."""
        if not self._started or self._closed:
            return {}

        async def fetch(node: _NodeState) -> tuple[int, dict[str, Any]]:
            try:
                body = await node.client.get_json(
                    "/v1/stats", deadline=min(self.timeout, 2.0)
                )
            except Exception as error:  # noqa: BLE001 - best effort
                return node.index, {"stats_error": str(error)}
            return node.index, {
                "generation": body.get("generation"),
                "n_queries": body.get("n_queries"),
                "uptime_seconds": body.get("uptime_seconds"),
            }

        async def collect() -> dict[int, dict[str, Any]]:
            pairs = await asyncio.gather(
                *(fetch(node) for node in self._nodes if node.healthy)
            )
            return dict(pairs)

        try:
            return self._run(collect())
        except Exception:  # noqa: BLE001 - stats never fail the endpoint
            return {}
