"""Multi-node cluster serving: coordinator + shard-server topology.

One :class:`~repro.cluster.coordinator.ClusterCoordinator` front door accepts
the unchanged public v1 API and scatter-gathers per-shard partials over HTTP
from :class:`~repro.cluster.shardserver.ShardServer` nodes, folding them
through the exact merge protocol of :mod:`repro.shard.merge` — the same
commutative-monoid contract the in-process shard pool uses, so cluster
answers are bitwise equal to a single unsharded service.

* :mod:`repro.cluster.topology` — the JSON cluster config (node addresses,
  shard count) both roles load via ``repro serve --cluster-config``;
* :mod:`repro.cluster.placement` — deterministic shard→node replica sets
  (block→shard placement itself comes from the shared
  :func:`~repro.shard.partition.partition_database`);
* :mod:`repro.cluster.wire` — bit-exact JSON encodings of the shard partials
  crossing the ``/v1/partial`` internal endpoint;
* :mod:`repro.cluster.shardserver` — a shard node: the existing asyncio
  front door plus ``/v1/partial`` and the two-phase ``/v1/cluster/update``;
* :mod:`repro.cluster.coordinator` — the scatter-gather front door with
  replica failover, node health tracking and update fan-out.
"""

from .coordinator import ClusterCoordinator, ClusterError
from .placement import Placement, PlacementError
from .shardserver import ShardServer, ShardServerApp
from .topology import ClusterTopology, NodeAddress, TopologyError
from .wire import WireError

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterTopology",
    "NodeAddress",
    "Placement",
    "PlacementError",
    "ShardServer",
    "ShardServerApp",
    "TopologyError",
    "WireError",
]
