"""Deterministic shard → node placement with N-way replica sets.

Block → shard placement is *not* decided here: every node derives it from the
shared :func:`~repro.shard.partition.partition_database` (whose
``assign_blocks_to_shards`` is deterministic in the database and shard
count), so all replicas of a shard materialise the identical row subset
without any coordination.

What this module decides is which *nodes* serve which shard: node ``j``
serves shard ``j % n_shards``, so the replica set of shard ``i`` is every
node index congruent to ``i``.  With ``n_nodes = k * n_shards`` each shard
has exactly ``k`` interchangeable replicas; any node count ``>= n_shards``
covers every shard.  The mapping is a pure function of ``(n_shards,
n_nodes)`` — coordinator and nodes agree on it from the topology file alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import HypeRError

__all__ = ["Placement", "PlacementError"]


class PlacementError(HypeRError):
    """An invalid shard/node layout."""


@dataclass(frozen=True)
class Placement:
    """The round-robin shard → node assignment for one cluster layout."""

    n_shards: int
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise PlacementError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_nodes < self.n_shards:
            raise PlacementError(
                f"{self.n_nodes} node(s) cannot cover {self.n_shards} shard(s); "
                "every shard needs at least one node"
            )

    def shard_of_node(self, node_index: int) -> int:
        """The shard whose rows node ``node_index`` materialises."""
        if not 0 <= node_index < self.n_nodes:
            raise PlacementError(
                f"node index {node_index} out of range for {self.n_nodes} node(s)"
            )
        return node_index % self.n_shards

    def replicas_of(self, shard_index: int) -> tuple[int, ...]:
        """Node indices serving ``shard_index``, in topology order."""
        if not 0 <= shard_index < self.n_shards:
            raise PlacementError(
                f"shard index {shard_index} out of range for {self.n_shards} shard(s)"
            )
        return tuple(
            node for node in range(self.n_nodes) if node % self.n_shards == shard_index
        )

    @property
    def min_replication(self) -> int:
        """The smallest replica-set size across shards."""
        return self.n_nodes // self.n_shards
