"""The JSON cluster-topology config shared by coordinator and shard nodes.

One file describes the whole cluster; every process is launched against the
same file plus its role (``repro serve --role coordinator|shard
--cluster-config cluster.json``)::

    {
      "n_shards": 3,
      "nodes": [
        {"host": "127.0.0.1", "port": 9001},
        {"host": "127.0.0.1", "port": 9002},
        {"host": "127.0.0.1", "port": 9003}
      ],
      "coordinator": {"host": "127.0.0.1", "port": 9000}
    }

``nodes[j]`` is where node ``j`` listens; its shard is ``j % n_shards``
(see :class:`~repro.cluster.placement.Placement`).  The ``coordinator``
entry is optional — it only tells ``--role coordinator`` where to bind.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..exceptions import HypeRError
from .placement import Placement

__all__ = ["ClusterTopology", "NodeAddress", "TopologyError"]


class TopologyError(HypeRError):
    """A malformed or inconsistent cluster-topology config."""


@dataclass(frozen=True)
class NodeAddress:
    """Where one process listens."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise TopologyError("node host must be non-empty")
        # port 0 is excluded: a topology entry must be dialable as written
        if not 1 <= self.port <= 65535:
            raise TopologyError(f"node port {self.port} out of range")

    def to_json(self) -> dict[str, Any]:
        return {"host": self.host, "port": self.port}

    @classmethod
    def from_json(cls, payload: Any) -> "NodeAddress":
        if not isinstance(payload, dict):
            raise TopologyError(
                f"node address must be an object, got {type(payload).__name__}"
            )
        try:
            return cls(host=str(payload["host"]), port=int(payload["port"]))
        except KeyError as error:
            raise TopologyError(f"node address missing field {error}") from None
        except (TypeError, ValueError):
            raise TopologyError(f"malformed node address {payload!r}") from None


@dataclass(frozen=True)
class ClusterTopology:
    """The full cluster layout: shard count, node addresses, coordinator."""

    n_shards: int
    nodes: tuple[NodeAddress, ...]
    coordinator: NodeAddress | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, tuple):
            object.__setattr__(self, "nodes", tuple(self.nodes))
        # Placement validates n_shards >= 1 and full shard cover
        try:
            self.placement
        except HypeRError as error:
            raise TopologyError(str(error)) from None
        seen: set[tuple[str, int]] = set()
        for node in self.nodes:
            key = (node.host, node.port)
            if key in seen:
                raise TopologyError(f"duplicate node address {node.host}:{node.port}")
            seen.add(key)

    @property
    def placement(self) -> Placement:
        return Placement(n_shards=self.n_shards, n_nodes=len(self.nodes))

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def shard_of_node(self, node_index: int) -> int:
        return self.placement.shard_of_node(node_index)

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "n_shards": self.n_shards,
            "nodes": [node.to_json() for node in self.nodes],
        }
        if self.coordinator is not None:
            payload["coordinator"] = self.coordinator.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Any) -> "ClusterTopology":
        if not isinstance(payload, dict):
            raise TopologyError(
                f"cluster config must be an object, got {type(payload).__name__}"
            )
        try:
            n_shards = int(payload["n_shards"])
            raw_nodes = payload["nodes"]
        except KeyError as error:
            raise TopologyError(f"cluster config missing field {error}") from None
        except (TypeError, ValueError):
            raise TopologyError("n_shards must be an integer") from None
        if not isinstance(raw_nodes, list) or not raw_nodes:
            raise TopologyError("nodes must be a non-empty list of addresses")
        coordinator = payload.get("coordinator")
        return cls(
            n_shards=n_shards,
            nodes=tuple(NodeAddress.from_json(node) for node in raw_nodes),
            coordinator=(
                None if coordinator is None else NodeAddress.from_json(coordinator)
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ClusterTopology":
        """Read and validate a topology file."""
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise TopologyError(f"cannot read cluster config {path}: {error}") from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise TopologyError(f"cluster config {path} is not valid JSON: {error}") from None
        return cls.from_json(payload)

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")
