"""Random-forest regressor: bagged CART trees with random feature subsets.

Drop-in replacement for the sklearn ``RandomForestRegressor`` the paper uses to
estimate conditional probabilities (Section 5, "Implementation and setup").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import EstimationError
from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


@dataclass
class RandomForestRegressor:
    """Ensemble of :class:`DecisionTreeRegressor` fit on bootstrap samples."""

    n_estimators: int = 20
    max_depth: int = 8
    min_samples_split: int = 10
    min_samples_leaf: int = 5
    max_features: str | int | None = "sqrt"
    n_thresholds: int = 16
    bootstrap: bool = True
    random_state: int | None = None
    _trees: list[DecisionTreeRegressor] = field(default_factory=list, repr=False)
    _n_features: int = field(default=0, repr=False)

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        if self.max_features == "all":
            return None
        raise EstimationError(f"unknown max_features setting {self.max_features!r}")

    def fit(self, features: np.ndarray, target: np.ndarray) -> "RandomForestRegressor":
        features = np.asarray(features, dtype=float)
        target = np.asarray(target, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[0] != target.shape[0]:
            raise EstimationError("features and target have mismatched lengths")
        if features.shape[0] == 0:
            raise EstimationError("cannot fit a forest on zero rows")
        if self.n_estimators <= 0:
            raise EstimationError("n_estimators must be positive")
        n_samples, n_features = features.shape
        self._n_features = n_features
        max_features = self._resolve_max_features(n_features)
        rng = np.random.default_rng(self.random_state)
        self._trees = []
        for b in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n_samples, size=n_samples)
            else:
                idx = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                n_thresholds=self.n_thresholds,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features[idx], target[idx])
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise EstimationError("the forest has not been fitted")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        predictions = np.zeros(features.shape[0])
        for tree in self._trees:
            predictions += tree.predict(features)
        return predictions / len(self._trees)

    @property
    def n_fitted_trees(self) -> int:
        return len(self._trees)
