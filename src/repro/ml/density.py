"""Conditional probability / expectation estimators.

Two estimation routes back the computation in Sections 3.3 and A.4:

* :class:`FrequencyTable` — empirical conditional probabilities over discrete
  value combinations, with the *zero-support index* the paper describes: only
  value combinations that actually occur in the data are stored, so iterating
  "over the domain of the backdoor set" touches at most ``n`` combinations.
* :class:`ConditionalMeanRegressor` — a regression function (random forest by
  default, mirroring the paper's implementation) of an outcome on the update
  attribute and the backdoor attributes, used to evaluate post-update
  conditional expectations at counterfactual inputs ``B = f(b)``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..exceptions import EstimationError
from .encoding import FeatureEncoder
from .forest import RandomForestRegressor
from .linear import RidgeRegression

__all__ = ["FrequencyTable", "ConditionalMeanRegressor", "make_regressor"]


def _hashable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


@dataclass
class FrequencyTable:
    """Empirical joint distribution over a set of discrete columns.

    Stores counts per observed value combination (the zero-support index) and
    answers conditional probability queries ``Pr(target = v | conditions)`` and
    support queries ``observed_values(attribute | conditions)``.
    """

    attributes: tuple[str, ...] = ()
    _counts: Counter = field(default_factory=Counter, repr=False)
    _index: dict = field(default_factory=dict, repr=False)
    _total: int = 0

    @classmethod
    def fit(cls, columns: Mapping[str, Sequence[Any]]) -> "FrequencyTable":
        attributes = tuple(columns)
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise EstimationError("all columns must have the same length")
        n = lengths.pop()
        counts: Counter = Counter()
        index: dict[str, dict[Any, set[int]]] = {a: defaultdict(set) for a in attributes}
        for i in range(n):
            combo = tuple(_hashable(columns[a][i]) for a in attributes)
            counts[combo] += 1
            for a, v in zip(attributes, combo):
                index[a][v].add(i)
        table = cls(attributes=attributes, _counts=counts, _total=n)
        table._index = {a: dict(index[a]) for a in attributes}
        return table

    def __len__(self) -> int:
        return self._total

    @property
    def n_combinations(self) -> int:
        """Number of distinct value combinations with non-zero support."""
        return len(self._counts)

    def _position(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise EstimationError(
                f"attribute {attribute!r} is not part of this frequency table"
            ) from exc

    def _matching(self, conditions: Mapping[str, Any]) -> list[tuple]:
        positions = {self._position(a): _hashable(v) for a, v in conditions.items()}
        return [
            combo
            for combo in self._counts
            if all(combo[pos] == val for pos, val in positions.items())
        ]

    def count(self, conditions: Mapping[str, Any]) -> int:
        return sum(self._counts[c] for c in self._matching(conditions))

    def probability(self, target: Mapping[str, Any], given: Mapping[str, Any] | None = None) -> float:
        """``Pr(target | given)`` with empirical frequencies; 0 when the given has no support."""
        given = dict(given or {})
        overlap = set(target) & set(given)
        if overlap:
            raise EstimationError(f"attributes {sorted(overlap)} appear on both sides")
        denominator = self.count(given) if given else self._total
        if denominator == 0:
            return 0.0
        numerator = self.count({**given, **target})
        return numerator / denominator

    def observed_values(self, attribute: str, given: Mapping[str, Any] | None = None) -> list[Any]:
        """Values of ``attribute`` with non-zero support under ``given`` (zero-support index)."""
        position = self._position(attribute)
        given = dict(given or {})
        values = []
        seen = set()
        for combo in self._matching(given) if given else list(self._counts):
            value = combo[position]
            if value not in seen:
                seen.add(value)
                values.append(value)
        return values

    def conditional_distribution(
        self, attribute: str, given: Mapping[str, Any] | None = None
    ) -> dict[Any, float]:
        """Full conditional distribution of ``attribute`` given the conditions."""
        given = dict(given or {})
        denominator = self.count(given) if given else self._total
        if denominator == 0:
            return {}
        position = self._position(attribute)
        dist: dict[Any, float] = defaultdict(float)
        for combo in self._matching(given) if given else list(self._counts):
            dist[combo[position]] += self._counts[combo] / denominator
        return dict(dist)


def make_regressor(kind: str = "forest", random_state: int | None = 0, **kwargs):
    """Factory for the regression back-end (``forest`` | ``linear`` | ``ridge``)."""
    kind = kind.lower()
    if kind == "forest":
        return RandomForestRegressor(random_state=random_state, **kwargs)
    if kind == "linear":
        from .linear import LinearRegression

        return LinearRegression(**kwargs)
    if kind == "ridge":
        return RidgeRegression(**kwargs)
    raise EstimationError(f"unknown regressor kind {kind!r}")


@dataclass
class ConditionalMeanRegressor:
    """Regression of an outcome on a set of (possibly categorical) attributes.

    ``fit`` consumes raw columns; the encoder handles categorical attributes via
    one-hot encoding.  ``predict_rows`` evaluates the fitted conditional mean at
    arbitrary attribute assignments — including counterfactual values of the
    update attribute that never co-occur with the given covariates in the data,
    which is exactly what Equation (1) needs.
    """

    feature_attributes: tuple[str, ...]
    regressor_kind: str = "forest"
    random_state: int | None = 0
    regressor_params: Mapping[str, Any] = field(default_factory=dict)
    _encoder: FeatureEncoder | None = field(default=None, repr=False)
    _model: Any = field(default=None, repr=False)
    _target_mean: float = 0.0

    def fit(
        self,
        columns: Mapping[str, Sequence[Any]],
        target: Sequence[float],
    ) -> "ConditionalMeanRegressor":
        missing = [a for a in self.feature_attributes if a not in columns]
        if missing:
            raise EstimationError(f"training columns missing attributes {missing}")
        target = np.asarray(target, dtype=float)
        feature_columns = {a: columns[a] for a in self.feature_attributes}
        self._target_mean = float(target.mean()) if target.size else 0.0
        if not self.feature_attributes:
            self._encoder = None
            self._model = None
            return self
        self._encoder = FeatureEncoder.fit_columns(feature_columns)
        design = self._encoder.transform_columns(feature_columns)
        self._model = make_regressor(
            self.regressor_kind, random_state=self.random_state, **dict(self.regressor_params)
        )
        self._model.fit(design, target)
        return self

    def predict_rows(self, rows: Sequence[Mapping[str, Any]]) -> np.ndarray:
        if self._encoder is None or self._model is None:
            return np.full(len(rows), self._target_mean)
        design = np.vstack([self._encoder.transform_row(row) for row in rows])
        return self._model.predict(design)

    def predict_row(self, row: Mapping[str, Any]) -> float:
        return float(self.predict_rows([row])[0])

    def predict_columns(self, columns: Mapping[str, Sequence[Any]]) -> np.ndarray:
        if self._encoder is None or self._model is None:
            lengths = {len(v) for v in columns.values()} or {0}
            return np.full(lengths.pop(), self._target_mean)
        design = self._encoder.transform_columns(
            {a: columns[a] for a in self.feature_attributes}
        )
        return self._model.predict(design)

    # -- fused-kernel path: pre-encoded per-attribute design blocks ------------------

    @property
    def feature_order(self) -> tuple[str, ...]:
        """Attribute order of the fitted design matrix (empty before fitting)."""
        return self._encoder.attribute_order if self._encoder is not None else ()

    def attribute_block(self, attribute: str, values: Sequence[Any]) -> np.ndarray:
        """Encode one attribute's values into its design block.

        Lets callers cache the blocks of attributes whose values are constant
        across the queries of a plan; :meth:`predict_blocks` consumes them.
        """
        if self._encoder is None:
            raise EstimationError("the regressor has no fitted encoder")
        return self._encoder.transform_attribute(attribute, values)

    def predict_blocks(self, blocks: Sequence[np.ndarray], n_rows: int) -> np.ndarray:
        """Predict from per-attribute blocks built by :meth:`attribute_block`.

        The blocks must follow :attr:`feature_order`; stacking them is exactly
        what :meth:`predict_columns` does internally, so predictions are
        bitwise identical.
        """
        if self._encoder is None or self._model is None:
            return np.full(n_rows, self._target_mean)
        return self._model.predict(self._encoder.stack(blocks, n_rows))
