"""Estimation substrate: encoders, regressors, discretization, densities.

Replaces the sklearn dependency of the original implementation with
numpy-only regressors (CART trees, random forests, linear/ridge regression),
feature encoders, bucketization helpers and frequency-table conditional
probability estimators with the zero-support index described in the paper.
"""

from .density import ConditionalMeanRegressor, FrequencyTable, make_regressor
from .discretize import Discretizer, equal_depth_edges, equal_width_edges
from .encoding import ColumnEncoder, FeatureEncoder
from .forest import RandomForestRegressor
from .linear import LinearRegression, RidgeRegression
from .metrics import mean_absolute_error, mean_squared_error, r2_score, relative_error
from .tree import DecisionTreeRegressor

__all__ = [
    "ColumnEncoder",
    "ConditionalMeanRegressor",
    "DecisionTreeRegressor",
    "Discretizer",
    "FeatureEncoder",
    "FrequencyTable",
    "LinearRegression",
    "RandomForestRegressor",
    "RidgeRegression",
    "equal_depth_edges",
    "equal_width_edges",
    "make_regressor",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "relative_error",
]
