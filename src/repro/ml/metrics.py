"""Regression / estimation quality metrics used by tests and benchmarks."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import EstimationError

__all__ = ["mean_squared_error", "mean_absolute_error", "r2_score", "relative_error"]


def _validate(y_true: Sequence[float], y_pred: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(list(y_true), dtype=float)
    b = np.asarray(list(y_pred), dtype=float)
    if a.shape != b.shape:
        raise EstimationError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise EstimationError("metrics need at least one observation")
    return a, b


def mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    a, b = _validate(y_true, y_pred)
    return float(np.mean((a - b) ** 2))


def mean_absolute_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    a, b = _validate(y_true, y_pred)
    return float(np.mean(np.abs(a - b)))


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    a, b = _validate(y_true, y_pred)
    ss_res = float(np.sum((a - b) ** 2))
    ss_tot = float(np.sum((a - a.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def relative_error(estimate: float, truth: float, *, floor: float = 1e-9) -> float:
    """``|estimate - truth| / max(|truth|, floor)`` — the accuracy measure of Figure 10."""
    return abs(estimate - truth) / max(abs(truth), floor)
