"""Discretization utilities (equi-width and equi-depth bucketization).

HypeR bucketizes continuous attributes before building the how-to integer
program (Section 4.3) and the discretization experiment (Figure 9) sweeps the
number of buckets.  The paper uses equi-width buckets; equi-depth is provided
as well because it is the natural alternative and is exercised by the ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import EstimationError

__all__ = ["Discretizer", "equal_width_edges", "equal_depth_edges"]


def _as_float_array(values: Sequence[float]) -> np.ndarray:
    """Whole-array pass-through for ndarray input, list conversion otherwise."""
    if isinstance(values, np.ndarray) and values.dtype != object:
        return values.astype(float, copy=False)
    return np.asarray(list(values), dtype=float)


def equal_width_edges(values: Sequence[float], n_buckets: int) -> np.ndarray:
    """Bucket edges splitting ``[min, max]`` into ``n_buckets`` equal-width bins."""
    if n_buckets <= 0:
        raise EstimationError("n_buckets must be positive")
    arr = _as_float_array(values)
    if arr.size == 0:
        raise EstimationError("cannot discretize an empty column")
    low, high = float(arr.min()), float(arr.max())
    if low == high:
        high = low + 1.0
    return np.linspace(low, high, n_buckets + 1)


def equal_depth_edges(values: Sequence[float], n_buckets: int) -> np.ndarray:
    """Bucket edges putting (approximately) equal numbers of values per bin."""
    if n_buckets <= 0:
        raise EstimationError("n_buckets must be positive")
    arr = _as_float_array(values)
    if arr.size == 0:
        raise EstimationError("cannot discretize an empty column")
    quantiles = np.linspace(0, 1, n_buckets + 1)
    edges = np.quantile(arr, quantiles)
    # Guard against duplicate edges when the data has heavy ties.
    for i in range(1, len(edges)):
        if edges[i] <= edges[i - 1]:
            edges[i] = edges[i - 1] + 1e-9
    return edges


@dataclass
class Discretizer:
    """Fitted bucketization of a numeric column.

    ``strategy`` is ``"width"`` (equi-width, the paper's choice) or ``"depth"``
    (equi-depth / quantile buckets).
    """

    n_buckets: int
    strategy: str = "width"
    edges: np.ndarray | None = None

    def fit(self, values: Sequence[float]) -> "Discretizer":
        if self.strategy == "width":
            self.edges = equal_width_edges(values, self.n_buckets)
        elif self.strategy == "depth":
            self.edges = equal_depth_edges(values, self.n_buckets)
        else:
            raise EstimationError(f"unknown discretization strategy {self.strategy!r}")
        return self

    def _require_fitted(self) -> np.ndarray:
        if self.edges is None:
            raise EstimationError("the discretizer has not been fitted")
        return self.edges

    def transform(self, values: Sequence[float]) -> np.ndarray:
        """Bucket index per value (0-based; values outside the range are clipped)."""
        edges = self._require_fitted()
        arr = _as_float_array(values)
        idx = np.searchsorted(edges, arr, side="right") - 1
        return np.clip(idx, 0, self.n_buckets - 1)

    def bucket_centers(self) -> np.ndarray:
        """Representative (mid-point) value per bucket — the candidate update values."""
        edges = self._require_fitted()
        return (edges[:-1] + edges[1:]) / 2.0

    def bucket_bounds(self, bucket: int) -> tuple[float, float]:
        edges = self._require_fitted()
        if not 0 <= bucket < self.n_buckets:
            raise EstimationError(f"bucket index {bucket} out of range")
        return float(edges[bucket]), float(edges[bucket + 1])

    def inverse_transform(self, buckets: Sequence[int]) -> np.ndarray:
        """Map bucket indices back to representative values."""
        centers = self.bucket_centers()
        if isinstance(buckets, np.ndarray):
            idx = np.clip(buckets.astype(int), 0, self.n_buckets - 1)
        else:
            idx = np.clip(np.asarray(list(buckets), dtype=int), 0, self.n_buckets - 1)
        return centers[idx]
