"""CART regression trees (variance-reduction splitting), numpy only.

This is the base learner of the random-forest regressor HypeR uses to estimate
conditional probabilities / expectations (the paper uses sklearn's
``RandomForestRegressor``; Section 5 "Implementation and setup").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import EstimationError

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature is None``."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass
class DecisionTreeRegressor:
    """Regression tree minimising within-node variance.

    Parameters mirror the common sklearn knobs: ``max_depth``,
    ``min_samples_split``, ``min_samples_leaf``, ``max_features`` (number of
    features considered per split — used by the random forest), and
    ``n_thresholds`` limiting candidate split points per feature (quantile
    candidates), which keeps training linear-ish in the sample count.
    """

    max_depth: int = 8
    min_samples_split: int = 10
    min_samples_leaf: int = 5
    max_features: int | None = None
    n_thresholds: int = 16
    random_state: int | None = None
    _root: _Node | None = field(default=None, repr=False)
    _n_features: int = field(default=0, repr=False)

    def fit(self, features: np.ndarray, target: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=float)
        target = np.asarray(target, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[0] != target.shape[0]:
            raise EstimationError("features and target have mismatched lengths")
        if features.shape[0] == 0:
            raise EstimationError("cannot fit a tree on zero rows")
        self._n_features = features.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._root = self._build(features, target, depth=0, rng=rng)
        return self

    # -- tree construction -----------------------------------------------------------

    def _build(
        self, features: np.ndarray, target: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node_value = float(target.mean())
        n_samples = target.shape[0]
        if (
            depth >= self.max_depth
            or n_samples < self.min_samples_split
            or np.isclose(target.var(), 0.0)
        ):
            return _Node(value=node_value)

        best = self._best_split(features, target, rng)
        if best is None:
            return _Node(value=node_value)
        feature, threshold, left_mask = best
        right_mask = ~left_mask
        left = self._build(features[left_mask], target[left_mask], depth + 1, rng)
        right = self._build(features[right_mask], target[right_mask], depth + 1, rng)
        return _Node(value=node_value, feature=feature, threshold=threshold, left=left, right=right)

    def _candidate_features(self, rng: np.random.Generator) -> np.ndarray:
        if self.max_features is None or self.max_features >= self._n_features:
            return np.arange(self._n_features)
        k = max(1, int(self.max_features))
        return rng.choice(self._n_features, size=k, replace=False)

    def _best_split(
        self, features: np.ndarray, target: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float, np.ndarray] | None:
        n_samples = target.shape[0]
        total_sum = target.sum()
        total_sq = float(((target - target.mean()) ** 2).sum())
        best_gain = 1e-12
        best: tuple[int, float, np.ndarray] | None = None
        for feature in self._candidate_features(rng):
            column = features[:, feature]
            finite = column[np.isfinite(column)]
            if finite.size == 0:
                continue
            unique = np.unique(finite)
            if unique.size < 2:
                continue
            if unique.size > self.n_thresholds:
                quantiles = np.linspace(0, 1, self.n_thresholds + 2)[1:-1]
                thresholds = np.unique(np.quantile(finite, quantiles))
            else:
                thresholds = (unique[:-1] + unique[1:]) / 2.0
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_sum = target[left_mask].sum()
                right_sum = total_sum - left_sum
                # Variance reduction expressed through sums of squares:
                gain = (left_sum**2) / n_left + (right_sum**2) / n_right - (total_sum**2) / n_samples
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask.copy())
        # ``total_sq`` retained for clarity of the objective; gain is monotone in
        # the variance reduction so comparing gains is sufficient.
        _ = total_sq
        return best

    # -- prediction ------------------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise EstimationError("the tree has not been fitted")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[1] != self._n_features:
            raise EstimationError(
                f"expected {self._n_features} features, got {features.shape[1]}"
            )
        out = np.empty(features.shape[0])
        for i in range(features.shape[0]):
            out[i] = self._predict_row(features[i])
        return out

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            if row[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.value

    def depth(self) -> int:
        """Actual depth of the fitted tree (useful in tests)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise EstimationError("the tree has not been fitted")
        return walk(self._root)
