"""Linear and ridge regression (closed-form, numpy only).

A light-weight alternative to the random forest for the conditional-expectation
estimates; also used as the linearised surrogate objective when the how-to IP
needs a linear expression of the candidate updates (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import EstimationError

__all__ = ["LinearRegression", "RidgeRegression"]


@dataclass
class LinearRegression:
    """Ordinary least squares with an intercept term."""

    fit_intercept: bool = True
    coefficients: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    intercept: float = 0.0
    _fitted: bool = field(default=False, repr=False)

    def _design(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if self.fit_intercept:
            return np.hstack([np.ones((features.shape[0], 1)), features])
        return features

    def fit(self, features: np.ndarray, target: np.ndarray) -> "LinearRegression":
        target = np.asarray(target, dtype=float)
        design = self._design(features)
        if design.shape[0] != target.shape[0]:
            raise EstimationError(
                f"feature rows ({design.shape[0]}) do not match targets ({target.shape[0]})"
            )
        if design.shape[0] == 0:
            raise EstimationError("cannot fit a regression on zero rows")
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        if self.fit_intercept:
            self.intercept = float(solution[0])
            self.coefficients = solution[1:]
        else:
            self.intercept = 0.0
            self.coefficients = solution
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise EstimationError("the regression has not been fitted")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[1] != self.coefficients.shape[0]:
            raise EstimationError(
                f"expected {self.coefficients.shape[0]} features, got {features.shape[1]}"
            )
        # Row-stable dot product: einsum accumulates each row independently in
        # a fixed order, so predicting any subset of rows is bitwise identical
        # to slicing a full-matrix prediction.  BLAS gemv (``features @ coef``)
        # does not guarantee this, and the shard-merge protocol
        # (:mod:`repro.shard.merge`) relies on per-row reproducibility.
        return np.einsum("ij,j->i", features, self.coefficients) + self.intercept


@dataclass
class RidgeRegression(LinearRegression):
    """L2-regularised least squares (stabler with one-hot encoded categoricals)."""

    alpha: float = 1.0

    def fit(self, features: np.ndarray, target: np.ndarray) -> "RidgeRegression":
        if self.alpha < 0:
            raise EstimationError("ridge penalty must be non-negative")
        target = np.asarray(target, dtype=float)
        design = self._design(features)
        if design.shape[0] != target.shape[0]:
            raise EstimationError(
                f"feature rows ({design.shape[0]}) do not match targets ({target.shape[0]})"
            )
        if design.shape[0] == 0:
            raise EstimationError("cannot fit a regression on zero rows")
        n_features = design.shape[1]
        penalty = self.alpha * np.eye(n_features)
        if self.fit_intercept:
            penalty[0, 0] = 0.0  # do not shrink the intercept
        gram = design.T @ design + penalty
        solution = np.linalg.solve(gram, design.T @ target)
        if self.fit_intercept:
            self.intercept = float(solution[0])
            self.coefficients = solution[1:]
        else:
            self.intercept = 0.0
            self.coefficients = solution
        self._fitted = True
        return self
