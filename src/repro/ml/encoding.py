"""Feature encoding: turning relation columns into numeric design matrices.

The conditional-probability estimators (Section 3.3 / A.4) regress an outcome
on the update attribute and the backdoor set.  Those attributes may be numeric
or categorical; this module provides the label/one-hot encoders that build the
numeric feature matrices consumed by the regressors in :mod:`repro.ml`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..exceptions import EstimationError
from ..relational.columnar import Column
from ..relational.relation import Relation

__all__ = ["ColumnEncoder", "FeatureEncoder"]


@dataclass
class ColumnEncoder:
    """Encoder for a single attribute: pass-through for numeric, one-hot otherwise.

    Fitting and transforming go through :class:`~repro.relational.columnar.Column`
    so whole-column ndarray inputs (the columnar backend's representation) are
    encoded without per-value Python loops.
    """

    name: str
    numeric: bool = True
    categories: tuple[Any, ...] = ()
    fill_value: float = 0.0

    @classmethod
    def fit(cls, name: str, values: Sequence[Any]) -> "ColumnEncoder":
        column = Column.from_values(values)
        if len(column) == 0 or not column.valid.any():
            raise EstimationError(f"column {name!r} has no non-null values to encode")
        if column.is_numeric:
            observed = column.data[column.valid]
            fill = float(observed.mean()) if observed.size else 0.0
            return cls(name=name, numeric=True, fill_value=fill)
        categories = tuple(sorted({str(v) for v in column.data[column.valid]}))
        return cls(name=name, numeric=False, categories=categories)

    @property
    def width(self) -> int:
        return 1 if self.numeric else len(self.categories)

    @property
    def feature_names(self) -> list[str]:
        if self.numeric:
            return [self.name]
        return [f"{self.name}={c}" for c in self.categories]

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        column = Column.from_values(values)
        n = len(column)
        if self.numeric:
            if column.is_numeric:
                return np.where(column.null, self.fill_value, column.data).reshape(n, 1)
            # Mixed content hitting a numeric encoder: reference per-value loop
            # (float() raises for non-numeric values exactly as it used to).
            out = np.empty((n, 1))
            for i, v in enumerate(column.data):
                out[i, 0] = self.fill_value if v is None else float(v)
            return out
        out = np.zeros((n, len(self.categories)))
        if not self.categories:
            return out
        valid_rows = np.flatnonzero(column.valid)
        if valid_rows.size == 0:
            return out
        # Label with str() of the ORIGINAL values, not the sniffed column data:
        # a purely-numeric batch drawn from a mixed column must stringify as
        # str(2) == '2' (matching the categories recorded at fit time), not as
        # the float-converted '2.0'.
        source = (
            np.asarray(values, dtype=object) if column.is_numeric else column.data
        )
        labels = source[valid_rows].astype(str)
        cats = np.asarray(self.categories, dtype=str)
        pos = np.searchsorted(cats, labels)
        pos_clipped = np.minimum(pos, len(cats) - 1)
        known = cats[pos_clipped] == labels
        out[valid_rows[known], pos_clipped[known]] = 1.0
        return out

    def transform_value(self, value: Any) -> np.ndarray:
        return self.transform([value])[0]


@dataclass
class FeatureEncoder:
    """Encoder for an ordered set of attributes of a relation."""

    encoders: dict[str, ColumnEncoder] = field(default_factory=dict)
    attribute_order: tuple[str, ...] = ()

    @classmethod
    def fit(cls, relation: Relation, attributes: Sequence[str]) -> "FeatureEncoder":
        encoders = {}
        for attr in attributes:
            encoders[attr] = ColumnEncoder.fit(attr, relation.column_view(attr))
        return cls(encoders=encoders, attribute_order=tuple(attributes))

    @classmethod
    def fit_columns(cls, columns: Mapping[str, Sequence[Any]]) -> "FeatureEncoder":
        encoders = {name: ColumnEncoder.fit(name, values) for name, values in columns.items()}
        return cls(encoders=encoders, attribute_order=tuple(columns))

    @property
    def feature_names(self) -> list[str]:
        names: list[str] = []
        for attr in self.attribute_order:
            names.extend(self.encoders[attr].feature_names)
        return names

    @property
    def width(self) -> int:
        return sum(self.encoders[a].width for a in self.attribute_order)

    def transform_relation(self, relation: Relation) -> np.ndarray:
        blocks = [
            self.encoders[attr].transform(relation.column_view(attr))
            for attr in self.attribute_order
        ]
        if not blocks:
            return np.zeros((len(relation), 0))
        return np.hstack(blocks)

    def transform_columns(self, columns: Mapping[str, Sequence[Any]]) -> np.ndarray:
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise EstimationError("all columns must have the same length")
        blocks = [
            self.encoders[attr].transform(columns[attr])
            for attr in self.attribute_order
        ]
        if not blocks:
            n = lengths.pop() if lengths else 0
            return np.zeros((n, 0))
        return np.hstack(blocks)

    def transform_attribute(self, attribute: str, values: Sequence[Any]) -> np.ndarray:
        """One attribute's encoded design block (a column of the full matrix).

        Building the matrix block-by-block lets callers cache the blocks of
        attributes whose values do not change between queries (the backdoor
        covariates of a prepared plan); :meth:`stack` reassembles them exactly
        as :meth:`transform_columns` would have.
        """
        return self.encoders[attribute].transform(values)

    def stack(self, blocks: Sequence[np.ndarray], n_rows: int) -> np.ndarray:
        """Assemble per-attribute blocks (in ``attribute_order``) into a matrix."""
        if not blocks:
            return np.zeros((n_rows, 0))
        return np.hstack(list(blocks))

    def transform_row(self, row: Mapping[str, Any]) -> np.ndarray:
        pieces = [
            self.encoders[attr].transform_value(row.get(attr))
            for attr in self.attribute_order
        ]
        if not pieces:
            return np.zeros(0)
        return np.concatenate(pieces)
