"""Engine configuration: variants, estimator settings, optimisation toggles."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import QuerySemanticsError

__all__ = ["Variant", "EngineConfig"]


class Variant:
    """Named engine variants evaluated in the paper's experiments."""

    HYPER = "hyper"  # full HypeR: causal graph + backdoor adjustment
    HYPER_NB = "hyper-nb"  # no background knowledge: adjust for all attributes
    HYPER_SAMPLED = "hyper-sampled"  # train estimators on a row sample
    INDEP = "indep"  # provenance-style baseline ignoring dependencies

    ALL = (HYPER, HYPER_NB, HYPER_SAMPLED, INDEP)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs shared by the what-if and how-to engines.

    Parameters
    ----------
    variant:
        One of :class:`Variant`'s values: ``hyper`` (full causal engine with
        backdoor adjustment), ``hyper-nb`` (no background knowledge — adjust
        for every attribute), ``hyper-sampled`` (estimators trained on a row
        sample) or ``indep`` (provenance-style baseline without causal
        propagation).
    regressor:
        Estimator backend: ``"forest"`` (paper default, random forest),
        ``"linear"`` (closed-form OLS; fastest, used by the scaling
        benchmarks) or ``"ridge"`` (L2-regularised OLS, stabler with one-hot
        encoded categoricals).
    sample_size:
        When set (or when the variant is ``hyper-sampled``) the conditional
        probability estimators are trained on a random sample of this many view
        rows (Section 5.2's HypeR-sampled, default 100k in the paper).  Must be
        positive when given.
    use_blocks:
        Whether to decompose the computation over block-independent components
        (the Proposition 1 optimisation).  Turning it off is the ablation run
        by the benchmarks; results are identical, only per-block reporting and
        runtime change.
    use_support_index:
        Whether domain iteration uses the zero-support index (Section A.4):
        only value combinations with non-zero empirical support are
        enumerated.
    n_forest_trees / max_tree_depth:
        Random-forest capacity (kept modest so pure-Python training stays
        fast).  Ignored by the linear/ridge regressors.
    random_state:
        Seed controlling sampling and estimator randomness (reproducibility).
    fused_kernels:
        Route contribution accumulation and per-block reductions through the
        single-pass fused kernels in :mod:`repro.relational.columnar`
        (predicate folded into the aggregation traversal, per-plan cached
        masks and group codes).  ``False`` keeps the original multi-pass
        pipeline — the parity reference the fused path is tested against;
        answers are identical either way.
    verify_howto_with_whatif:
        After the how-to IP picks a plan, re-evaluate it with the what-if
        machinery and report the verified value alongside the IP objective.
    ground_truth_repeats:
        Number of possible-world simulations averaged by the ground-truth
        oracle in the accuracy experiments.
    backend:
        Storage/execution backend for the relational layer: ``"columnar"``
        (vectorized kernels over typed ndarray columns — the default),
        ``"rows"`` (the row-at-a-time reference implementation) or ``None``
        to leave every relation on the backend it was constructed with.  The
        engines convert the database lazily; data is shared, not copied.  See
        the backend contract in :mod:`repro.relational`.
    """

    variant: str = Variant.HYPER
    regressor: str = "forest"
    sample_size: int | None = None
    use_blocks: bool = True
    use_support_index: bool = True
    n_forest_trees: int = 12
    max_tree_depth: int = 6
    random_state: int = 0
    fused_kernels: bool = True
    verify_howto_with_whatif: bool = True
    ground_truth_repeats: int = 10
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.variant not in Variant.ALL:
            raise QuerySemanticsError(
                f"unknown variant {self.variant!r}; expected one of {Variant.ALL}"
            )
        if self.sample_size is not None and self.sample_size <= 0:
            raise QuerySemanticsError("sample_size must be positive when given")
        if self.n_forest_trees <= 0 or self.max_tree_depth <= 0:
            raise QuerySemanticsError("forest capacity parameters must be positive")
        if self.backend is not None and self.backend not in ("rows", "columnar"):
            raise QuerySemanticsError(
                f"unknown backend {self.backend!r}; expected 'rows' or 'columnar'"
            )

    def with_backend(self, backend: str | None) -> "EngineConfig":
        return replace(self, backend=backend)

    @property
    def is_sampled(self) -> bool:
        return self.variant == Variant.HYPER_SAMPLED or self.sample_size is not None

    @property
    def adjusts_for_all_attributes(self) -> bool:
        return self.variant == Variant.HYPER_NB

    @property
    def ignores_dependencies(self) -> bool:
        return self.variant == Variant.INDEP

    def with_variant(self, variant: str) -> "EngineConfig":
        return replace(self, variant=variant)

    def with_sample_size(self, sample_size: int | None) -> "EngineConfig":
        return replace(self, sample_size=sample_size)

    def regressor_params(self) -> dict:
        if self.regressor == "forest":
            return {
                "n_estimators": self.n_forest_trees,
                "max_depth": self.max_tree_depth,
            }
        return {}
