"""Result objects returned by the what-if and how-to engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .updates import AttributeUpdate

__all__ = ["BlockContribution", "WhatIfResult", "HowToResult"]


@dataclass(frozen=True)
class BlockContribution:
    """Per-block partial answer (the ``f'`` value of Proposition 1)."""

    block_index: int
    partial_value: float
    n_tuples: int
    n_scope_tuples: int


@dataclass
class WhatIfResult:
    """Answer to a what-if query plus evaluation metadata."""

    value: float
    aggregate: str
    output_attribute: str
    n_view_tuples: int = 0
    n_scope_tuples: int = 0
    n_blocks: int = 1
    block_contributions: list[BlockContribution] = field(default_factory=list)
    backdoor_set: tuple[str, ...] = ()
    variant: str = "hyper"
    runtime_seconds: float = 0.0
    expected_qualifying_count: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:
        return float(self.value)

    def summary(self) -> str:
        return (
            f"{self.aggregate}(Post({self.output_attribute})) = {self.value:.4f} "
            f"[{self.variant}, scope={self.n_scope_tuples}/{self.n_view_tuples} tuples, "
            f"{self.n_blocks} blocks, backdoor={list(self.backdoor_set)}, "
            f"{self.runtime_seconds:.3f}s]"
        )


@dataclass
class HowToResult:
    """Answer to a how-to query: the recommended update and its predicted effect."""

    recommended_updates: list[AttributeUpdate]
    objective_value: float
    baseline_value: float
    maximize: bool = True
    verified_value: float | None = None
    per_attribute_choices: Mapping[str, Any] = field(default_factory=dict)
    n_candidates: int = 0
    n_ip_variables: int = 0
    n_ip_constraints: int = 0
    solver_status: str = "optimal"
    runtime_seconds: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Objective improvement over leaving the database unchanged."""
        delta = self.objective_value - self.baseline_value
        return delta if self.maximize else -delta

    @property
    def changed_attributes(self) -> list[str]:
        return [u.attribute for u in self.recommended_updates]

    def plan(self) -> dict[str, str]:
        """The paper's output form: attribute -> chosen update (or "no change")."""
        out = {str(k): str(v) for k, v in self.per_attribute_choices.items()}
        for update in self.recommended_updates:
            out.setdefault(update.attribute, update.function.describe())
        return out

    def summary(self) -> str:
        direction = "maximize" if self.maximize else "minimize"
        plan = ", ".join(f"{k}: {v}" for k, v in self.plan().items()) or "no change"
        return (
            f"{direction} objective = {self.objective_value:.4f} "
            f"(baseline {self.baseline_value:.4f}) via [{plan}] "
            f"[{self.n_candidates} candidates, IP {self.n_ip_variables} vars / "
            f"{self.n_ip_constraints} constraints, {self.solver_status}, "
            f"{self.runtime_seconds:.3f}s]"
        )
