"""Result objects returned by the what-if and how-to engines."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Mapping

from .updates import AttributeUpdate

__all__ = [
    "BlockContribution",
    "LazyBlockContributions",
    "WhatIfResult",
    "HowToResult",
]


@dataclass(frozen=True)
class BlockContribution:
    """Per-block partial answer (the ``f'`` value of Proposition 1)."""

    block_index: int
    partial_value: float
    n_tuples: int
    n_scope_tuples: int


class LazyBlockContributions(Sequence):
    """Sequence of :class:`BlockContribution` materialised on access.

    The engines compute per-block totals as vectorized ``np.bincount`` arrays;
    with thousands of singleton blocks, eagerly building one dataclass object
    per block dominated the per-query runtime.  This wrapper keeps the arrays
    and constructs objects only when a caller actually iterates or indexes.
    """

    __slots__ = ("_indices", "_totals", "_sizes", "_scope_sizes")

    def __init__(self, indices, totals, sizes, scope_sizes) -> None:
        self._indices = indices
        self._totals = totals
        self._sizes = sizes
        self._scope_sizes = scope_sizes

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(len(self)))]
        block = int(self._indices[position])
        return BlockContribution(
            block_index=block,
            partial_value=float(self._totals[block]),
            n_tuples=int(self._sizes[block]),
            n_scope_tuples=int(self._scope_sizes[block]),
        )

    def __eq__(self, other: object) -> bool:
        # Preserve the equality contract block_contributions had as a plain
        # list (WhatIfResult dataclass equality relies on it).
        if isinstance(other, Sequence) and not isinstance(other, (str, bytes)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyBlockContributions({len(self)} blocks)"


@dataclass
class WhatIfResult:
    """Answer to a what-if query plus evaluation metadata."""

    value: float
    aggregate: str
    output_attribute: str
    n_view_tuples: int = 0
    n_scope_tuples: int = 0
    n_blocks: int = 1
    block_contributions: Sequence[BlockContribution] = field(default_factory=list)
    backdoor_set: tuple[str, ...] = ()
    variant: str = "hyper"
    runtime_seconds: float = 0.0
    expected_qualifying_count: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:
        return float(self.value)

    def payload(self) -> dict[str, Any]:
        """The v1 wire form (used by ``--json`` and both HTTP front doors).

        Serialized through :class:`repro.api.schemas.WhatIfAnswer` so every
        consumer sees one schema; the import is lazy to keep the core layer
        free of an api-package dependency at import time.
        """
        from ..api.schemas import WhatIfAnswer

        return WhatIfAnswer.from_result(self).to_json()

    def summary(self) -> str:
        return (
            f"{self.aggregate}(Post({self.output_attribute})) = {self.value:.4f} "
            f"[{self.variant}, scope={self.n_scope_tuples}/{self.n_view_tuples} tuples, "
            f"{self.n_blocks} blocks, backdoor={list(self.backdoor_set)}, "
            f"{self.runtime_seconds:.3f}s]"
        )


@dataclass
class HowToResult:
    """Answer to a how-to query: the recommended update and its predicted effect."""

    recommended_updates: list[AttributeUpdate]
    objective_value: float
    baseline_value: float
    maximize: bool = True
    verified_value: float | None = None
    per_attribute_choices: Mapping[str, Any] = field(default_factory=dict)
    n_candidates: int = 0
    n_ip_variables: int = 0
    n_ip_constraints: int = 0
    solver_status: str = "optimal"
    runtime_seconds: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Objective improvement over leaving the database unchanged."""
        delta = self.objective_value - self.baseline_value
        return delta if self.maximize else -delta

    @property
    def changed_attributes(self) -> list[str]:
        return [u.attribute for u in self.recommended_updates]

    def plan(self) -> dict[str, str]:
        """The paper's output form: attribute -> chosen update (or "no change")."""
        out = {str(k): str(v) for k, v in self.per_attribute_choices.items()}
        for update in self.recommended_updates:
            out.setdefault(update.attribute, update.function.describe())
        return out

    def payload(self) -> dict[str, Any]:
        """The v1 wire form (used by ``--json`` and both HTTP front doors)."""
        from ..api.schemas import HowToAnswer

        return HowToAnswer.from_result(self).to_json()

    def summary(self) -> str:
        direction = "maximize" if self.maximize else "minimize"
        plan = ", ".join(f"{k}: {v}" for k, v in self.plan().items()) or "no change"
        return (
            f"{direction} objective = {self.objective_value:.4f} "
            f"(baseline {self.baseline_value:.4f}) via [{plan}] "
            f"[{self.n_candidates} candidates, IP {self.n_ip_variables} vars / "
            f"{self.n_ip_constraints} constraints, {self.solver_status}, "
            f"{self.runtime_seconds:.3f}s]"
        )
