"""HypeR core: hypothetical updates, what-if and how-to query engines.

This package is the paper's primary contribution: probabilistic what-if queries
answered by backdoor-adjusted counterfactual regression over a block-decomposed
relevant view, and how-to queries answered by a 0/1 integer program over the
candidate update space.
"""

from .baselines import GroundTruthOracle, make_indep_engine, naive_possible_world_value
from .config import EngineConfig, Variant
from .engine import HypeR
from .estimator import PostUpdateEstimator, build_view_dag
from .howto import CandidateUpdate, HowToEngine, PreparedHowTo
from .queries import HowToQuery, LimitConstraint, WhatIfQuery
from .results import BlockContribution, HowToResult, WhatIfResult
from .updates import (
    AddConstant,
    AttributeUpdate,
    HypotheticalUpdate,
    MultiplyBy,
    SetTo,
    UpdateFunction,
)
from .whatif import PreparedWhatIf, WhatIfEngine, regressor_cache_key

__all__ = [
    "AddConstant",
    "AttributeUpdate",
    "BlockContribution",
    "CandidateUpdate",
    "EngineConfig",
    "GroundTruthOracle",
    "HowToEngine",
    "HowToQuery",
    "HowToResult",
    "HypeR",
    "HypotheticalUpdate",
    "LimitConstraint",
    "MultiplyBy",
    "PostUpdateEstimator",
    "PreparedHowTo",
    "PreparedWhatIf",
    "SetTo",
    "UpdateFunction",
    "Variant",
    "WhatIfEngine",
    "WhatIfQuery",
    "WhatIfResult",
    "build_view_dag",
    "make_indep_engine",
    "naive_possible_world_value",
    "regressor_cache_key",
]
