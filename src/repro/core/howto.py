"""How-to query evaluation (Section 4).

A how-to query optimises over the space of *candidate what-if queries*
(Definition 7): each candidate picks, for every attribute listed in
``HowToUpdate``, either "no change" or one admissible update value, subject to
the ``Limit`` constraints.  HypeR solves this search as a 0/1 integer program
(Section 4.3):

* one indicator variable per (attribute, candidate update value);
* an at-most-one constraint per attribute, plus an optional global budget;
* a linearised objective whose coefficient for an indicator is the estimated
  effect of applying that single update, obtained from the same
  backdoor-adjusted regression the what-if engine uses — the regression is
  trained **once** and re-evaluated per candidate, which is what makes the IP
  formulation orders of magnitude faster than enumerating candidates
  (Figure 11b / 12b).

The exhaustive Opt-HowTo baseline (evaluate every candidate combination) is
implemented here as well so the benchmarks can compare against it.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

import numpy as np

from ..causal.dag import CausalDAG
from ..exceptions import OptimizationError, QuerySemanticsError
from ..ml.discretize import Discretizer
from ..relational.types import IntegerDomain
from ..optim.model import IntegerProgram, LinearExpression
from ..optim.solution import SolveStatus
from ..optim.solver import BranchAndBoundSolver
from ..relational.aggregates import get_aggregate
from ..relational.database import Database
from ..relational.expressions import Expr
from ..relational.predicates import evaluate_mask, split_pre_post, to_dnf
from ..relational.relation import Relation
from .config import EngineConfig
from .estimator import PostUpdateEstimator, build_view_dag
from .queries import HowToQuery
from .results import HowToResult
from .updates import AttributeUpdate, MultiplyBy, SetTo, UpdateFunction, apply_update_column
from .whatif import _MAX_DISJUNCTS, numeric_output_column, regressor_cache_key

__all__ = [
    "CandidateUpdate",
    "HowToEngine",
    "PreparedHowTo",
    "build_howto_program",
    "candidate_contribution_rows",
    "candidate_post_values",
    "combine_candidate_value",
]


@dataclass(frozen=True)
class CandidateUpdate:
    """One admissible update of one attribute, as entered into the IP."""

    attribute: str
    function: UpdateFunction
    label: str

    def as_attribute_update(self) -> AttributeUpdate:
        return AttributeUpdate(self.attribute, self.function)


@dataclass
class PreparedHowTo:
    """State reused across all candidate evaluations of one how-to query.

    Built by :meth:`HowToEngine.prepare`; the service layer caches the
    contained estimator by plan fingerprint and injects it into fresh
    preparations of structurally identical queries.
    """

    view: Relation
    view_dag: CausalDAG | None
    scope_mask: np.ndarray
    estimator: PostUpdateEstimator
    pre_masks: list[np.ndarray]
    post_masks: list[np.ndarray]
    output_values: np.ndarray
    aggregate_name: str
    for_key: Hashable = None


# -- pure evaluation phases ----------------------------------------------------------
#
# Like :mod:`repro.core.whatif`, the per-candidate objective estimation is
# factored into pure functions over prepared state so the shard subsystem can
# evaluate disjoint row sets in worker processes and merge exactly: fits use
# full-view targets, predictions are row-stable, and the final fold over a
# merged full-length array reproduces the unsharded reduction bit for bit.


def candidate_post_values(
    query: HowToQuery,
    shared: PreparedHowTo,
    updates: Sequence[AttributeUpdate],
) -> dict[str, Sequence[Any]]:
    """Post-update columns for a concrete (possibly empty) update choice."""
    post_values: dict[str, Sequence[Any]] = {}
    by_attribute = {u.attribute: u.function for u in updates}
    for attribute in query.update_attributes:
        pre = shared.view.column_view(attribute)
        if attribute in by_attribute:
            post_values[attribute] = apply_update_column(
                by_attribute[attribute], pre, shared.scope_mask
            )
        else:
            post_values[attribute] = pre
    return post_values


def candidate_contribution_rows(
    query: HowToQuery,
    shared: PreparedHowTo,
    post_values: dict[str, Sequence[Any]],
    *,
    row_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row (count, sum) contributions of one candidate update choice.

    Full-view-length arrays; entries outside ``row_mask`` (when given) are
    zero.  ``sum`` is only populated for sum/avg objectives.
    """
    view = shared.view
    n = len(view)
    scope = np.asarray(shared.scope_mask, dtype=bool)
    restrict = (
        np.ones(n, dtype=bool) if row_mask is None else np.asarray(row_mask, dtype=bool)
    )
    if not post_values:
        post_values = candidate_post_values(query, shared, [])
    count_contrib = np.zeros(n)
    sum_contrib = np.zeros(n)

    qualifies_pre = np.zeros(n, dtype=bool)
    for pre_mask, post_mask in zip(shared.pre_masks, shared.post_masks):
        qualifies_pre |= pre_mask & post_mask
    unaffected = ~scope & restrict
    count_contrib[unaffected] = qualifies_pre[unaffected].astype(float)
    sum_contrib[unaffected] = np.where(
        qualifies_pre[unaffected], shared.output_values[unaffected], 0.0
    )
    if scope.any():
        n_disjuncts = len(shared.pre_masks)
        subsets = []
        for size in range(1, n_disjuncts + 1):
            subsets.extend(itertools.combinations(range(n_disjuncts), size))
        for subset in subsets:
            sign = 1.0 if len(subset) % 2 == 1 else -1.0
            joint_post = np.ones(n, dtype=bool)
            applicable = scope & restrict
            for k in subset:
                joint_post &= shared.post_masks[k]
                applicable &= shared.pre_masks[k]
            if not applicable.any():
                continue
            prob = shared.estimator.counterfactual_mean(
                joint_post.astype(float),
                applicable,
                post_values,
                cache_key=regressor_cache_key("count", subset, shared.for_key),
            )
            prob = np.clip(prob, 0.0, 1.0)
            count_contrib[applicable] += sign * prob[applicable]
            if shared.aggregate_name in ("sum", "avg"):
                expected = shared.estimator.counterfactual_mean(
                    shared.output_values * joint_post.astype(float),
                    applicable,
                    post_values,
                    cache_key=regressor_cache_key(
                        "sum", subset, shared.for_key, query.objective_attribute
                    ),
                )
                sum_contrib[applicable] += sign * expected[applicable]
    return count_contrib, sum_contrib


def combine_candidate_value(
    aggregate_name: str, count_contrib: np.ndarray, sum_contrib: np.ndarray
) -> float:
    """Fold per-row candidate contributions into the objective value."""
    expected_count = float(count_contrib.sum())
    if aggregate_name == "count":
        return expected_count
    if aggregate_name == "sum":
        return float(sum_contrib.sum())
    if expected_count <= 0:
        return 0.0
    return float(sum_contrib.sum()) / expected_count


def build_howto_program(
    query: HowToQuery,
    candidates: Sequence[CandidateUpdate],
    coefficients: dict[CandidateUpdate, float],
    baseline: float,
) -> tuple[IntegerProgram, dict[CandidateUpdate, str]]:
    """The 0/1 integer program of Section 4.3 for a coefficient assignment."""
    program = IntegerProgram(name=f"howto:{query.name}")
    variable_of: dict[CandidateUpdate, str] = {}
    for index, candidate in enumerate(candidates):
        name = f"u{index}_{candidate.attribute}"
        program.add_binary(name)
        variable_of[candidate] = name
    for attribute in query.update_attributes:
        terms = {
            variable_of[c]: 1.0 for c in candidates if c.attribute == attribute
        }
        if terms:
            program.add_constraint(terms, "<=", 1.0, name=f"at-most-one:{attribute}")
    if query.max_updates is not None:
        program.add_constraint(
            {variable_of[c]: 1.0 for c in candidates},
            "<=",
            float(query.max_updates),
            name="budget",
        )
    objective = LinearExpression(
        {variable_of[c]: coefficients[c] for c in candidates}, baseline
    )
    program.set_objective(objective, maximize=query.maximize)
    return program, variable_of


@dataclass
class HowToEngine:
    """Evaluates :class:`HowToQuery` objects."""

    database: Database
    causal_dag: CausalDAG | None = None
    config: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.config.backend is not None:
            self.database = self.database.with_backend(self.config.backend)

    # -- public API ---------------------------------------------------------------------

    def evaluate(
        self,
        query: HowToQuery,
        *,
        prepared: PreparedHowTo | None = None,
        candidates: Sequence[CandidateUpdate] | None = None,
    ) -> HowToResult:
        """Solve ``query`` with the IP formulation and return the recommended plan.

        ``prepared`` / ``candidates`` inject reusable state from
        :meth:`prepare` / :meth:`enumerate_candidates` (the service layer
        caches both); omitted pieces are built fresh.
        """
        started = time.perf_counter()
        shared = prepared if prepared is not None else self.prepare(query)
        if candidates is None:
            candidates = self.enumerate_candidates(query, shared.view, shared.scope_mask)
        baseline = self._candidate_value(query, shared, {})
        coefficients = self._candidate_coefficients(query, shared, candidates, baseline)
        program, variable_of = self._build_program(query, candidates, coefficients, baseline)
        solution = BranchAndBoundSolver().solve(program)
        if not solution.is_feasible:
            raise OptimizationError("the how-to integer program is infeasible")

        chosen = [
            candidate
            for candidate, variable in variable_of.items()
            if solution.assignment.get(variable, 0.0) > 0.5
        ]
        recommended = [c.as_attribute_update() for c in chosen]
        verified = None
        if self.config.verify_howto_with_whatif and recommended:
            post_values = self._post_values_for(query, shared, recommended)
            verified = self._candidate_value(query, shared, post_values)
        per_attribute = {attribute: "no change" for attribute in query.update_attributes}
        for candidate in chosen:
            per_attribute[candidate.attribute] = candidate.label
        result = HowToResult(
            recommended_updates=recommended,
            objective_value=float(solution.objective),
            baseline_value=baseline,
            maximize=query.maximize,
            verified_value=verified,
            per_attribute_choices=per_attribute,
            n_candidates=len(candidates),
            n_ip_variables=program.n_variables,
            n_ip_constraints=program.n_constraints,
            solver_status=solution.status.value,
            runtime_seconds=time.perf_counter() - started,
            metadata={
                "backdoor_set": list(shared.estimator.backdoor_set),
                "n_nodes_explored": solution.n_nodes_explored,
            },
        )
        return result

    def evaluate_exhaustive(
        self,
        query: HowToQuery,
        *,
        max_combinations: int = 200_000,
        prepared: PreparedHowTo | None = None,
        candidates: Sequence[CandidateUpdate] | None = None,
    ) -> HowToResult:
        """Opt-HowTo baseline: enumerate every candidate combination (Definition 8)."""
        started = time.perf_counter()
        shared = prepared if prepared is not None else self.prepare(query)
        if candidates is None:
            candidates = self.enumerate_candidates(query, shared.view, shared.scope_mask)
        baseline = self._candidate_value(query, shared, {})
        per_attribute: dict[str, list[CandidateUpdate | None]] = {
            attribute: [None] for attribute in query.update_attributes
        }
        for candidate in candidates:
            per_attribute[candidate.attribute].append(candidate)
        total = int(np.prod([len(v) for v in per_attribute.values()]))
        if total > max_combinations:
            raise OptimizationError(
                f"exhaustive how-to search needs {total} combinations (> {max_combinations})"
            )
        best_value = -np.inf if query.maximize else np.inf
        best_choice: tuple[CandidateUpdate | None, ...] = tuple([None] * len(per_attribute))
        n_evaluated = 0
        for combo in itertools.product(*per_attribute.values()):
            chosen = [c for c in combo if c is not None]
            if query.max_updates is not None and len(chosen) > query.max_updates:
                continue
            updates = [c.as_attribute_update() for c in chosen]
            post_values = self._post_values_for(query, shared, updates)
            value = self._candidate_value(query, shared, post_values)
            n_evaluated += 1
            better = value > best_value if query.maximize else value < best_value
            if better:
                best_value = value
                best_choice = combo
        chosen = [c for c in best_choice if c is not None]
        recommended = [c.as_attribute_update() for c in chosen]
        per_attr_labels = {attribute: "no change" for attribute in query.update_attributes}
        for candidate in chosen:
            per_attr_labels[candidate.attribute] = candidate.label
        return HowToResult(
            recommended_updates=recommended,
            objective_value=float(best_value),
            baseline_value=baseline,
            maximize=query.maximize,
            verified_value=float(best_value),
            per_attribute_choices=per_attr_labels,
            n_candidates=len(candidates),
            n_ip_variables=0,
            n_ip_constraints=0,
            solver_status=SolveStatus.OPTIMAL.value,
            runtime_seconds=time.perf_counter() - started,
            metadata={"n_combinations_evaluated": n_evaluated, "method": "opt-howto"},
        )

    def evaluate_preferential(self, queries: Sequence[HowToQuery]) -> list[HowToResult]:
        """Lexicographic multi-objective optimisation (Section 4.3 extension).

        ``queries`` share the same ``Use`` / ``When`` / ``HowToUpdate`` / ``Limit``
        structure and differ only in their objective; earlier entries are more
        important.  Each stage fixes the previously attained objective values as
        equality constraints before optimising the next one.
        """
        if not queries:
            raise QuerySemanticsError("evaluate_preferential needs at least one query")
        primary = queries[0]
        shared = self.prepare(primary)
        candidates = self.enumerate_candidates(primary, shared.view, shared.scope_mask)
        results: list[HowToResult] = []
        locked: list[tuple[dict[CandidateUpdate, float], float, float]] = []
        for stage, query in enumerate(queries):
            started = time.perf_counter()
            stage_shared = shared if stage == 0 else self.prepare(query)
            baseline = self._candidate_value(query, stage_shared, {})
            coefficients = self._candidate_coefficients(query, stage_shared, candidates, baseline)
            program, variable_of = self._build_program(query, candidates, coefficients, baseline)
            for prior_coefficients, prior_baseline, prior_value in locked:
                expression = LinearExpression(
                    {
                        variable_of[c]: coeff
                        for c, coeff in prior_coefficients.items()
                        if c in variable_of
                    },
                    prior_baseline,
                )
                program.add_constraint(expression, "==", prior_value, name=f"lock-{len(locked)}")
            solution = BranchAndBoundSolver().solve(program)
            if not solution.is_feasible:
                raise OptimizationError(
                    f"preferential stage {stage} is infeasible given earlier objectives"
                )
            chosen = [
                candidate
                for candidate, variable in variable_of.items()
                if solution.assignment.get(variable, 0.0) > 0.5
            ]
            per_attribute = {a: "no change" for a in query.update_attributes}
            for candidate in chosen:
                per_attribute[candidate.attribute] = candidate.label
            results.append(
                HowToResult(
                    recommended_updates=[c.as_attribute_update() for c in chosen],
                    objective_value=float(solution.objective),
                    baseline_value=baseline,
                    maximize=query.maximize,
                    per_attribute_choices=per_attribute,
                    n_candidates=len(candidates),
                    n_ip_variables=program.n_variables,
                    n_ip_constraints=program.n_constraints,
                    solver_status=solution.status.value,
                    runtime_seconds=time.perf_counter() - started,
                    metadata={"stage": stage},
                )
            )
            locked.append((coefficients, baseline, float(solution.objective)))
        return results

    # -- preparation -----------------------------------------------------------------------

    def prepare(
        self,
        query: HowToQuery,
        *,
        view: Relation | None = None,
        estimator: PostUpdateEstimator | None = None,
        view_dag: CausalDAG | None = None,
    ) -> PreparedHowTo:
        """Derive the state shared by every candidate evaluation of ``query``.

        ``view`` may inject a cached relevant view, ``view_dag`` the matching
        DAG projection, and ``estimator`` a cached
        :class:`PostUpdateEstimator` built for a structurally identical query
        (same view, DAG projection, update/outcome attributes and config); the
        service layer supplies all three from its fingerprint-keyed caches.
        """
        if view is None:
            view = query.use.build(self.database)
        referenced = set(query.update_attributes) | {query.objective_attribute}
        referenced |= query.when.attribute_names() | query.for_clause.attribute_names()
        missing = sorted(a for a in referenced if a not in view.schema)
        if missing:
            raise QuerySemanticsError(
                f"attributes {missing} are not columns of the relevant view"
            )
        if view_dag is None:
            view_dag = build_view_dag(self.causal_dag, query.use, self.database)
        # Updated attributes must be causally unrelated when they can be chosen
        # together (Section 4.1); a budget of one update means no two attributes
        # are ever updated simultaneously, so the restriction does not apply.
        if view_dag is not None and query.max_updates != 1:
            for a, b in itertools.combinations(query.update_attributes, 2):
                if a in view_dag and b in view_dag and (
                    b in view_dag.descendants(a) or a in view_dag.descendants(b)
                ):
                    raise QuerySemanticsError(
                        f"HowToUpdate attributes {a!r} and {b!r} are causally connected"
                    )
        scope_mask = evaluate_mask(query.when, view)
        disjuncts = [split_pre_post(atoms) for atoms in to_dnf(query.for_clause)]
        if len(disjuncts) > _MAX_DISJUNCTS:
            raise QuerySemanticsError("the For clause expands into too many disjuncts")
        for disjunct in disjuncts:
            if not disjunct.is_separable:
                raise QuerySemanticsError(
                    "For conditions mixing Pre and Post in one comparison are not supported"
                )
        if estimator is None:
            estimator = self.build_estimator(query, view=view, view_dag=view_dag)
        pre_masks = [evaluate_mask(d.pre, view) for d in disjuncts]
        post_masks = [evaluate_mask(d.post, view) for d in disjuncts]
        output_values = numeric_output_column(view, query.objective_attribute)
        return PreparedHowTo(
            view=view,
            view_dag=view_dag,
            scope_mask=scope_mask,
            estimator=estimator,
            pre_masks=pre_masks,
            post_masks=post_masks,
            output_values=output_values,
            aggregate_name=get_aggregate(query.objective_aggregate).name,
            for_key=query.for_clause.canonical(),
        )

    def build_estimator(
        self,
        query: HowToQuery,
        *,
        view: Relation | None = None,
        view_dag: CausalDAG | None = None,
    ) -> PostUpdateEstimator:
        """The backdoor-adjusted estimator for ``query`` (reusable across queries).

        Mirrors :meth:`WhatIfEngine.build_estimator`: the estimator depends
        only on the view, the DAG projection, the update/outcome attributes
        and the engine config, so the service layer caches it by plan
        fingerprint — shared with what-if queries of the same structure.
        """
        if view is None:
            view = query.use.build(self.database)
        if view_dag is None:
            view_dag = build_view_dag(self.causal_dag, query.use, self.database)
        disjuncts = [split_pre_post(atoms) for atoms in to_dnf(query.for_clause)]
        post_attrs = sorted(
            {query.objective_attribute} | {a for d in disjuncts for a in d.post_attributes}
        )
        return PostUpdateEstimator(
            view=view,
            view_dag=view_dag,
            update_attributes=list(query.update_attributes),
            outcome_attributes=post_attrs,
            config=self.config,
            rng=np.random.default_rng(self.config.random_state),
        )

    # -- candidate enumeration ---------------------------------------------------------------

    def enumerate_candidates(
        self, query: HowToQuery, view: Relation, scope_mask: np.ndarray
    ) -> list[CandidateUpdate]:
        """Admissible candidate updates per attribute (the sets ``S_{B_i}`` of Sec. 4.3)."""
        candidates: list[CandidateUpdate] = []
        scope_rows = np.flatnonzero(np.asarray(scope_mask, dtype=bool))
        for attribute in query.update_attributes:
            pre_values = [view.column_view(attribute)[i] for i in scope_rows]
            domain = view.schema.domain(attribute)
            values: list[Any] = []
            limits = query.limits_for(attribute)
            allowed = None
            lower = upper = None
            for limit in limits:
                if limit.allowed_values is not None:
                    allowed = list(limit.allowed_values)
                if limit.lower is not None:
                    lower = limit.lower if lower is None else max(lower, limit.lower)
                if limit.upper is not None:
                    upper = limit.upper if upper is None else min(upper, limit.upper)
            if allowed is not None:
                values = list(allowed)
            elif domain.is_numeric:
                observed = [float(v) for v in view.column_view(attribute) if v is not None]
                low = lower if lower is not None else (min(observed) if observed else 0.0)
                high = upper if upper is not None else (max(observed) if observed else 1.0)
                if high <= low:
                    high = low + 1.0
                discretizer = Discretizer(n_buckets=max(1, query.candidate_buckets)).fit(
                    [low, high]
                )
                values = list(discretizer.bucket_centers())
                if isinstance(domain, IntegerDomain):
                    values = sorted({int(round(v)) for v in values})
            else:
                values = list(domain.values()) if domain.is_finite else sorted(
                    {v for v in view.column_view(attribute) if v is not None}
                )

            for value in values:
                if not domain.contains(value):
                    continue  # e.g. a Limit "In" list mentioning a value outside the domain
                function: UpdateFunction = SetTo(value)
                if self._admissible(query, attribute, pre_values, function):
                    candidates.append(
                        CandidateUpdate(attribute, function, f"= {self._fmt(value)}")
                    )
            if domain.is_numeric:
                for factor in query.candidate_multipliers:
                    function = MultiplyBy(factor)
                    if self._admissible(query, attribute, pre_values, function):
                        candidates.append(
                            CandidateUpdate(attribute, function, f"{factor}x Pre({attribute})")
                        )
        if not candidates:
            raise OptimizationError(
                "no admissible candidate updates; relax the Limit constraints"
            )
        return candidates

    def _admissible(
        self,
        query: HowToQuery,
        attribute: str,
        pre_values: Sequence[Any],
        function: UpdateFunction,
    ) -> bool:
        if not pre_values:
            return True
        for pre in pre_values:
            if pre is None:
                continue
            if not query.admits(attribute, pre, function.apply(pre)):
                return False
        return True

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    # -- candidate evaluation -------------------------------------------------------------------

    def _post_values_for(
        self,
        query: HowToQuery,
        shared: PreparedHowTo,
        updates: Sequence[AttributeUpdate],
    ) -> dict[str, Sequence[Any]]:
        return candidate_post_values(query, shared, updates)

    def _candidate_value(
        self,
        query: HowToQuery,
        shared: PreparedHowTo,
        post_values: dict[str, Sequence[Any]],
    ) -> float:
        """Estimated objective value for a concrete (possibly empty) update choice."""
        count_contrib, sum_contrib = candidate_contribution_rows(
            query, shared, post_values
        )
        return combine_candidate_value(shared.aggregate_name, count_contrib, sum_contrib)

    def _candidate_coefficients(
        self,
        query: HowToQuery,
        shared: PreparedHowTo,
        candidates: Sequence[CandidateUpdate],
        baseline: float,
    ) -> dict[CandidateUpdate, float]:
        coefficients: dict[CandidateUpdate, float] = {}
        for candidate in candidates:
            post_values = self._post_values_for(
                query, shared, [candidate.as_attribute_update()]
            )
            value = self._candidate_value(query, shared, post_values)
            coefficients[candidate] = value - baseline
        return coefficients

    # -- IP construction ----------------------------------------------------------------------

    def _build_program(
        self,
        query: HowToQuery,
        candidates: Sequence[CandidateUpdate],
        coefficients: dict[CandidateUpdate, float],
        baseline: float,
    ) -> tuple[IntegerProgram, dict[CandidateUpdate, str]]:
        return build_howto_program(query, candidates, coefficients, baseline)
