"""Baselines and oracles used in the experimental comparison.

* ``Indep`` — the provenance-style baseline that ignores causal propagation;
  implemented inside :class:`~repro.core.whatif.WhatIfEngine` (variant
  ``indep``) and exposed here through a convenience constructor.
* :class:`GroundTruthOracle` — evaluates a what-if query by re-running the
  *true* structural equations of the synthetic data generator under the
  intervention (this is the "Ground Truth" series of Figure 10 and the
  Opt-HowTo reference of Section 5.4).
* :func:`naive_possible_world_value` — literal Definition 5: enumerate possible
  worlds of a tiny view and average; used as a correctness oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..causal.scm import StructuralCausalModel
from ..exceptions import QuerySemanticsError
from ..probdb.distribution import DiscreteWorldDistribution
from ..probdb.possible_worlds import PossibleWorld
from ..relational.aggregates import get_aggregate
from ..relational.database import Database
from ..relational.expressions import EvaluationContext
from ..relational.predicates import evaluate_mask
from ..relational.relation import Relation
from .config import EngineConfig, Variant
from .queries import WhatIfQuery
from .whatif import WhatIfEngine

__all__ = [
    "make_indep_engine",
    "GroundTruthOracle",
    "naive_possible_world_value",
]


def make_indep_engine(database: Database, config: EngineConfig | None = None) -> WhatIfEngine:
    """Engine configured as the Indep baseline (no causal graph, no propagation)."""
    config = (config or EngineConfig()).with_variant(Variant.INDEP)
    return WhatIfEngine(database=database, causal_dag=None, config=config)


@dataclass
class GroundTruthOracle:
    """Ground-truth what-if answers from the data-generating structural model.

    ``scm`` must be the structural causal model over the *view columns* that
    generated the data (the synthetic dataset objects in :mod:`repro.datasets`
    expose exactly this).  The oracle applies the update to the scope tuples,
    re-simulates every descendant attribute with fresh exogenous noise,
    re-evaluates the ``For`` predicate and the output aggregate, and averages
    over ``n_repeats`` simulations.
    """

    scm: StructuralCausalModel
    n_repeats: int = 20
    random_state: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_repeats <= 0:
            raise QuerySemanticsError("n_repeats must be positive")
        self._rng = np.random.default_rng(self.random_state)

    def evaluate(self, query: WhatIfQuery, database: Database) -> float:
        view = query.use.build(database)
        scope_mask = evaluate_mask(query.when, view)
        update = query.hypothetical_update
        interventions: dict[str, np.ndarray] = {}
        for attribute in query.update_attributes:
            post = update.updated_values(
                attribute, list(view.column_view(attribute)), scope_mask
            )
            interventions[attribute] = np.asarray(post, dtype=object)
        columns = {
            name: list(view.column_view(name))
            for name in view.attribute_names
            if name in self.scm.dag.nodes
        }
        aggregate = get_aggregate(query.output_aggregate)
        totals = []
        for _ in range(self.n_repeats):
            post_columns = self.scm.intervene(columns, interventions, self._rng)
            post_view = view
            for name, values in post_columns.items():
                if name in view.schema:
                    post_view = post_view.with_column(name, list(values))
            qualify = evaluate_mask(query.for_clause, view, post_view)
            output = [
                0.0 if v is None else float(v)
                for v in post_view.column_view(query.output_attribute)
            ]
            qualifying = [output[i] for i in np.flatnonzero(qualify)]
            totals.append(aggregate.evaluate(qualifying))
        return float(np.mean(totals))


def naive_possible_world_value(
    query: WhatIfQuery,
    database: Database,
    worlds: Sequence[PossibleWorld] | None = None,
    world_probability: Callable[[Relation], float] | None = None,
    *,
    world_relations: Mapping[str, Relation] | None = None,
) -> float:
    """Literal Definition 5: expectation of the per-world answer over given worlds.

    ``worlds`` enumerates possible post-update versions of the *base relation*
    of the query's ``Use`` clause (with probabilities).  This is exponential and
    exists purely as a semantic reference point for tests on tiny databases.
    """
    if worlds is None:
        raise QuerySemanticsError("naive evaluation needs an explicit set of possible worlds")
    distribution = DiscreteWorldDistribution(list(worlds))
    aggregate = get_aggregate(query.output_aggregate)
    pre_view = query.use.build(database)

    def per_world(world_relation: Relation) -> float:
        world_db = database.with_relation(world_relation)
        post_view = query.use.build(world_db)
        values = []
        for pre_row, post_row in zip(pre_view.rows(), post_view.rows()):
            context = EvaluationContext(pre_row, post_row)
            if bool(query.for_clause.evaluate(context)):
                value = post_row[query.output_attribute]
                values.append(0.0 if value is None else float(value))
        return aggregate.evaluate(values)

    _ = world_probability, world_relations  # reserved for multi-relation extensions
    return distribution.expectation(per_world)
