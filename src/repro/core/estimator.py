"""Post-update conditional estimation via backdoor adjustment.

This module implements the statistical core of Section 3.3 / Appendix A: the
reduction of post-update conditional expectations to observational regressions.

Given the relevant view, the causal DAG projected onto its columns, and a
hypothetical update, the :class:`PostUpdateEstimator`:

1. chooses the adjustment set ``C`` — a minimal backdoor set when a causal
   graph is available (the HypeR variant), or all remaining view attributes
   when it is not (the HypeR-NB variant, Section 2.2 "Background knowledge");
2. fits a regression of the per-tuple target (an indicator for ``Count``, the
   output value times an indicator for ``Sum``/``Avg``) on the update
   attributes plus ``C`` — the paper uses a random forest regressor and so do
   we;
3. evaluates that regression at the *counterfactual* input where every update
   attribute is replaced by its post-update value ``f(Pre(B))`` (Equation 1).

The training rows can be a uniform sample of the view (the HypeR-sampled
variant of Section 5.2).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

import numpy as np

from ..causal.backdoor import minimal_backdoor_set
from ..causal.dag import CausalDAG
from ..exceptions import IdentificationError, QuerySemanticsError
from ..ml.density import ConditionalMeanRegressor
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.view import UseSpec
from .config import EngineConfig

__all__ = ["build_view_dag", "PostUpdateEstimator"]

#: Bound on fitted regressors kept per estimator.  The service layer shares
#: one estimator across every ``For``-literal variant of a plan, so without a
#: cap a long sweep (e.g. thousands of thresholds) would accumulate a fitted
#: regressor per literal inside one hot cache entry.  A single evaluation of
#: one plan touches up to ``2 * (2^6 - 1) = 126`` keys (count and sum targets
#: per disjunct subset at the engine's 6-disjunct maximum), so the bound must
#: comfortably exceed that or repeated-template workloads would thrash.
_MAX_CACHED_REGRESSORS = 256


def build_view_dag(
    dag: CausalDAG | None, use: UseSpec, database: Database
) -> CausalDAG | None:
    """Project the database-level causal DAG onto the columns of the relevant view.

    Attributes of the base relation keep their (unqualified) names; attributes
    of other relations that the ``Use`` clause aggregates are renamed to their
    view column (this is the practical counterpart of the augmented-graph
    construction in Section A.3.2 — the aggregated column inherits the causal
    role of the attribute it summarises).  Nodes that do not appear in the view
    are dropped, as are cross-tuple markers: the view has one row per base
    tuple, so view-level adjustment reasons within a tuple.
    """
    if dag is None:
        return None
    view_columns = set(use.view_attribute_names(database))
    aggregated_by_source: dict[tuple[str, str], str] = {}
    for agg in use.aggregated:
        owner, attribute = database.resolve_attribute(
            agg.attribute if "." in agg.attribute else f"{agg.relation}.{agg.attribute}"
        )
        aggregated_by_source[(owner, attribute)] = agg.name

    def map_node(node: str) -> str | None:
        owner, attribute = database.resolve_attribute(node)
        if (owner, attribute) in aggregated_by_source:
            return aggregated_by_source[(owner, attribute)]
        if owner == use.base_relation and attribute in view_columns:
            return attribute
        if attribute in view_columns and owner != use.base_relation:
            # Unaggregated foreign attribute selected verbatim (rare); keep its name.
            return attribute
        return None

    mapping = {node: map_node(node) for node in dag.nodes}
    view_dag = CausalDAG(sorted({name for name in mapping.values() if name is not None}))
    for edge in dag.edges:
        source = mapping.get(edge.source)
        target = mapping.get(edge.target)
        if source is None or target is None or source == target:
            continue
        if not view_dag.has_edge(source, target):
            view_dag.add_edge((source, target))
    return view_dag


@dataclass
class PostUpdateEstimator:
    """Backdoor-adjusted counterfactual regression over the relevant view.

    Parameters
    ----------
    view:
        The pre-update relevant view (one row per base tuple).
    view_dag:
        Causal DAG over view columns, or ``None`` when no background knowledge
        is available.
    update_attributes:
        The attributes being hypothetically updated (treatments ``B``).
    outcome_attributes:
        The attributes whose post-update values the query needs (the output
        attribute plus any attribute referenced with ``Post(...)`` in the
        ``For`` clause).
    config:
        Engine configuration (variant, regressor, sampling).
    """

    view: Relation
    view_dag: CausalDAG | None
    update_attributes: Sequence[str]
    outcome_attributes: Sequence[str]
    config: EngineConfig = field(default_factory=EngineConfig)
    rng: np.random.Generator | None = None
    _backdoor: tuple[str, ...] = ()
    _train_indices: np.ndarray | None = field(default=None, repr=False)
    _regressor_cache: OrderedDict[Hashable, ConditionalMeanRegressor] = field(
        default_factory=OrderedDict, repr=False
    )
    _fit_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _pending_fits: dict = field(default_factory=dict, repr=False)
    _n_regressor_fits: int = field(default=0, repr=False)
    _n_regressor_hits: int = field(default=0, repr=False)

    def __getstate__(self) -> dict:
        """Pickle without locks or in-flight fit events (shard/worker boundary).

        Estimator *construction* is deterministic given (view, DAG projection,
        attributes, config), so shard workers normally rebuild estimators
        locally instead of receiving them; this hook keeps the object picklable
        for callers that do ship one (fitted regressors travel along).
        """
        state = self.__dict__.copy()
        state["_fit_lock"] = None
        state["_pending_fits"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._fit_lock = threading.Lock()
        self._pending_fits = {}

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(self.config.random_state)
        missing = [a for a in self.update_attributes if a not in self.view.schema]
        if missing:
            raise QuerySemanticsError(
                f"update attributes {missing} are not columns of the relevant view"
            )
        missing = [a for a in self.outcome_attributes if a not in self.view.schema]
        if missing:
            raise QuerySemanticsError(
                f"outcome attributes {missing} are not columns of the relevant view"
            )
        self._backdoor = tuple(self._choose_backdoor_set())
        self._train_indices = self._choose_training_rows()

    # -- adjustment-set selection -----------------------------------------------------

    def _choose_backdoor_set(self) -> list[str]:
        key_attrs = set(self.view.schema.key)
        updates = set(self.update_attributes)
        outcomes = set(self.outcome_attributes)
        if self.config.adjusts_for_all_attributes or self.view_dag is None:
            # HypeR-NB / no causal graph: adjust for every other attribute.
            return sorted(
                a
                for a in self.view.attribute_names
                if a not in updates | outcomes | key_attrs
            )
        adjustment: set[str] = set()
        for treatment in self.update_attributes:
            for outcome in self.outcome_attributes:
                if treatment not in self.view_dag or outcome not in self.view_dag:
                    continue
                if outcome in (self.view_dag.ancestors(treatment) | {treatment}):
                    continue  # the outcome is upstream: no backdoor needed
                try:
                    adjustment |= minimal_backdoor_set(self.view_dag, treatment, outcome)
                except IdentificationError:
                    # Fall back to every eligible attribute for this pair.
                    adjustment |= {
                        a
                        for a in self.view.attribute_names
                        if a not in updates | outcomes | key_attrs
                    }
        adjustment -= key_attrs | updates | outcomes
        return sorted(a for a in adjustment if a in self.view.schema)

    @property
    def backdoor_set(self) -> tuple[str, ...]:
        return self._backdoor

    @property
    def feature_attributes(self) -> tuple[str, ...]:
        return tuple(self.update_attributes) + self._backdoor

    # -- training-sample selection ------------------------------------------------------

    def _choose_training_rows(self) -> np.ndarray:
        n = len(self.view)
        sample_size = self.config.sample_size
        if self.config.is_sampled and sample_size is None:
            sample_size = min(n, 100_000)
        if sample_size is None or sample_size >= n:
            return np.arange(n)
        assert self.rng is not None
        return np.sort(self.rng.choice(n, size=sample_size, replace=False))

    @property
    def n_training_rows(self) -> int:
        assert self._train_indices is not None
        return int(len(self._train_indices))

    # -- counterfactual prediction --------------------------------------------------------

    def counterfactual_mean(
        self,
        target: Sequence[float],
        predict_mask: Sequence[bool],
        post_values: Mapping[str, Sequence[Any]],
        *,
        cache_key: Hashable | None = None,
    ) -> np.ndarray:
        """Predict ``E[target | B = post values, C = observed]`` for masked rows.

        ``target`` is the per-row training target computed on the observed
        (pre-update) view; ``post_values`` maps each update attribute to its
        full post-update column.  The returned array has one entry per view row
        and is only meaningful where ``predict_mask`` is true.
        """
        target = np.asarray(target, dtype=float)
        predict_mask = np.asarray(predict_mask, dtype=bool)
        if len(target) != len(self.view) or len(predict_mask) != len(self.view):
            raise QuerySemanticsError("target and mask must align with the view rows")
        missing = [a for a in self.update_attributes if a not in post_values]
        if missing:
            raise QuerySemanticsError(f"post_values is missing update attributes {missing}")

        regressor = self._fit_regressor(target, cache_key)
        out = np.zeros(len(self.view))
        if not predict_mask.any():
            return out
        columns: dict[str, Any] = {}
        idx = np.flatnonzero(predict_mask)
        for attribute in self.update_attributes:
            post_column = post_values[attribute]
            if not isinstance(post_column, np.ndarray):
                post_column = np.asarray(post_column, dtype=object)
            columns[attribute] = post_column[idx]
        for attribute in self._backdoor:
            columns[attribute] = self.view.column_view(attribute)[idx]
        predictions = regressor.predict_columns(columns)
        out[idx] = predictions
        return out

    def _fit_regressor(
        self, target: np.ndarray, cache_key: Hashable | None
    ) -> ConditionalMeanRegressor:
        return self.regressor_for(cache_key, lambda: target)

    def regressor_for(
        self,
        cache_key: Hashable | None,
        target_factory: Callable[[], np.ndarray],
    ) -> ConditionalMeanRegressor:
        """Fetch or fit the regressor for a training target, keyed by ``cache_key``.

        ``target_factory`` produces the full-view training target and is only
        invoked on a cache miss — shard workers exploit this to evaluate
        queries over their own rows without touching full-view masks once
        their plan's regressors are fitted (:mod:`repro.shard.local`).

        Keys are structured tuples (target kind, predicate identity, disjunct
        subset) built by the engines — see ``regressor_cache_key`` in
        :mod:`repro.core.whatif` — so that an estimator shared across queries
        by the service layer can never alias two different training targets.
        Fitting is per-key single-flight: concurrent batch-executor workers
        sharing one estimator fit each key exactly once, while fits of
        *different* keys run in parallel (the fit happens outside the lock).
        """
        if cache_key is None:
            return self._fit_fresh(np.asarray(target_factory(), dtype=float))
        while True:
            with self._fit_lock:
                cached = self._regressor_cache.get(cache_key)
                if cached is not None:
                    self._n_regressor_hits += 1
                    self._regressor_cache.move_to_end(cache_key)
                    return cached
                waiter = self._pending_fits.get(cache_key)
                if waiter is None:
                    self._pending_fits[cache_key] = threading.Event()
                    break  # we are the builder
            waiter.wait()
            # Loop: the value is cached now, or the builder failed (or the
            # entry was immediately evicted) and we take over as builder.
        try:
            regressor = self._fit_fresh(np.asarray(target_factory(), dtype=float))
        except BaseException:
            with self._fit_lock:
                event = self._pending_fits.pop(cache_key, None)
            if event is not None:
                event.set()
            raise
        with self._fit_lock:
            self._regressor_cache[cache_key] = regressor
            while len(self._regressor_cache) > _MAX_CACHED_REGRESSORS:
                self._regressor_cache.popitem(last=False)
            event = self._pending_fits.pop(cache_key, None)
        if event is not None:
            event.set()
        return regressor

    def _fit_fresh(self, target: np.ndarray) -> ConditionalMeanRegressor:
        assert self._train_indices is not None
        train_idx = self._train_indices
        columns = {
            attribute: self.view.column_view(attribute)[train_idx]
            for attribute in self.feature_attributes
        }
        regressor = ConditionalMeanRegressor(
            feature_attributes=self.feature_attributes,
            regressor_kind=self.config.regressor,
            random_state=self.config.random_state,
            regressor_params=self.config.regressor_params(),
        )
        regressor.fit(columns, target[train_idx])
        with self._fit_lock:
            self._n_regressor_fits += 1
        return regressor

    @property
    def regressor_cache_stats(self) -> dict[str, int]:
        """Counters of regressor fits vs. cache reuses over this estimator's life."""
        return {
            "fits": self._n_regressor_fits,
            "hits": self._n_regressor_hits,
            "cached": len(self._regressor_cache),
        }
