"""Programmatic what-if and how-to query objects.

These mirror the declarative SQL extension of Sections 3.1 and 4.1 — the parser
in :mod:`repro.lang` produces exactly these objects, and they can equally be
constructed directly in Python, which is what the examples and benchmarks do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..exceptions import QuerySemanticsError
from ..relational.aggregates import get_aggregate
from ..relational.expressions import Expr
from ..relational.predicates import TRUE
from ..relational.view import UseSpec
from .updates import AttributeUpdate, HypotheticalUpdate, UpdateFunction

__all__ = [
    "WhatIfQuery",
    "LimitConstraint",
    "HowToQuery",
]


@dataclass
class WhatIfQuery:
    """A probabilistic what-if query (Section 3.1).

    Parameters
    ----------
    use:
        The ``Use`` operator describing the relevant view.
    updates:
        One or more attribute updates (the ``Update`` operator).
    output_attribute / output_aggregate:
        The ``Output`` operator: the view attribute whose post-update value is
        aggregated into the single query answer.
    when:
        The ``When`` predicate selecting the update scope ``S`` (pre values only).
    for_clause:
        The ``For`` predicate restricting which tuples contribute to the output
        (may mix ``Pre`` and ``Post`` values).
    """

    use: UseSpec
    updates: list[AttributeUpdate]
    output_attribute: str
    output_aggregate: str = "avg"
    when: Expr = TRUE
    for_clause: Expr = TRUE
    name: str = "what-if"

    def __post_init__(self) -> None:
        if not self.updates:
            raise QuerySemanticsError("a what-if query needs at least one Update clause")
        get_aggregate(self.output_aggregate)
        if self.when.uses_post():
            raise QuerySemanticsError("the When clause may only use Pre values")
        update_names = [u.attribute for u in self.updates]
        if self.output_attribute in update_names:
            raise QuerySemanticsError(
                "the Output attribute cannot be one of the updated attributes"
            )

    @property
    def hypothetical_update(self) -> HypotheticalUpdate:
        return HypotheticalUpdate(updates=list(self.updates), when=self.when)

    @property
    def update_attributes(self) -> list[str]:
        return [u.attribute for u in self.updates]

    def with_updates(self, updates: Sequence[AttributeUpdate]) -> "WhatIfQuery":
        """Copy of this query with a different set of updates (used by how-to search)."""
        return WhatIfQuery(
            use=self.use,
            updates=list(updates),
            output_attribute=self.output_attribute,
            output_aggregate=self.output_aggregate,
            when=self.when,
            for_clause=self.for_clause,
            name=self.name,
        )

    def describe(self) -> str:
        parts = [f"Use {self.use.base_relation}"]
        parts.append("Update " + ", ".join(u.describe() for u in self.updates))
        parts.append(f"Output {self.output_aggregate}(Post({self.output_attribute}))")
        return "; ".join(parts)


@dataclass(frozen=True)
class LimitConstraint:
    """A single ``Limit`` condition restricting post-update values of an attribute.

    Exactly the forms of Section 4.1 are supported:

    * numeric range: ``lower <= Post(B) <= upper`` (either side optional);
    * permissible values: ``Post(B) In (v1, v2, ...)``;
    * L1 budget: ``L1(Pre(B), Post(B)) <= max_l1`` — maximal absolute change.
    """

    attribute: str
    lower: float | None = None
    upper: float | None = None
    allowed_values: tuple[Any, ...] | None = None
    max_l1: float | None = None

    def admits(self, pre_value: Any, post_value: Any) -> bool:
        """Whether changing ``pre_value`` to ``post_value`` satisfies this limit."""
        if self.allowed_values is not None and post_value not in self.allowed_values:
            return False
        if self.lower is not None or self.upper is not None or self.max_l1 is not None:
            try:
                post_number = float(post_value)
            except (TypeError, ValueError):
                return False
            if self.lower is not None and post_number < self.lower:
                return False
            if self.upper is not None and post_number > self.upper:
                return False
            if self.max_l1 is not None:
                try:
                    pre_number = float(pre_value)
                except (TypeError, ValueError):
                    return False
                if abs(post_number - pre_number) > self.max_l1:
                    return False
        return True


@dataclass
class HowToQuery:
    """A probabilistic how-to query (Section 4.1).

    ``update_attributes`` lists the attributes the optimiser may change
    (``HowToUpdate``); ``limits`` carries the ``Limit`` constraints;
    ``objective_attribute``/``objective_aggregate`` with ``maximize`` encode
    ``ToMaximize`` / ``ToMinimize``; ``max_updates`` optionally budgets the
    number of attributes that may be changed (Section 5.4 uses a budget of one
    for the Student-Syn case study).
    """

    use: UseSpec
    update_attributes: list[str]
    objective_attribute: str
    objective_aggregate: str = "avg"
    maximize: bool = True
    when: Expr = TRUE
    for_clause: Expr = TRUE
    limits: list[LimitConstraint] = field(default_factory=list)
    max_updates: int | None = None
    candidate_multipliers: tuple[float, ...] = (0.8, 0.9, 1.1, 1.2, 1.5)
    candidate_buckets: int = 6
    name: str = "how-to"

    def __post_init__(self) -> None:
        if not self.update_attributes:
            raise QuerySemanticsError("a how-to query needs at least one HowToUpdate attribute")
        if len(set(self.update_attributes)) != len(self.update_attributes):
            raise QuerySemanticsError("duplicate attributes in HowToUpdate")
        get_aggregate(self.objective_aggregate)
        if self.objective_attribute in self.update_attributes:
            raise QuerySemanticsError(
                "the objective attribute cannot be one of the updatable attributes"
            )
        if self.when.uses_post():
            raise QuerySemanticsError("the When clause may only use Pre values")
        if self.max_updates is not None and self.max_updates < 1:
            raise QuerySemanticsError("max_updates must be at least 1 when given")

    def limits_for(self, attribute: str) -> list[LimitConstraint]:
        return [limit for limit in self.limits if limit.attribute == attribute]

    def candidate_what_if(self, updates: Sequence[AttributeUpdate]) -> WhatIfQuery:
        """Build the candidate what-if query for a concrete choice of updates (Def. 7)."""
        return WhatIfQuery(
            use=self.use,
            updates=list(updates),
            output_attribute=self.objective_attribute,
            output_aggregate=self.objective_aggregate,
            when=self.when,
            for_clause=self.for_clause,
            name=f"{self.name}-candidate",
        )

    def admits(self, attribute: str, pre_value: Any, post_value: Any) -> bool:
        """Whether every Limit constraint on ``attribute`` admits this change."""
        return all(
            limit.admits(pre_value, post_value) for limit in self.limits_for(attribute)
        )
