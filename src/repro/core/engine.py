"""The HypeR facade: one object that answers SQL-text or programmatic queries.

``HypeR`` bundles a database, optional causal background knowledge and an
engine configuration, and exposes:

* :meth:`HypeR.what_if` / :meth:`HypeR.how_to` for programmatic queries;
* :meth:`HypeR.execute` for queries written in the declarative SQL extension;
* convenience constructors for the baseline variants evaluated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..causal.dag import CausalDAG
from ..exceptions import QuerySemanticsError
from ..lang.parser import parse_query
from ..relational.database import Database
from ..relational.relation import Relation
from .config import EngineConfig, Variant
from .howto import HowToEngine
from .queries import HowToQuery, WhatIfQuery
from .results import HowToResult, WhatIfResult
from .whatif import WhatIfEngine

__all__ = ["HypeR"]


@dataclass
class HypeR:
    """Hypothetical-reasoning session over one database.

    Parameters
    ----------
    database:
        The multi-relation database (or a single relation, see :meth:`from_relation`).
    causal_dag:
        Attribute-level causal background knowledge.  ``None`` makes the engine
        behave like the HypeR-NB variant (every attribute is adjusted for).
    config:
        Engine configuration; see :class:`repro.core.config.EngineConfig`.
    """

    database: Database
    causal_dag: CausalDAG | None = None
    config: EngineConfig = field(default_factory=EngineConfig)

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        causal_dag: CausalDAG | None = None,
        config: EngineConfig | None = None,
    ) -> "HypeR":
        """Build a session over a single-relation database."""
        return cls(Database([relation]), causal_dag, config or EngineConfig())

    def with_variant(self, variant: str) -> "HypeR":
        """A copy of this session running a different engine variant."""
        return replace(self, config=self.config.with_variant(variant))

    def sampled(self, sample_size: int) -> "HypeR":
        """The HypeR-sampled variant trained on ``sample_size`` view rows."""
        config = self.config.with_variant(Variant.HYPER_SAMPLED).with_sample_size(sample_size)
        return replace(self, config=config)

    def no_background(self) -> "HypeR":
        """The HypeR-NB variant (ignores the causal graph, adjusts for everything)."""
        return replace(self, config=self.config.with_variant(Variant.HYPER_NB))

    def independent_baseline(self) -> "HypeR":
        """The Indep baseline (no causal propagation at all)."""
        return replace(self, config=self.config.with_variant(Variant.INDEP))

    # -- engines --------------------------------------------------------------------

    @property
    def whatif_engine(self) -> WhatIfEngine:
        return WhatIfEngine(self.database, self.causal_dag, self.config)

    @property
    def howto_engine(self) -> HowToEngine:
        return HowToEngine(self.database, self.causal_dag, self.config)

    # -- query execution ---------------------------------------------------------------

    def what_if(self, query: WhatIfQuery) -> WhatIfResult:
        """Answer a programmatic what-if query."""
        return self.whatif_engine.evaluate(query)

    def how_to(self, query: HowToQuery, *, exhaustive: bool = False) -> HowToResult:
        """Answer a programmatic how-to query (``exhaustive=True`` runs Opt-HowTo)."""
        engine = self.howto_engine
        if exhaustive:
            return engine.evaluate_exhaustive(query)
        return engine.evaluate(query)

    def execute(self, query) -> WhatIfResult | HowToResult:
        """Answer a query: SQL-extension text, a query object, or a fluent builder."""
        if isinstance(query, str):
            query = parse_query(query)
        else:
            from ..api.builder import as_query_object  # lazy: api sits above core

            query = as_query_object(query)
        if isinstance(query, WhatIfQuery):
            return self.what_if(query)
        if isinstance(query, HowToQuery):
            return self.how_to(query)
        raise QuerySemanticsError(f"unsupported query object {type(query).__name__}")

    def parse(self, query_text: str) -> WhatIfQuery | HowToQuery:
        """Parse a query without executing it (useful for inspection and tests)."""
        return parse_query(query_text)

    # -- service layer -----------------------------------------------------------------

    def service(self, **kwargs):
        """A long-lived :class:`repro.service.HypeRService` over this session.

        The service keeps fingerprint-keyed caches of views, estimators and
        block decompositions across queries and offers ``execute_many`` batch
        execution; see :mod:`repro.service`.  Keyword arguments are forwarded
        to the :class:`~repro.service.session.HypeRService` constructor.
        """
        from ..service import HypeRService

        return HypeRService(self.database, self.causal_dag, self.config, **kwargs)
