"""What-if query evaluation (Sections 3.2 / 3.3 and Appendix A).

The :class:`WhatIfEngine` computes the expected value of the output aggregate
over the post-update distribution without ever enumerating possible worlds:

1. the ``Use`` clause materialises the relevant view (one row per base tuple);
2. the ``When`` clause selects the update scope ``S``;
3. the ``For`` clause is normalised into disjoint disjuncts of pre / post
   conditions; each tuple's probability of qualifying (and expected
   contribution) after the update is obtained from the
   :class:`~repro.core.estimator.PostUpdateEstimator`'s backdoor-adjusted
   regression (Propositions 2 and 5), with inclusion–exclusion across
   disjuncts (Section A.2.3);
4. contributions are combined per block of the block-independent decomposition
   and summed (Proposition 1); AVG is evaluated as the ratio of the expected
   SUM and the expected qualifying COUNT.

The Indep baseline (provenance-style, no causal propagation) is also
implemented here because it shares the view / scope machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Hashable, Sequence

import numpy as np

from ..causal.dag import CausalDAG
from ..exceptions import QuerySemanticsError
from ..probdb.blocks import block_labels
from ..relational.aggregates import get_aggregate
from ..relational.columnar import KernelCache, fused_mask_aggregate
from ..relational.database import Database
from ..relational.expressions import Expr
from ..relational.predicates import (
    Conjunction,
    evaluate_mask,
    split_pre_post,
    to_dnf,
)
from ..relational.relation import Relation
from .config import EngineConfig, Variant
from .estimator import PostUpdateEstimator, build_view_dag
from .queries import WhatIfQuery
from .results import BlockContribution, LazyBlockContributions, WhatIfResult

__all__ = [
    "PreparedWhatIf",
    "WhatIfEngine",
    "causal_contribution_rows",
    "combine_aggregate",
    "block_contribution_summary",
    "finalize_what_if",
    "indep_contribution_rows",
    "numeric_output_column",
    "regressor_cache_key",
]

_MAX_DISJUNCTS = 6


def regressor_cache_key(
    kind: str,
    subset: tuple[int, ...],
    for_key: Hashable,
    output_attribute: str | None = None,
) -> Hashable:
    """Structured key identifying one regressor training target.

    ``kind`` is ``"count"`` or ``"sum"``, ``subset`` the disjunct subset of the
    inclusion–exclusion term, ``for_key`` the canonical identity (literals
    included) of the ``For`` clause whose post-parts define the indicator, and
    ``output_attribute`` the attribute whose values scale a ``"sum"`` target.
    Unlike the former ``f"count:{subset}"`` strings, these keys cannot alias
    across target kinds or across queries sharing one estimator through the
    service-layer cache.
    """
    return (kind, output_attribute, for_key, subset)


def numeric_output_column(view: Relation, attribute: str) -> np.ndarray:
    """Output attribute as float64 with nulls as 0.0 (shared engine helper).

    On the columnar backend this is a mask/where over the typed column; the
    reference path converts value by value (and raises for non-numeric data,
    as before).
    """
    if view.is_columnar:
        column = view.columnar_store()[attribute]
        if column.is_numeric:
            return np.where(column.null, 0.0, column.data)
    values = view.column_view(attribute)
    out = np.zeros(len(view))
    for i, value in enumerate(values):
        out[i] = 0.0 if value is None else float(value)
    return out


@dataclass
class PreparedWhatIf:
    """Everything derived from a what-if query before estimation starts.

    Built by :meth:`WhatIfEngine.prepare` and reusable: the service layer
    prepares once per plan and evaluates many parameter variants against the
    same derived state (with per-query scope masks and post values).
    """

    view: Relation
    view_dag: CausalDAG | None
    scope_mask: np.ndarray
    post_values: dict[str, Sequence[Any]]
    disjuncts: list[Conjunction]
    post_attributes: list[str]
    block_of_row: np.ndarray
    n_blocks: int
    for_key: Hashable = None
    # Per-plan fused-kernel state: ``kernels`` caches masks / group codes /
    # derived arrays across the parameter variants sharing one plan (injected
    # by the service layer and the shard worker runtime); ``fused`` routes
    # accumulation through the single-pass kernels when the config enables it.
    kernels: KernelCache | None = None
    fused: bool = False


# -- pure evaluation phases ----------------------------------------------------------
#
# The functions below are the shard-safe core of what-if evaluation: they
# close over no engine state, take picklable inputs, and optionally restrict
# accumulation (and estimator *prediction*) to a boolean ``row_mask`` of view
# rows.  Restriction is exact: regressors are always fitted on the full-view
# training targets (so every shard fits the bitwise-identical model), and
# per-row predictions are row-stable, so contributions computed for a shard's
# rows equal the same rows of an unsharded evaluation bit for bit.  The
# shard subsystem (:mod:`repro.shard`) merges such per-row contributions and
# finishes with :func:`finalize_what_if`, the same reduction the unsharded
# path runs.


def _subset_index_list(n: int) -> list[tuple[int, ...]]:
    out: list[tuple[int, ...]] = []
    for size in range(1, n + 1):
        out.extend(combinations(range(n), size))
    return out


def causal_contribution_rows(
    query: WhatIfQuery,
    prepared: PreparedWhatIf,
    estimator: PostUpdateEstimator,
    *,
    row_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row (count, sum) contributions of the causal variants.

    Returns full-view-length float arrays; entries outside ``row_mask`` (when
    given) are zero and must be taken from other shards.  ``sum`` entries are
    only populated when the query's aggregate needs output values.
    """
    aggregate = get_aggregate(query.output_aggregate)
    view = prepared.view
    n = len(view)
    scope = prepared.scope_mask
    restrict = (
        np.ones(n, dtype=bool) if row_mask is None else np.asarray(row_mask, dtype=bool)
    )
    kernels = prepared.kernels

    def _derived(key: Hashable, build: Any) -> np.ndarray:
        # Per-plan memo: every parameter variant of one plan shares the same
        # deterministic masks, so build each exactly once per plan.
        return build() if kernels is None else kernels.get(key, build)

    output_values = _derived(
        ("output_values", query.output_attribute),
        lambda: numeric_output_column(view, query.output_attribute),
    )

    # Pre-part satisfaction per disjunct (deterministic, observed values).
    pre_masks = [
        _derived(("pre_mask", i, prepared.for_key), lambda d=d: evaluate_mask(d.pre, view))
        for i, d in enumerate(prepared.disjuncts)
    ]
    # Post-part indicators evaluated on the observed data (training targets).
    post_masks = [
        _derived(("post_mask", i, prepared.for_key), lambda d=d: evaluate_mask(d.post, view))
        for i, d in enumerate(prepared.disjuncts)
    ]

    def _build_qualifies_pre() -> np.ndarray:
        out = np.zeros(n, dtype=bool)
        for pre_mask, post_mask in zip(pre_masks, post_masks):
            out |= pre_mask & post_mask
        return out

    count_contrib = np.zeros(n)
    sum_contrib = np.zeros(n)

    # -- unaffected tuples: post values equal pre values, everything deterministic.
    unaffected = ~scope & restrict
    qualifies_pre = _derived(("qualifies_pre", prepared.for_key), _build_qualifies_pre)
    if prepared.fused:
        # One where-pass instead of gather / assign round-trips; values are
        # identical (zeros outside ``unaffected`` either way).
        count_contrib = np.where(unaffected, qualifies_pre.astype(float), 0.0)
        sum_contrib = np.where(unaffected & qualifies_pre, output_values, 0.0)
    else:
        count_contrib[unaffected] = qualifies_pre[unaffected].astype(float)
        sum_contrib[unaffected] = np.where(
            qualifies_pre[unaffected], output_values[unaffected], 0.0
        )

    # -- affected tuples: inclusion–exclusion over disjunct subsets (Sec. A.2.3).
    # The branch condition uses the full-view scope so a shard that owns no
    # affected row still follows the unsharded control flow (the final clip).
    if scope.any():
        for subset in _subset_index_list(len(prepared.disjuncts)):
            sign = 1.0 if len(subset) % 2 == 1 else -1.0
            joint_post = np.ones(n, dtype=bool)
            # Rows where every pre-part in the subset holds contribute this term.
            applicable = scope & restrict
            for k in subset:
                joint_post &= post_masks[k]
                applicable &= pre_masks[k]
            if not applicable.any():
                continue
            prob = estimator.counterfactual_mean(
                joint_post.astype(float),
                applicable,
                prepared.post_values,
                cache_key=regressor_cache_key("count", subset, prepared.for_key),
            )
            prob = np.clip(prob, 0.0, 1.0)
            count_contrib[applicable] += sign * prob[applicable]
            if aggregate.needs_output_value:
                value_target = output_values * joint_post.astype(float)
                expected_value = estimator.counterfactual_mean(
                    value_target,
                    applicable,
                    prepared.post_values,
                    cache_key=regressor_cache_key(
                        "sum", subset, prepared.for_key, query.output_attribute
                    ),
                )
                sum_contrib[applicable] += sign * expected_value[applicable]
        # Per-tuple qualification probabilities live in [0, 1]; clip estimator overshoot.
        count_contrib = np.clip(count_contrib, 0.0, 1.0)
    return count_contrib, sum_contrib


def indep_contribution_rows(
    query: WhatIfQuery,
    prepared: PreparedWhatIf,
    *,
    row_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row contributions of the Indep baseline (no causal propagation)."""
    view = prepared.view
    post_view = view
    for attribute, values in prepared.post_values.items():
        post_view = post_view.with_column(attribute, values)
    qualify = evaluate_mask(query.for_clause, view, post_view)
    if row_mask is not None:
        qualify = qualify & np.asarray(row_mask, dtype=bool)
    output_values = numeric_output_column(post_view, query.output_attribute)
    count_contrib = qualify.astype(float)
    sum_contrib = np.where(qualify, output_values, 0.0)
    return count_contrib, sum_contrib


def combine_aggregate(
    aggregate: str, count_contrib: np.ndarray, sum_contrib: np.ndarray
) -> tuple[float, float]:
    """Fold per-row contributions into ``(value, expected_qualifying_count)``."""
    expected_count = float(count_contrib.sum())
    if aggregate == "count":
        return expected_count, expected_count
    if aggregate == "sum":
        return float(sum_contrib.sum()), expected_count
    # avg: ratio of expected sum to expected qualifying count
    if expected_count <= 0:
        return 0.0, expected_count
    return float(sum_contrib.sum()) / expected_count, expected_count


def block_contribution_summary(
    aggregate: str,
    count_contrib: np.ndarray,
    sum_contrib: np.ndarray,
    block_of_row: np.ndarray,
    n_blocks: int,
    scope: np.ndarray,
    *,
    kernels: KernelCache | None = None,
    fused: bool = False,
) -> LazyBlockContributions:
    """Per-block partial answers (Proposition 1) from per-row contributions.

    With ``fused`` the scope filter folds into the bincount traversal (no
    ``block_of_row[scope]`` gather) and the scope-independent block sizes are
    served from the per-plan ``kernels`` cache; counts are exact integers, so
    the fused and unfused summaries are equal element for element.
    """
    per_row = count_contrib if aggregate == "count" else sum_contrib
    totals = np.bincount(block_of_row, weights=per_row, minlength=n_blocks)
    if fused:
        sizes = (
            np.bincount(block_of_row, minlength=n_blocks)
            if kernels is None
            else kernels.get(
                ("block_sizes",), lambda: np.bincount(block_of_row, minlength=n_blocks)
            )
        )
        scope_sizes = fused_mask_aggregate(
            block_of_row, n_blocks, mask=scope, how="count"
        ).astype(np.int64)
    else:
        sizes = np.bincount(block_of_row, minlength=n_blocks)
        scope_sizes = np.bincount(block_of_row[scope], minlength=n_blocks)
    return LazyBlockContributions(np.flatnonzero(sizes), totals, sizes, scope_sizes)


def finalize_what_if(
    query: WhatIfQuery,
    count_contrib: np.ndarray,
    sum_contrib: np.ndarray,
    *,
    scope_mask: np.ndarray,
    block_of_row: np.ndarray,
    n_blocks: int,
    backdoor_set: tuple[str, ...],
    variant: str,
    metadata: dict[str, Any] | None = None,
    kernels: KernelCache | None = None,
    fused: bool = False,
) -> WhatIfResult:
    """Reduce merged per-row contributions into a :class:`WhatIfResult`.

    This is the single aggregation path shared by the unsharded engine and the
    shard merge: both hand it full-view-length contribution arrays, so a
    sharded evaluation reduces in exactly the same order as an unsharded one.
    """
    aggregate = get_aggregate(query.output_aggregate)
    value, expected_count = combine_aggregate(
        aggregate.name, count_contrib, sum_contrib
    )
    blocks = block_contribution_summary(
        aggregate.name,
        count_contrib,
        sum_contrib,
        block_of_row,
        n_blocks,
        scope_mask,
        kernels=kernels,
        fused=fused,
    )
    return WhatIfResult(
        value=value,
        aggregate=aggregate.name,
        output_attribute=query.output_attribute,
        n_view_tuples=len(count_contrib),
        n_scope_tuples=int(scope_mask.sum()),
        n_blocks=n_blocks,
        block_contributions=blocks,
        backdoor_set=backdoor_set,
        variant=variant,
        expected_qualifying_count=expected_count,
        metadata=metadata or {},
    )


@dataclass
class WhatIfEngine:
    """Evaluates :class:`WhatIfQuery` objects over a database and causal model."""

    database: Database
    causal_dag: CausalDAG | None = None
    config: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.config.backend is not None:
            self.database = self.database.with_backend(self.config.backend)

    # -- public API -------------------------------------------------------------------

    def evaluate(
        self,
        query: WhatIfQuery,
        *,
        prepared: PreparedWhatIf | None = None,
        estimator: PostUpdateEstimator | None = None,
    ) -> WhatIfResult:
        """Answer ``query`` and return a :class:`WhatIfResult` with metadata.

        ``prepared`` and ``estimator`` allow a caller (notably the service
        layer in :mod:`repro.service`) to inject reusable state built by
        :meth:`prepare` / :meth:`build_estimator`; omitted pieces are built
        fresh, which is the cold single-query path.
        """
        started = time.perf_counter()
        if prepared is None:
            prepared = self.prepare(query)
        if self.config.ignores_dependencies:
            result = self._evaluate_indep(query, prepared)
        else:
            if estimator is None:
                estimator = self.build_estimator(query, prepared)
            result = self._evaluate_causal(query, prepared, estimator)
        result.runtime_seconds = time.perf_counter() - started
        return result

    # -- preparation --------------------------------------------------------------------

    def prepare(
        self,
        query: WhatIfQuery,
        *,
        view: Relation | None = None,
        blocks: tuple[dict[str, np.ndarray], int] | None = None,
        view_dag: CausalDAG | None = None,
        kernels: KernelCache | None = None,
    ) -> PreparedWhatIf:
        """Derive everything the evaluation needs short of fitting estimators.

        ``view`` may inject a pre-built relevant view (it must be the
        materialisation of ``query.use`` over this engine's database),
        ``view_dag`` the matching DAG projection from
        :func:`~repro.core.estimator.build_view_dag`, ``blocks`` a
        pre-computed ``(labels, n_blocks)`` block assignment from
        :func:`repro.probdb.blocks.block_labels`, and ``kernels`` a shared
        per-plan :class:`~repro.relational.columnar.KernelCache` so parameter
        variants of one plan reuse each other's masks; all are served from
        caches by the service layer and the shard worker runtime.
        """
        if view is None:
            view = query.use.build(self.database)
        self._check_attributes(query, view)
        if view_dag is None:
            view_dag = build_view_dag(self.causal_dag, query.use, self.database)
        self._check_update_independence(query, view_dag)

        if kernels is not None:
            scope_mask = kernels.get(
                ("scope_mask", query.when.canonical()),
                lambda: evaluate_mask(query.when, view),
            )
        else:
            scope_mask = evaluate_mask(query.when, view)
        update = query.hypothetical_update
        post_values: dict[str, Sequence[Any]] = {}
        for attribute in query.update_attributes:
            post_values[attribute] = update.updated_values(
                attribute, view.column_view(attribute), scope_mask
            )

        disjuncts = self._normalise_for_clause(query.for_clause)
        post_attributes = sorted(
            {query.output_attribute}
            | {a for d in disjuncts for a in d.post_attributes}
        )
        block_of_row, n_blocks = self._block_assignment(query, view, blocks)
        return PreparedWhatIf(
            view=view,
            view_dag=view_dag,
            scope_mask=scope_mask,
            post_values=post_values,
            disjuncts=disjuncts,
            post_attributes=post_attributes,
            block_of_row=block_of_row,
            n_blocks=n_blocks,
            for_key=query.for_clause.canonical(),
            kernels=kernels,
            fused=self.config.fused_kernels,
        )

    def build_estimator(
        self,
        query: WhatIfQuery,
        prepared: PreparedWhatIf | None = None,
        *,
        view: Relation | None = None,
        view_dag: CausalDAG | None = None,
    ) -> PostUpdateEstimator:
        """The backdoor-adjusted estimator for ``query`` (reusable across queries).

        The estimator depends only on the relevant view, the projected DAG,
        the update/outcome attributes and the engine config — not on update
        constants, scope or ``For`` literals — so the service layer caches it
        by plan fingerprint and shares it across parameter variants.  Pass
        ``prepared`` when one is already at hand, or ``view``/``view_dag`` to
        build directly from cached components without a full :meth:`prepare`.
        """
        if prepared is not None:
            view = prepared.view
            view_dag = prepared.view_dag
            post_attributes = prepared.post_attributes
        else:
            if view is None:
                view = query.use.build(self.database)
            if view_dag is None:
                view_dag = build_view_dag(self.causal_dag, query.use, self.database)
            disjuncts = self._normalise_for_clause(query.for_clause)
            post_attributes = sorted(
                {query.output_attribute}
                | {a for d in disjuncts for a in d.post_attributes}
            )
        return PostUpdateEstimator(
            view=view,
            view_dag=view_dag,
            update_attributes=list(query.update_attributes),
            outcome_attributes=post_attributes,
            config=self.config,
            rng=np.random.default_rng(self.config.random_state),
        )

    def _check_attributes(self, query: WhatIfQuery, view: Relation) -> None:
        referenced = set(query.update_attributes) | {query.output_attribute}
        referenced |= query.when.attribute_names() | query.for_clause.attribute_names()
        missing = sorted(a for a in referenced if a not in view.schema)
        if missing:
            raise QuerySemanticsError(
                f"attributes {missing} are not columns of the relevant view "
                f"(columns: {list(view.attribute_names)})"
            )
        for attribute in query.update_attributes:
            if not view.schema.is_mutable(attribute):
                raise QuerySemanticsError(f"cannot update immutable attribute {attribute!r}")

    def _check_update_independence(
        self, query: WhatIfQuery, view_dag: CausalDAG | None
    ) -> None:
        """Multi-attribute updates require causally unrelated attributes (Sec. 3.1)."""
        if view_dag is None or len(query.update_attributes) < 2:
            return
        for a, b in combinations(query.update_attributes, 2):
            if a not in view_dag or b not in view_dag:
                continue
            if b in view_dag.descendants(a) or a in view_dag.descendants(b):
                raise QuerySemanticsError(
                    f"updated attributes {a!r} and {b!r} are causally connected; "
                    "multi-attribute updates require independent attributes"
                )

    def _normalise_for_clause(self, for_clause: Expr) -> list[Conjunction]:
        disjuncts = [split_pre_post(atoms) for atoms in to_dnf(for_clause)]
        if len(disjuncts) > _MAX_DISJUNCTS:
            raise QuerySemanticsError(
                f"the For clause expands to {len(disjuncts)} disjuncts; "
                f"at most {_MAX_DISJUNCTS} are supported"
            )
        for disjunct in disjuncts:
            if not disjunct.is_separable:
                raise QuerySemanticsError(
                    "For conditions mixing Pre and Post values of attributes in a single "
                    "comparison are not supported by the closed-form estimator; "
                    "rewrite them as separate Pre / Post conditions"
                )
        return disjuncts

    def _block_assignment(
        self,
        query: WhatIfQuery,
        view: Relation,
        blocks: tuple[dict[str, np.ndarray], int] | None = None,
    ) -> tuple[np.ndarray, int]:
        n = len(view)
        if not self.config.use_blocks or self.causal_dag is None:
            return np.zeros(n, dtype=int), 1
        labels, n_blocks = (
            blocks if blocks is not None else block_labels(self.database, self.causal_dag)
        )
        base_labels = labels.get(query.use.base_relation)
        block_of_row = np.zeros(n, dtype=int)
        if base_labels is not None:
            m = min(n, len(base_labels))
            block_of_row[:m] = base_labels[:m]
        return block_of_row, n_blocks

    # -- causal evaluation (HypeR / HypeR-NB / HypeR-sampled) -----------------------------

    def _evaluate_causal(
        self,
        query: WhatIfQuery,
        prepared: PreparedWhatIf,
        estimator: PostUpdateEstimator,
    ) -> WhatIfResult:
        count_contrib, sum_contrib = causal_contribution_rows(
            query, prepared, estimator
        )
        return finalize_what_if(
            query,
            count_contrib,
            sum_contrib,
            scope_mask=prepared.scope_mask,
            block_of_row=prepared.block_of_row,
            n_blocks=prepared.n_blocks,
            backdoor_set=estimator.backdoor_set,
            variant=self.config.variant,
            metadata={
                "n_training_rows": estimator.n_training_rows,
                "n_disjuncts": len(prepared.disjuncts),
                "feature_attributes": list(estimator.feature_attributes),
            },
            kernels=prepared.kernels,
            fused=prepared.fused,
        )

    # -- Indep baseline ---------------------------------------------------------------------

    def _evaluate_indep(self, query: WhatIfQuery, prepared: PreparedWhatIf) -> WhatIfResult:
        """Provenance-style baseline: the update does not propagate to other attributes."""
        count_contrib, sum_contrib = indep_contribution_rows(query, prepared)
        return finalize_what_if(
            query,
            count_contrib,
            sum_contrib,
            scope_mask=prepared.scope_mask,
            block_of_row=prepared.block_of_row,
            n_blocks=prepared.n_blocks,
            backdoor_set=(),
            variant=Variant.INDEP,
            metadata={"n_disjuncts": len(prepared.disjuncts)},
            kernels=prepared.kernels,
            fused=prepared.fused,
        )
