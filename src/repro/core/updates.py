"""Hypothetical updates (Definition 2) and the update-function forms of Section 3.1.

A hypothetical update ``u_{R,B,f,S}`` names a relation ``R``, a mutable update
attribute ``B``, a subset ``S`` of tuples (expressed as the ``When`` predicate)
and a function ``f`` applied to the pre-update value of ``B``.  HypeR supports
three function forms: set to a constant, add a constant, multiply by a constant
(``Update(B) = <const>``, ``<const> + Pre(B)``, ``<const> x Pre(B)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..exceptions import QuerySemanticsError
from ..relational.expressions import Expr
from ..relational.predicates import TRUE

__all__ = [
    "UpdateFunction",
    "apply_update_column",
    "SetTo",
    "AddConstant",
    "MultiplyBy",
    "AttributeUpdate",
    "HypotheticalUpdate",
]


class UpdateFunction:
    """Abstract update function ``f : Dom(B) -> Dom(B)``."""

    def apply(self, value: Any) -> Any:
        raise NotImplementedError

    def apply_column(self, values: Sequence[Any]) -> list[Any]:
        return [None if v is None else self.apply(v) for v in values]

    def apply_vectorized(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray | None:
        """Whole-column application where ``mask`` holds, or ``None`` when the
        function has no vectorized form (callers fall back to :meth:`apply`)."""
        return None

    def describe(self) -> str:
        raise NotImplementedError


def apply_update_column(
    function: "UpdateFunction", pre_values: Sequence[Any], scope_mask: Sequence[bool]
) -> np.ndarray | list[Any]:
    """Post-update column: ``f(pre)`` where ``scope_mask`` holds, ``pre`` elsewhere.

    Numeric ndarray columns go through the update function's vectorized form
    (columnar backend hot path); anything else falls back to the per-value
    reference loop, which skips ``None`` entries.
    """
    mask = np.asarray(scope_mask, dtype=bool)
    if isinstance(pre_values, np.ndarray) and pre_values.dtype.kind == "f":
        vectorized = function.apply_vectorized(pre_values, mask)
        if vectorized is not None:
            return vectorized
    out = list(pre_values)
    for i in np.flatnonzero(mask):
        if out[i] is not None:
            out[i] = function.apply(out[i])
    return out


@dataclass(frozen=True)
class SetTo(UpdateFunction):
    """``Update(B) = <const>`` — force the attribute to a constant value."""

    value: Any

    def apply(self, value: Any) -> Any:
        return self.value

    def apply_vectorized(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray | None:
        if not isinstance(self.value, (int, float, np.integer, np.floating)) or isinstance(
            self.value, bool
        ):
            return None
        return np.where(mask, float(self.value), values)

    def describe(self) -> str:
        if isinstance(self.value, float):
            return f"= {float(self.value):.6g}"
        if isinstance(self.value, (int, bool)):
            return f"= {self.value}"
        return f"= {self.value!r}"


@dataclass(frozen=True)
class AddConstant(UpdateFunction):
    """``Update(B) = <const> + Pre(B)``."""

    delta: float

    def apply(self, value: Any) -> Any:
        return value + self.delta

    def apply_vectorized(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray | None:
        return np.where(mask, values + self.delta, values)

    def describe(self) -> str:
        return f"+= {self.delta}"


@dataclass(frozen=True)
class MultiplyBy(UpdateFunction):
    """``Update(B) = <const> x Pre(B)``."""

    factor: float

    def apply(self, value: Any) -> Any:
        return value * self.factor

    def apply_vectorized(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray | None:
        return np.where(mask, values * self.factor, values)

    def describe(self) -> str:
        return f"*= {self.factor}"


@dataclass(frozen=True)
class AttributeUpdate:
    """A single attribute update: the attribute ``B`` and its function ``f``."""

    attribute: str
    function: UpdateFunction

    def describe(self) -> str:
        return f"Update({self.attribute}) {self.function.describe()}"


@dataclass
class HypotheticalUpdate:
    """A (possibly multi-attribute) hypothetical update with its ``When`` scope.

    Multi-attribute updates are allowed provided the updated attributes are
    causally unrelated (the engine validates this against the causal graph when
    one is available, matching the restriction stated at the end of Section 3.1).
    """

    updates: list[AttributeUpdate] = field(default_factory=list)
    when: Expr = TRUE

    def __post_init__(self) -> None:
        if not self.updates:
            raise QuerySemanticsError("a hypothetical update needs at least one attribute update")
        names = [u.attribute for u in self.updates]
        if len(set(names)) != len(names):
            raise QuerySemanticsError(f"duplicate update attributes: {names}")
        if self.when.uses_post():
            raise QuerySemanticsError("the When clause may only reference Pre values")

    @property
    def attributes(self) -> list[str]:
        return [u.attribute for u in self.updates]

    def function_for(self, attribute: str) -> UpdateFunction:
        for update in self.updates:
            if update.attribute == attribute:
                return update.function
        raise QuerySemanticsError(f"no update declared for attribute {attribute!r}")

    def updated_values(
        self, attribute: str, pre_values: Sequence[Any], scope_mask: Sequence[bool]
    ) -> np.ndarray | list[Any]:
        """Post-update values of ``attribute``: ``f(pre)`` inside the scope, ``pre`` outside."""
        return apply_update_column(self.function_for(attribute), pre_values, scope_mask)

    def describe(self) -> str:
        return " and ".join(u.describe() for u in self.updates)
