"""Relation and database schemas.

A :class:`RelationSchema` declares, for each attribute, its domain and whether it
is *mutable* (may change value in a possible world / hypothetical update) or
*immutable* (keys and fixed descriptors, Section 2 of the paper).  A
:class:`DatabaseSchema` is a named collection of relation schemas plus optional
foreign-key links, which the Use-view builder and the ground-causal-graph
constructor both consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..exceptions import SchemaError
from .types import Domain, infer_domain

__all__ = ["AttributeSpec", "RelationSchema", "ForeignKey", "DatabaseSchema"]


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of a single attribute of a relation."""

    name: str
    domain: Domain
    mutable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute names must be non-empty strings")


class RelationSchema:
    """Schema of a single relation: ordered attributes, key, mutability flags."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[AttributeSpec],
        key: Iterable[str],
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = list(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}: {names}")
        key_attrs = tuple(key)
        if not key_attrs:
            raise SchemaError(f"relation {name!r} must declare a (primary) key")
        missing = [k for k in key_attrs if k not in names]
        if missing:
            raise SchemaError(f"key attributes {missing} not declared in relation {name!r}")
        # Keys are always immutable (Section 2 of the paper).
        normalized = []
        for attr in attrs:
            if attr.name in key_attrs and attr.mutable:
                normalized.append(AttributeSpec(attr.name, attr.domain, mutable=False))
            else:
                normalized.append(attr)
        self.name = name
        self._attributes: dict[str, AttributeSpec] = {a.name: a for a in normalized}
        self._order: tuple[str, ...] = tuple(names)
        self.key: tuple[str, ...] = key_attrs

    # -- lookup ----------------------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._order

    @property
    def attributes(self) -> list[AttributeSpec]:
        return [self._attributes[n] for n in self._order]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attributes

    def __getitem__(self, attribute: str) -> AttributeSpec:
        try:
            return self._attributes[attribute]
        except KeyError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known attributes: {list(self._order)}"
            ) from exc

    def domain(self, attribute: str) -> Domain:
        return self[attribute].domain

    def is_mutable(self, attribute: str) -> bool:
        return self[attribute].mutable

    def is_key(self, attribute: str) -> bool:
        return attribute in self.key

    @property
    def mutable_attributes(self) -> tuple[str, ...]:
        return tuple(n for n in self._order if self._attributes[n].mutable)

    @property
    def immutable_attributes(self) -> tuple[str, ...]:
        return tuple(n for n in self._order if not self._attributes[n].mutable)

    # -- manipulation ----------------------------------------------------------

    def with_attribute(self, spec: AttributeSpec) -> "RelationSchema":
        """Return a copy of this schema with ``spec`` appended (or replaced)."""
        attrs = [a for a in self.attributes if a.name != spec.name]
        attrs.append(spec)
        return RelationSchema(self.name, attrs, self.key)

    def project(self, attributes: Iterable[str], name: str | None = None) -> "RelationSchema":
        """Return a schema restricted to ``attributes`` (key attributes must be kept)."""
        keep = list(attributes)
        missing = [a for a in keep if a not in self]
        if missing:
            raise SchemaError(f"cannot project onto unknown attributes {missing}")
        missing_key = [k for k in self.key if k not in keep]
        if missing_key:
            raise SchemaError(
                f"projection must retain the key of {self.name!r}; missing {missing_key}"
            )
        return RelationSchema(name or self.name, [self[a] for a in keep], self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.key == other.key
            and self.attribute_names == other.attribute_names
            and all(self[a] == other[a] for a in self.attribute_names)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(
            f"{a.name}{'*' if a.name in self.key else ''}{'' if a.mutable else ' (imm)'}"
            for a in self.attributes
        )
        return f"RelationSchema({self.name}: {cols})"

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Iterable[Any]],
        key: Iterable[str],
        immutable: Iterable[str] = (),
        domains: Mapping[str, Domain] | None = None,
    ) -> "RelationSchema":
        """Build a schema by inferring domains from column data."""
        domains = dict(domains or {})
        immutable_set = set(immutable)
        specs = []
        for col_name, values in columns.items():
            domain = domains.get(col_name) or infer_domain(list(values))
            specs.append(
                AttributeSpec(col_name, domain, mutable=col_name not in immutable_set)
            )
        return cls(name, specs, key)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key link ``child.child_attrs -> parent.parent_attrs``."""

    child: str
    child_attributes: tuple[str, ...]
    parent: str
    parent_attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_attributes) != len(self.parent_attributes):
            raise SchemaError("foreign key must link an equal number of attributes")
        if not self.child_attributes:
            raise SchemaError("foreign key must link at least one attribute")


class DatabaseSchema:
    """Named collection of relation schemas with optional foreign keys."""

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        rels = list(relations)
        names = [r.name for r in rels]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate relation names: {names}")
        self._relations: dict[str, RelationSchema] = {r.name: r for r in rels}
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        for rel_name, attrs in ((fk.child, fk.child_attributes), (fk.parent, fk.parent_attributes)):
            if rel_name not in self._relations:
                raise SchemaError(f"foreign key references unknown relation {rel_name!r}")
            schema = self._relations[rel_name]
            missing = [a for a in attrs if a not in schema]
            if missing:
                raise SchemaError(
                    f"foreign key references unknown attributes {missing} of {rel_name!r}"
                )

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __contains__(self, relation: str) -> bool:
        return relation in self._relations

    def __getitem__(self, relation: str) -> RelationSchema:
        try:
            return self._relations[relation]
        except KeyError as exc:
            raise SchemaError(
                f"unknown relation {relation!r}; known relations: {list(self._relations)}"
            ) from exc

    def resolve_attribute(self, attribute: str) -> tuple[str, str]:
        """Resolve ``attribute`` (optionally ``Relation.Attribute``) to a unique pair.

        The paper assumes update/output attributes appear in a single relation;
        this helper enforces that and raises :class:`SchemaError` on ambiguity.
        """
        if "." in attribute:
            rel, attr = attribute.split(".", 1)
            schema = self[rel]
            if attr not in schema:
                raise SchemaError(f"relation {rel!r} has no attribute {attr!r}")
            return rel, attr
        owners = [name for name, schema in self._relations.items() if attribute in schema]
        if not owners:
            raise SchemaError(f"no relation declares attribute {attribute!r}")
        if len(owners) > 1:
            raise SchemaError(
                f"attribute {attribute!r} is ambiguous across relations {owners}; "
                "qualify it as Relation.Attribute"
            )
        return owners[0], attribute

    def links_between(self, relation_a: str, relation_b: str) -> list[ForeignKey]:
        """Foreign keys connecting ``relation_a`` and ``relation_b`` in either direction."""
        out = []
        for fk in self.foreign_keys:
            if {fk.child, fk.parent} == {relation_a, relation_b}:
                out.append(fk)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"DatabaseSchema({', '.join(self._relations)})"
